//! Bounded model checking of the TCP connection FSM.
//!
//! The MOESI coherence protocol gets an exhaustive explorer in
//! `enzian-eci`; this module gives the TCP handshake/teardown state
//! machine the same treatment through the generic
//! [`enzian_sim::explore`] core. Golden traces exercise one schedule;
//! the races that bend connection state machines — a handshake ACK
//! lost under a crossing FIN, simultaneous close, a retransmitted FIN
//! arriving after TimeWait — need every interleaving of a bounded
//! configuration.
//!
//! The model is two asymmetric endpoints: `a` opens actively and `b`
//! listens. Each endpoint's connection state is a bare
//! [`ConnState`], and **every** state change goes through the real
//! transition relation ([`Connection::on`]) — the model adds only the
//! segment-to-event policy (which [`ConnEvent`] a segment triggers in
//! which state), so an FSM bug in `conn.rs` is visible to the checker,
//! not masked by a re-implementation. The two directional channels are
//! sorted bags: delivery may pick any in-flight segment, so reordering
//! is inherent; explicit budgeted actions add loss and duplication;
//! per-segment-kind retransmission budgets keep the space finite while
//! modelling an eventually-fair channel (every loss is healable, and a
//! peer that *stops* acknowledging converts the retransmission budget
//! into a detectable deadlock instead of an infinite retry cycle).
//!
//! Checked on every reachable state:
//!
//! 1. **protocol legality** — no segment is ever delivered in a state
//!    with no legal response (data or FIN before the connection is
//!    established, a FIN-ACK towards an endpoint that never sent a
//!    FIN); an illegal [`Connection::on`] step surfaces the same way;
//! 2. **no deadlock short of CLOSED** — a state with no enabled
//!    transition where the endpoints are not both `Closed` with empty
//!    channels;
//! 3. **convergence** — both sides reach `Closed` after the FIN
//!    exchange: the model is finite and acyclic (every action consumes
//!    a budget or drains a channel), so deadlock-freedom of the
//!    exhaustive search *is* the convergence proof;
//! 4. **data delivery** — when both endpoints are `Closed`, every data
//!    segment each side sent was received in order by the other
//!    ([`TcpViolationKind::DataLoss`]);
//! 5. **TimeWait lingers** — the 2·MSL linger is modelled as a guard:
//!    TimeWait may only expire once the incoming channel is empty and
//!    the peer no longer owes or awaits a FIN-ACK. The
//!    [`TcpMutation::SkipTimeWait`] mutation removes the linger and
//!    the checker finds the classic bug: the FIN-ACK is lost, the
//!    peer's retransmitted FIN meets a closed endpoint, and the peer
//!    deadlocks in `LastAck`.
//!
//! Counterexample paths are rendered through the real 28-byte segment
//! codec ([`encode_segment`]/[`decode_segment`]): every message of the
//! replayed path is built as a [`Segment`], round-tripped through the
//! wire format, and printed from the decoded header.

use enzian_sim::explore::{self, ProtocolModel, SearchOutcome, StateLimit};

use crate::traffic::{decode_segment, encode_segment, flags, Segment};

use super::conn::{ConnEvent, ConnState, Connection};

/// A known protocol bug, injected on request so the checker can prove
/// it would catch it (the mutation self-test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpMutation {
    /// TimeWait does not linger: the endpoint closes the moment it
    /// acknowledges the peer's FIN, so a retransmitted FIN (its ACK
    /// was lost) meets a closed endpoint and the peer sticks in
    /// `LastAck` forever.
    SkipTimeWait,
    /// The passive side transmits data before the handshake completes,
    /// so a reordered segment can reach the active opener while it is
    /// still in `SynSent`.
    DataInSynSent,
    /// Endpoints never acknowledge a FIN, so every closer waits
    /// forever for an ACK that cannot arrive.
    SkipFinAck,
    /// Closing from `CloseWait` takes the active-close branch
    /// (`FinWait1`) instead of `LastAck`, leaving the endpoint waiting
    /// for a second FIN the peer will never send.
    SwapCloseOrder,
}

/// All mutations, for exhaustive self-tests.
pub const ALL_TCP_MUTATIONS: [TcpMutation; 4] = [
    TcpMutation::SkipTimeWait,
    TcpMutation::DataInSynSent,
    TcpMutation::SkipFinAck,
    TcpMutation::SwapCloseOrder,
];

/// Static configuration of a TCP model exploration.
///
/// `#[non_exhaustive]`: construct from a named preset
/// ([`TcpModelConfig::duplex`] / [`TcpModelConfig::deep`]) and adjust
/// fields with the `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct TcpModelConfig {
    /// Data segments the active opener transmits.
    pub data_a: u8,
    /// Data segments the passive side transmits.
    pub data_b: u8,
    /// Total segment drops the adversary may spend.
    pub loss_budget: u8,
    /// Total segment duplications the adversary may spend.
    pub dup_budget: u8,
    /// Retransmissions allowed **per segment kind** (SYN, SYN-ACK,
    /// each data segment, each side's FIN). Keeping this at least
    /// [`TcpModelConfig::loss_budget`] makes the channel eventually
    /// fair: to permanently lose a segment kind the adversary would
    /// need `retransmit_budget + 1` drops of it.
    pub retransmit_budget: u8,
    /// Abort with [`StateLimit`] beyond this many states.
    pub max_states: u64,
    /// Protocol bug to inject, if any.
    pub mutation: Option<TcpMutation>,
}

impl TcpModelConfig {
    /// One data segment from the active opener, one loss and one
    /// retransmission per kind: ~1.3*10^5 reachable states covering
    /// every handshake/teardown race under loss and reordering, in
    /// well under a second. The in-tree clean-exhaustion bar.
    pub fn one_way() -> Self {
        TcpModelConfig {
            data_a: 1,
            data_b: 0,
            loss_budget: 1,
            dup_budget: 0,
            retransmit_budget: 1,
            max_states: 500_000,
            mutation: None,
        }
    }

    /// One data segment each way: ~1.2*10^6 reachable states adding
    /// bidirectional data (and with it data crossing FINs in both
    /// directions). The mutation battery runs here — the passive side
    /// must have data to send for [`TcpMutation::DataInSynSent`].
    pub fn duplex() -> Self {
        TcpModelConfig {
            data_b: 1,
            max_states: 2_000_000,
            ..TcpModelConfig::one_way()
        }
    }

    /// The one-way space plus a duplication budget (~9.3*10^5 states):
    /// stale copies of every segment kind arriving arbitrarily late,
    /// including the retransmitted-FIN-into-TimeWait races.
    pub fn deep() -> Self {
        TcpModelConfig {
            dup_budget: 1,
            max_states: 2_000_000,
            ..TcpModelConfig::one_way()
        }
    }

    /// Returns the config with `data_a` replaced.
    pub fn with_data_a(mut self, data_a: u8) -> Self {
        self.data_a = data_a;
        self
    }

    /// Returns the config with `data_b` replaced.
    pub fn with_data_b(mut self, data_b: u8) -> Self {
        self.data_b = data_b;
        self
    }

    /// Returns the config with `loss_budget` replaced.
    pub fn with_loss_budget(mut self, loss_budget: u8) -> Self {
        self.loss_budget = loss_budget;
        self
    }

    /// Returns the config with `dup_budget` replaced.
    pub fn with_dup_budget(mut self, dup_budget: u8) -> Self {
        self.dup_budget = dup_budget;
        self
    }

    /// Returns the config with `retransmit_budget` replaced.
    pub fn with_retransmit_budget(mut self, retransmit_budget: u8) -> Self {
        self.retransmit_budget = retransmit_budget;
        self
    }

    /// Returns the config with `max_states` replaced.
    pub fn with_max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Returns the config with `mutation` replaced.
    pub fn with_mutation(mut self, mutation: Option<TcpMutation>) -> Self {
        self.mutation = mutation;
        self
    }
}

/// The invariant a violating state breaks (beyond the generic core's
/// deadlock and illegal-step classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpViolationKind {
    /// Both endpoints closed but some transmitted data never arrived.
    DataLoss,
}

impl std::fmt::Display for TcpViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcpViolationKind::DataLoss => f.write_str("data-delivery invariant"),
        }
    }
}

// ---------------------------------------------------------------------
// Segments and the model state
// ---------------------------------------------------------------------

/// A model segment. Data indices and cumulative acks are small
/// integers; the mapping to the real wire format is in the private
/// `wire_segment` helper. `Ord` gives the channel bags a canonical
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Seg {
    /// Connection request.
    Syn,
    /// The listener's handshake reply.
    SynAck,
    /// The third handshake segment.
    AckSyn,
    /// Data segment `i` (one virtual payload byte each).
    Data(u8),
    /// Cumulative data acknowledgement: `n` segments received.
    DataAck(u8),
    /// Sender is done after `total` data segments. Like every real TCP
    /// segment the FIN carries a cumulative ack: `acks_fin` is set when
    /// the sender has already processed the *peer's* FIN (it closes
    /// from `CloseWait`, or retransmits from `Closing`/`LastAck`), so
    /// one lost FIN-ACK cannot strand the peer — the FIN itself
    /// re-delivers the acknowledgement.
    Fin(u8, bool),
    /// Acknowledgement of a FIN.
    FinAck,
}

impl Seg {
    fn encode(self) -> [u8; 2] {
        match self {
            Seg::Syn => [0, 0],
            Seg::SynAck => [1, 0],
            Seg::AckSyn => [2, 0],
            Seg::Data(i) => [3, i],
            Seg::DataAck(n) => [4, n],
            Seg::Fin(t, a) => [5, ((a as u8) << 7) | t],
            Seg::FinAck => [6, 0],
        }
    }
}

impl std::fmt::Display for Seg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Seg::Syn => write!(f, "SYN"),
            Seg::SynAck => write!(f, "SYN-ACK"),
            Seg::AckSyn => write!(f, "ACK-of-SYN"),
            Seg::Data(i) => write!(f, "DATA({i})"),
            Seg::DataAck(n) => write!(f, "ACK({n})"),
            Seg::Fin(t, false) => write!(f, "FIN(total={t})"),
            Seg::Fin(t, true) => write!(f, "FIN(total={t},acks-fin)"),
            Seg::FinAck => write!(f, "FIN-ACK"),
        }
    }
}

fn enc_conn(c: ConnState) -> u8 {
    match c {
        ConnState::Closed => 0,
        ConnState::Listen => 1,
        ConnState::SynSent => 2,
        ConnState::SynReceived => 3,
        ConnState::Established => 4,
        ConnState::FinWait1 => 5,
        ConnState::FinWait2 => 6,
        ConnState::Closing => 7,
        ConnState::CloseWait => 8,
        ConnState::LastAck => 9,
        ConnState::TimeWait => 10,
    }
}

/// Drives one event through the real transition relation.
fn fsm(state: ConnState, event: ConnEvent) -> Result<ConnState, String> {
    Connection::at(state).on(event).map_err(|e| e.to_string())
}

/// The complete model state. Channels are sorted bags, so equality and
/// the canonical encoding are order-insensitive (reordering costs the
/// adversary nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpState {
    /// Active opener's connection state.
    a: ConnState,
    /// Passive side's connection state.
    b: ConnState,
    /// Data segments sent / received-in-order / acknowledged, per side.
    a_snd: u8,
    a_rcv: u8,
    a_acked: u8,
    b_snd: u8,
    b_rcv: u8,
    b_acked: u8,
    /// Out-of-order data held in each receiver's reassembly buffer
    /// (bit `i` = segment `i` arrived ahead of the in-order edge).
    /// Buffering keeps every delivered copy durable, so stranding a
    /// segment costs the adversary a drop of *every* copy — free
    /// reordering alone can never exceed the retransmission budget.
    a_rbuf: u8,
    b_rbuf: u8,
    /// In-flight segments a→b and b→a.
    ab: Vec<Seg>,
    ba: Vec<Seg>,
    /// Remaining adversary budgets.
    loss: u8,
    dup: u8,
    /// Remaining retransmissions per kind.
    rt_syn: u8,
    rt_syn_ack: u8,
    rt_fin_a: u8,
    rt_fin_b: u8,
    rt_data_a: Vec<u8>,
    rt_data_b: Vec<u8>,
}

/// One transition of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpAction {
    /// Transmit the next data segment.
    SendData { from_a: bool },
    /// The application closes this endpoint (emit FIN).
    Close { a: bool },
    /// Deliver one in-flight segment (any — the bag reorders freely).
    Deliver { to_a: bool, seg: Seg },
    /// The adversary drops one in-flight segment.
    Drop { to_a: bool, seg: Seg },
    /// The adversary duplicates one in-flight segment.
    Duplicate { to_a: bool, seg: Seg },
    /// The sender's retransmission timer fires for `seg`.
    Retransmit { from_a: bool, seg: Seg },
    /// The 2·MSL linger expires.
    TimeWaitExpire { a: bool },
}

impl std::fmt::Display for TcpAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let end = |a: bool| if a { "a" } else { "b" };
        match self {
            TcpAction::SendData { from_a } => write!(f, "{}: send next data segment", end(*from_a)),
            TcpAction::Close { a } => write!(f, "{}: application close", end(*a)),
            TcpAction::Deliver { to_a, seg } => write!(f, "deliver {seg} to {}", end(*to_a)),
            TcpAction::Drop { to_a, seg } => {
                write!(f, "channel to {}: drop {seg}", end(*to_a))
            }
            TcpAction::Duplicate { to_a, seg } => {
                write!(f, "channel to {}: duplicate {seg}", end(*to_a))
            }
            TcpAction::Retransmit { from_a, seg } => {
                write!(f, "{}: retransmit {seg}", end(*from_a))
            }
            TcpAction::TimeWaitExpire { a } => write!(f, "{}: time-wait expires", end(*a)),
        }
    }
}

/// A segment put on the wire while applying an action (`from_a` gives
/// the direction), for trace rendering.
type SentSeg = (bool, Seg);

/// A successor: the generic core's [`explore::Succ`] with the state
/// paired with its sent-segment log (stripped before the core).
type Succ = explore::Succ<(TcpState, Vec<SentSeg>), TcpAction>;

impl TcpState {
    fn init(cfg: &TcpModelConfig) -> Self {
        // Both opens happen before the first interleaving choice: the
        // active opener's SYN is already in flight, the listener
        // listens.
        let a = fsm(ConnState::Closed, ConnEvent::ActiveOpen).expect("active open is legal");
        let b = fsm(ConnState::Closed, ConnEvent::PassiveOpen).expect("passive open is legal");
        TcpState {
            a,
            b,
            a_snd: 0,
            a_rcv: 0,
            a_acked: 0,
            b_snd: 0,
            b_rcv: 0,
            b_acked: 0,
            a_rbuf: 0,
            b_rbuf: 0,
            ab: vec![Seg::Syn],
            ba: Vec::new(),
            loss: cfg.loss_budget,
            dup: cfg.dup_budget,
            rt_syn: cfg.retransmit_budget,
            rt_syn_ack: cfg.retransmit_budget,
            rt_fin_a: cfg.retransmit_budget,
            rt_fin_b: cfg.retransmit_budget,
            rt_data_a: vec![cfg.retransmit_budget; cfg.data_a as usize],
            rt_data_b: vec![cfg.retransmit_budget; cfg.data_b as usize],
        }
    }

    fn conn(&self, a: bool) -> ConnState {
        if a {
            self.a
        } else {
            self.b
        }
    }

    fn set_conn(&mut self, a: bool, c: ConnState) {
        if a {
            self.a = c;
        } else {
            self.b = c;
        }
    }

    fn snd(&self, a: bool) -> u8 {
        if a {
            self.a_snd
        } else {
            self.b_snd
        }
    }

    fn rcv(&self, a: bool) -> u8 {
        if a {
            self.a_rcv
        } else {
            self.b_rcv
        }
    }

    fn acked(&self, a: bool) -> u8 {
        if a {
            self.a_acked
        } else {
            self.b_acked
        }
    }

    /// The channel delivering **to** the given endpoint.
    fn chan_to(&mut self, to_a: bool) -> &mut Vec<Seg> {
        if to_a {
            &mut self.ba
        } else {
            &mut self.ab
        }
    }

    /// Puts `seg` on the wire from the given endpoint.
    fn send(&mut self, from_a: bool, seg: Seg, sent: &mut Vec<SentSeg>) {
        let chan = self.chan_to(!from_a);
        chan.push(seg);
        chan.sort_unstable();
        sent.push((from_a, seg));
    }

    fn remove(&mut self, to_a: bool, seg: Seg) {
        let chan = self.chan_to(to_a);
        let pos = chan
            .iter()
            .position(|s| *s == seg)
            .expect("segment enumerated from this channel");
        chan.remove(pos);
    }

    fn quiescent(&self) -> bool {
        self.a == ConnState::Closed
            && self.b == ConnState::Closed
            && self.ab.is_empty()
            && self.ba.is_empty()
    }

    fn canonical(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.push(enc_conn(self.a));
        out.push(enc_conn(self.b));
        out.extend_from_slice(&[
            self.a_snd,
            self.a_rcv,
            self.a_acked,
            self.b_snd,
            self.b_rcv,
            self.b_acked,
            self.a_rbuf,
            self.b_rbuf,
            self.loss,
            self.dup,
            self.rt_syn,
            self.rt_syn_ack,
            self.rt_fin_a,
            self.rt_fin_b,
        ]);
        out.extend_from_slice(&self.rt_data_a);
        out.extend_from_slice(&self.rt_data_b);
        for chan in [&self.ab, &self.ba] {
            out.push(chan.len() as u8);
            for s in chan {
                out.extend_from_slice(&s.encode());
            }
        }
        out
    }

    /// Checks the state invariants; `None` means clean.
    fn check(&self) -> Option<(TcpViolationKind, String)> {
        if self.a == ConnState::Closed && self.b == ConnState::Closed {
            if self.b_rcv != self.a_snd {
                return Some((
                    TcpViolationKind::DataLoss,
                    format!(
                        "both endpoints closed but b received {} of a's {} data segments",
                        self.b_rcv, self.a_snd
                    ),
                ));
            }
            if self.a_rcv != self.b_snd {
                return Some((
                    TcpViolationKind::DataLoss,
                    format!(
                        "both endpoints closed but a received {} of b's {} data segments",
                        self.a_rcv, self.b_snd
                    ),
                ));
            }
        }
        None
    }

    /// Delivery policy: which [`ConnEvent`] (and reply segments) a
    /// segment triggers at the receiving endpoint. `Ok(None)` means the
    /// delivery is blocked (a FIN ahead of missing data stays queued,
    /// modelling in-sequence processing); `Err` is a protocol-legality
    /// violation.
    fn receive(
        &mut self,
        cfg: &TcpModelConfig,
        to_a: bool,
        seg: Seg,
        sent: &mut Vec<SentSeg>,
    ) -> Result<Option<()>, String> {
        use ConnState::*;
        let r = self.conn(to_a);
        match seg {
            // Duplicate SYNs are benign outside Listen; the listener's
            // SYN-ACK retransmission heals losses.
            Seg::Syn => {
                if r == Listen {
                    self.set_conn(to_a, fsm(r, ConnEvent::SynRcvd)?);
                    self.send(to_a, Seg::SynAck, sent);
                }
            }
            Seg::SynAck => match r {
                SynSent => {
                    self.set_conn(to_a, fsm(r, ConnEvent::SynAckRcvd)?);
                    self.send(to_a, Seg::AckSyn, sent);
                }
                Closed => {}
                // A duplicate SYN-ACK means the listener has not seen
                // our handshake ACK yet (lost or still in flight):
                // acknowledge again.
                _ => self.send(to_a, Seg::AckSyn, sent),
            },
            // Outside SynReceived a handshake ACK is a benign
            // duplicate once established (or long gone).
            Seg::AckSyn => {
                if r == SynReceived {
                    self.set_conn(to_a, fsm(r, ConnEvent::AckRcvd)?);
                }
            }
            Seg::Data(i) => match r {
                Listen | SynSent => {
                    return Err(format!(
                        "data segment {i} delivered in {r:?}, before the connection is established"
                    ));
                }
                Closed => {} // stale duplicate after teardown
                _ => {
                    if r == SynReceived {
                        // A data segment carries the handshake ACK
                        // implicitly (RFC 793's third segment may be
                        // piggybacked).
                        self.set_conn(to_a, fsm(r, ConnEvent::AckRcvd)?);
                    }
                    {
                        let (rcv, rbuf) = if to_a {
                            (&mut self.a_rcv, &mut self.a_rbuf)
                        } else {
                            (&mut self.b_rcv, &mut self.b_rbuf)
                        };
                        // Buffer out-of-order data and advance the
                        // in-order edge through whatever is contiguous;
                        // duplicates below the edge are no-ops. Either
                        // way a cumulative ack rides back.
                        if i >= *rcv {
                            *rbuf |= 1 << i;
                        }
                        while *rbuf & (1 << *rcv) != 0 {
                            *rbuf &= !(1 << *rcv);
                            *rcv += 1;
                        }
                    }
                    let ack = Seg::DataAck(self.rcv(to_a));
                    self.send(to_a, ack, sent);
                }
            },
            Seg::DataAck(n) => match r {
                Listen | SynSent => {
                    return Err(format!(
                        "cumulative ack {n} delivered in {r:?}, before the connection is \
                         established"
                    ));
                }
                Closed => {}
                _ => {
                    let acked = if to_a {
                        &mut self.a_acked
                    } else {
                        &mut self.b_acked
                    };
                    *acked = (*acked).max(n);
                }
            },
            Seg::Fin(total, acks_fin) => match r {
                Listen | SynSent => {
                    return Err(format!(
                        "FIN delivered in {r:?}, before the connection is established"
                    ));
                }
                Closed => {} // stale duplicate; a live peer deadlocks instead
                _ => {
                    if self.rcv(to_a) < total {
                        // In-sequence processing: the FIN waits for the
                        // data in front of it.
                        return Ok(None);
                    }
                    let mut r = r;
                    if acks_fin && matches!(r, FinWait1 | Closing) {
                        // The FIN's cumulative ack covers our own FIN.
                        r = fsm(r, ConnEvent::AckRcvd)?;
                        if r == TimeWait && cfg.mutation == Some(TcpMutation::SkipTimeWait) {
                            r = fsm(r, ConnEvent::TimeWaitExpired)?;
                        }
                        self.set_conn(to_a, r);
                    }
                    match r {
                        // First FIN: drive the real transition.
                        SynReceived | Established | FinWait1 | FinWait2 | TimeWait => {
                            let mut next = fsm(r, ConnEvent::FinRcvd)?;
                            if next == TimeWait && cfg.mutation == Some(TcpMutation::SkipTimeWait) {
                                // The injected bug: no 2·MSL linger.
                                next = fsm(next, ConnEvent::TimeWaitExpired)?;
                            }
                            self.set_conn(to_a, next);
                        }
                        // Retransmitted FIN after we already processed
                        // it: re-acknowledge, no state change.
                        CloseWait | Closing | LastAck => {}
                        // Only reachable when the SkipTimeWait collapse
                        // above closed us mid-delivery: a closed
                        // endpoint acknowledges nothing.
                        Closed => return Ok(Some(())),
                        Listen | SynSent => unreachable!("handled above"),
                    }
                    if cfg.mutation != Some(TcpMutation::SkipFinAck) {
                        self.send(to_a, Seg::FinAck, sent);
                    }
                }
            },
            Seg::FinAck => match r {
                FinWait1 | Closing | LastAck => {
                    let mut next = fsm(r, ConnEvent::AckRcvd)?;
                    if next == TimeWait && cfg.mutation == Some(TcpMutation::SkipTimeWait) {
                        next = fsm(next, ConnEvent::TimeWaitExpired)?;
                    }
                    self.set_conn(to_a, next);
                }
                FinWait2 | TimeWait | Closed => {} // benign duplicate
                Listen | SynSent | SynReceived | Established | CloseWait => {
                    return Err(format!(
                        "FIN-ACK delivered in {r:?}, to an endpoint that never sent a FIN"
                    ));
                }
            },
        }
        Ok(Some(()))
    }

    /// All enabled transitions, in a fixed deterministic order.
    fn successors(&self, cfg: &TcpModelConfig) -> Vec<Succ> {
        use ConnState::*;
        let mut out = Vec::new();

        // Data transmission: only while the send side of the stream is
        // open (a FIN seals it).
        for from_a in [true, false] {
            let conn = self.conn(from_a);
            let budget = if from_a { cfg.data_a } else { cfg.data_b };
            let open = matches!(conn, Established | CloseWait)
                || (cfg.mutation == Some(TcpMutation::DataInSynSent)
                    && !from_a
                    && conn == SynReceived);
            if open && self.snd(from_a) < budget {
                let mut s = self.clone();
                let mut sent = Vec::new();
                let seg = Seg::Data(s.snd(from_a));
                if from_a {
                    s.a_snd += 1;
                } else {
                    s.b_snd += 1;
                }
                s.send(from_a, seg, &mut sent);
                out.push(Succ {
                    action: TcpAction::SendData { from_a },
                    result: Ok((s, sent)),
                });
            }
        }

        // Application close.
        for a in [true, false] {
            let conn = self.conn(a);
            if matches!(conn, Established | CloseWait) {
                let mut s = self.clone();
                let mut sent = Vec::new();
                let action = TcpAction::Close { a };
                match fsm(conn, ConnEvent::Close) {
                    Ok(mut next) => {
                        if conn == CloseWait && cfg.mutation == Some(TcpMutation::SwapCloseOrder) {
                            // The injected bug: the passive closer takes
                            // the active-close branch.
                            next = FinWait1;
                        }
                        s.set_conn(a, next);
                        // Closing from CloseWait means the peer's FIN is
                        // already processed: the FIN's cumulative ack
                        // covers it.
                        let fin = Seg::Fin(s.snd(a), conn == CloseWait);
                        s.send(a, fin, &mut sent);
                        out.push(Succ {
                            action,
                            result: Ok((s, sent)),
                        });
                    }
                    Err(e) => out.push(Succ {
                        action,
                        result: Err(e),
                    }),
                }
            }
        }

        // Deliveries: any distinct in-flight segment, either direction.
        for to_a in [false, true] {
            let chan = if to_a { &self.ba } else { &self.ab };
            let mut last = None;
            for &seg in chan {
                if last == Some(seg) {
                    continue; // the bag is sorted; duplicates collapse
                }
                last = Some(seg);
                let mut s = self.clone();
                s.remove(to_a, seg);
                let mut sent = Vec::new();
                let action = TcpAction::Deliver { to_a, seg };
                match s.receive(cfg, to_a, seg, &mut sent) {
                    Ok(Some(())) => out.push(Succ {
                        action,
                        result: Ok((s, sent)),
                    }),
                    Ok(None) => {} // blocked; stays queued
                    Err(e) => out.push(Succ {
                        action,
                        result: Err(e),
                    }),
                }
            }
        }

        // Retransmissions: enabled while the sender still waits for the
        // acknowledgement and no copy is in flight, each consuming the
        // per-kind budget.
        for from_a in [true, false] {
            let conn = self.conn(from_a);
            let chan = if from_a { &self.ab } else { &self.ba };
            let mut candidates: Vec<(Seg, bool)> = Vec::new();
            if from_a {
                candidates.push((Seg::Syn, conn == SynSent && self.rt_syn > 0));
            } else {
                candidates.push((Seg::SynAck, conn == SynReceived && self.rt_syn_ack > 0));
            }
            let rt_data = if from_a {
                &self.rt_data_a
            } else {
                &self.rt_data_b
            };
            let data_live = !matches!(conn, Closed | Listen | SynSent | SynReceived);
            for i in self.acked(from_a)..self.snd(from_a) {
                candidates.push((Seg::Data(i), data_live && rt_data[i as usize] > 0));
            }
            let rt_fin = if from_a { self.rt_fin_a } else { self.rt_fin_b };
            // A retransmitted FIN recomputes its cumulative ack: by
            // Closing/LastAck the peer's FIN has been processed.
            candidates.push((
                Seg::Fin(self.snd(from_a), matches!(conn, Closing | LastAck)),
                matches!(conn, FinWait1 | Closing | LastAck)
                    && rt_fin > 0
                    && !chan.iter().any(|s| matches!(s, Seg::Fin(..))),
            ));
            for (seg, enabled) in candidates {
                if !enabled || chan.contains(&seg) {
                    continue;
                }
                let mut s = self.clone();
                match seg {
                    Seg::Syn => s.rt_syn -= 1,
                    Seg::SynAck => s.rt_syn_ack -= 1,
                    Seg::Data(i) => {
                        if from_a {
                            s.rt_data_a[i as usize] -= 1;
                        } else {
                            s.rt_data_b[i as usize] -= 1;
                        }
                    }
                    Seg::Fin(..) => {
                        if from_a {
                            s.rt_fin_a -= 1;
                        } else {
                            s.rt_fin_b -= 1;
                        }
                    }
                    _ => unreachable!("only timer-backed segments are candidates"),
                }
                let mut sent = Vec::new();
                s.send(from_a, seg, &mut sent);
                out.push(Succ {
                    action: TcpAction::Retransmit { from_a, seg },
                    result: Ok((s, sent)),
                });
            }
        }

        // TimeWait expiry: the 2·MSL linger outlasts every in-flight or
        // retransmittable FIN, modelled as a guard — nothing inbound,
        // and the peer neither owes nor awaits a FIN-ACK.
        for a in [true, false] {
            let inbound_empty = if a {
                self.ba.is_empty()
            } else {
                self.ab.is_empty()
            };
            let peer = self.conn(!a);
            if self.conn(a) == TimeWait
                && inbound_empty
                && !matches!(peer, FinWait1 | Closing | LastAck)
            {
                let mut s = self.clone();
                let action = TcpAction::TimeWaitExpire { a };
                match fsm(TimeWait, ConnEvent::TimeWaitExpired) {
                    Ok(next) => {
                        s.set_conn(a, next);
                        out.push(Succ {
                            action,
                            result: Ok((s, Vec::new())),
                        });
                    }
                    Err(e) => out.push(Succ {
                        action,
                        result: Err(e),
                    }),
                }
            }
        }

        // Adversary: drop or duplicate any distinct in-flight segment.
        for (budgeted, is_drop) in [(self.loss > 0, true), (self.dup > 0, false)] {
            if !budgeted {
                continue;
            }
            for to_a in [false, true] {
                let chan = if to_a { &self.ba } else { &self.ab };
                let mut last = None;
                for &seg in chan {
                    if last == Some(seg) {
                        continue;
                    }
                    last = Some(seg);
                    let mut s = self.clone();
                    let action = if is_drop {
                        s.remove(to_a, seg);
                        s.loss -= 1;
                        TcpAction::Drop { to_a, seg }
                    } else {
                        s.dup -= 1;
                        let c = s.chan_to(to_a);
                        c.push(seg);
                        c.sort_unstable();
                        TcpAction::Duplicate { to_a, seg }
                    };
                    out.push(Succ {
                        action,
                        result: Ok((s, Vec::new())),
                    });
                }
            }
        }

        out
    }
}

// ---------------------------------------------------------------------
// Wire rendering
// ---------------------------------------------------------------------

/// Simulated ports of the two endpoints (a connects to b's listener).
const PORT_A: u32 = 40_000;
const PORT_B: u32 = 80;

/// Maps a model segment onto the real traffic-plane wire format.
fn wire_segment(from_a: bool, seg: Seg) -> Segment {
    let (flags, seq, ack, len) = match seg {
        Seg::Syn => (flags::SYN, 0, 0, 0),
        Seg::SynAck => (flags::SYN | flags::ACK, 0, 0, 0),
        Seg::AckSyn => (flags::ACK | flags::CTL, 0, 0, 0),
        Seg::Data(i) => (flags::ACK, u32::from(i), 0, 1),
        Seg::DataAck(n) => (flags::ACK, 0, u32::from(n), 0),
        Seg::Fin(t, acks_fin) => (flags::FIN | flags::ACK, u32::from(t), acks_fin as u32, 0),
        Seg::FinAck => (flags::ACK | flags::CTL, 0, 0, 0),
    };
    Segment {
        flags,
        src_board: if from_a { 0 } else { 1 },
        dst_board: if from_a { 1 } else { 0 },
        src_port: if from_a { PORT_A } else { PORT_B },
        dst_port: if from_a { PORT_B } else { PORT_A },
        seq,
        ack,
        len,
    }
}

/// Renders one on-the-wire segment by round-tripping it through the
/// real 28-byte codec and printing the decoded header.
fn render_wire(idx: usize, from_a: bool, seg: Seg) -> String {
    let bytes = encode_segment(&wire_segment(from_a, seg));
    let d = decode_segment(&bytes).expect("model segments round-trip the segment codec");
    let dir = if from_a { "a->b" } else { "b->a" };
    let mut fl = Vec::new();
    for (bit, name) in [
        (flags::SYN, "SYN"),
        (flags::ACK, "ACK"),
        (flags::FIN, "FIN"),
        (flags::CTL, "CTL"),
    ] {
        if d.flags & bit != 0 {
            fl.push(name);
        }
    }
    format!(
        "[{idx:03}] {dir} {:<11} {:05}->{:05} seq={} ack={} len={} ({} wire bytes)",
        fl.join("|"),
        d.src_port,
        d.dst_port,
        d.seq,
        d.ack,
        d.len,
        bytes.len() as u64 + u64::from(d.len),
    )
}

// ---------------------------------------------------------------------
// The model
// ---------------------------------------------------------------------

/// The TCP instance of the generic [`ProtocolModel`]. See the module
/// docs for the model and the invariants it checks.
#[derive(Debug, Clone)]
pub struct TcpModel {
    cfg: TcpModelConfig,
}

impl TcpModel {
    /// Creates a model for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is outside the tractable envelope
    /// (at most 4 data segments per side, budgets at most 4) or is not
    /// eventually fair (`retransmit_budget < loss_budget` would let
    /// the adversary starve a retransmission and fail the clean model
    /// with a spurious deadlock).
    pub fn new(cfg: TcpModelConfig) -> Self {
        assert!(
            cfg.data_a <= 4,
            "data_a must be at most 4, got {}",
            cfg.data_a
        );
        assert!(
            cfg.data_b <= 4,
            "data_b must be at most 4, got {}",
            cfg.data_b
        );
        assert!(cfg.loss_budget <= 4, "loss_budget must be at most 4");
        assert!(cfg.dup_budget <= 4, "dup_budget must be at most 4");
        assert!(
            cfg.retransmit_budget <= 4,
            "retransmit_budget must be at most 4"
        );
        assert!(
            cfg.retransmit_budget >= cfg.loss_budget,
            "retransmit_budget {} < loss_budget {}: the channel would not be eventually fair",
            cfg.retransmit_budget,
            cfg.loss_budget
        );
        TcpModel { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &TcpModelConfig {
        &self.cfg
    }

    /// Exhaustive canonicalized BFS from the initial state.
    ///
    /// # Errors
    ///
    /// Returns [`StateLimit`] if the state budget runs out before the
    /// frontier drains.
    pub fn run_exhaustive(&self) -> Result<SearchOutcome<TcpViolationKind>, StateLimit> {
        explore::explore(self, self.cfg.max_states)
    }

    /// Seeded random walk, checking the same invariants as the
    /// exhaustive search. Deterministic for a given seed.
    pub fn random_walk(&self, seed: u64, max_steps: u64) -> SearchOutcome<TcpViolationKind> {
        explore::random_walk(self, seed, max_steps)
    }

    /// Replays the canonical orderly schedule — handshake, full data
    /// exchange, active close by `a` — through the model and returns
    /// each endpoint's [`ConnState`] sequence (starting from `Closed`).
    /// [`TcpEngine::session_traced`](super::TcpEngine::session_traced)
    /// walks the same schedule on the real engine; the conformance test
    /// asserts the sequences match byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if a schedule step is not an enabled action of the model
    /// (the model and the engine have diverged).
    pub fn orderly_trace(&self) -> (Vec<ConnState>, Vec<ConnState>) {
        let cfg = &self.cfg;
        let mut plan: Vec<TcpAction> = vec![
            TcpAction::Deliver {
                to_a: false,
                seg: Seg::Syn,
            },
            TcpAction::Deliver {
                to_a: true,
                seg: Seg::SynAck,
            },
            TcpAction::Deliver {
                to_a: false,
                seg: Seg::AckSyn,
            },
        ];
        for i in 0..cfg.data_a {
            plan.push(TcpAction::SendData { from_a: true });
            plan.push(TcpAction::Deliver {
                to_a: false,
                seg: Seg::Data(i),
            });
            plan.push(TcpAction::Deliver {
                to_a: true,
                seg: Seg::DataAck(i + 1),
            });
        }
        for i in 0..cfg.data_b {
            plan.push(TcpAction::SendData { from_a: false });
            plan.push(TcpAction::Deliver {
                to_a: true,
                seg: Seg::Data(i),
            });
            plan.push(TcpAction::Deliver {
                to_a: false,
                seg: Seg::DataAck(i + 1),
            });
        }
        plan.extend([
            TcpAction::Close { a: true },
            TcpAction::Deliver {
                to_a: false,
                seg: Seg::Fin(cfg.data_a, false),
            },
            TcpAction::Deliver {
                to_a: true,
                seg: Seg::FinAck,
            },
            TcpAction::Close { a: false },
            TcpAction::Deliver {
                to_a: true,
                seg: Seg::Fin(cfg.data_b, true),
            },
            TcpAction::Deliver {
                to_a: false,
                seg: Seg::FinAck,
            },
            TcpAction::TimeWaitExpire { a: true },
        ]);

        let mut state = TcpState::init(cfg);
        let mut trace_a = vec![ConnState::Closed, state.a];
        let mut trace_b = vec![ConnState::Closed, state.b];
        for action in plan {
            let succs = state.successors(cfg);
            let succ = succs
                .into_iter()
                .find(|s| s.action == action)
                .unwrap_or_else(|| panic!("orderly schedule step not enabled: {action}"));
            let (next, _) = succ
                .result
                .unwrap_or_else(|e| panic!("orderly schedule step {action} illegal: {e}"));
            if next.a != state.a {
                trace_a.push(next.a);
            }
            if next.b != state.b {
                trace_b.push(next.b);
            }
            state = next;
        }
        assert!(state.quiescent(), "orderly schedule must end quiescent");
        (trace_a, trace_b)
    }
}

impl ProtocolModel for TcpModel {
    type State = TcpState;
    type Action = TcpAction;
    type Kind = TcpViolationKind;

    fn initial(&self) -> TcpState {
        TcpState::init(&self.cfg)
    }

    fn successors(&self, state: &TcpState) -> Vec<explore::Succ<TcpState, TcpAction>> {
        state
            .successors(&self.cfg)
            .into_iter()
            .map(|s| explore::Succ {
                action: s.action,
                result: s.result.map(|(state, _sent)| state),
            })
            .collect()
    }

    fn quiescent(&self, state: &TcpState) -> bool {
        state.quiescent()
    }

    fn canonical(&self, state: &TcpState) -> Vec<u8> {
        state.canonical()
    }

    fn check(&self, state: &TcpState) -> Option<(TcpViolationKind, String)> {
        state.check()
    }

    /// Replays `path` from the initial state and renders every segment
    /// the replay puts on the wire through the real 28-byte codec
    /// (the initial SYN is shown first: it is in flight from step
    /// zero).
    fn render_path(&self, path: &[TcpAction]) -> String {
        let mut state = TcpState::init(&self.cfg);
        let mut lines = vec![render_wire(0, true, Seg::Syn)];
        for action in path {
            let succs = state.successors(&self.cfg);
            let Some(succ) = succs.into_iter().find(|s| s.action == *action) else {
                break; // the final action errored; nothing more to replay
            };
            if let Ok((next, sent)) = succ.result {
                for (from_a, seg) in sent {
                    lines.push(render_wire(lines.len(), from_a, seg));
                }
                state = next;
            }
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use enzian_sim::explore::{expect_clean, expect_violation, Violation};

    use super::*;

    #[test]
    fn one_way_exhausts_ten_thousand_states_clean() {
        // The acceptance bar: a >= 10^4-state bounded space, exhausted
        // with zero violations.
        let stats = expect_clean(
            &TcpModel::new(TcpModelConfig::one_way()),
            500_000,
            "one_way",
        );
        assert!(
            stats.states >= 10_000,
            "the one-way space must clear 10^4 states, got {}",
            stats.states
        );
        assert!(stats.transitions > stats.states);
    }

    #[test]
    fn duplication_budget_is_clean_on_the_control_plane() {
        // No data, but one duplication on top of loss: stale handshake
        // and teardown segments arriving arbitrarily late.
        let cfg = TcpModelConfig::deep().with_data_a(0);
        let stats = expect_clean(&TcpModel::new(cfg), 500_000, "dup control plane");
        assert!(stats.states > 10_000, "got {}", stats.states);
    }

    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            TcpModel::new(TcpModelConfig::one_way())
                .run_exhaustive()
                .unwrap()
                .stats
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lossless_configuration_is_clean_too() {
        let cfg = TcpModelConfig::duplex()
            .with_loss_budget(0)
            .with_retransmit_budget(0);
        expect_clean(&TcpModel::new(cfg), 1_000_000, "lossless");
    }

    #[test]
    fn every_mutation_is_caught_with_a_rendered_counterexample() {
        for m in ALL_TCP_MUTATIONS {
            let cfg = TcpModelConfig::duplex().with_mutation(Some(m));
            let cx = expect_violation(&TcpModel::new(cfg), 2_000_000, &format!("{m:?}"));
            match m {
                TcpMutation::DataInSynSent => {
                    assert_eq!(cx.violation, Violation::IllegalStep, "{m:?}: {cx}");
                    assert!(
                        cx.description.contains("SynSent"),
                        "{m:?}: wrong description: {}",
                        cx.description
                    );
                }
                TcpMutation::SkipTimeWait
                | TcpMutation::SkipFinAck
                | TcpMutation::SwapCloseOrder => {
                    assert_eq!(cx.violation, Violation::Deadlock, "{m:?}: {cx}");
                }
            }
            assert!(!cx.actions.is_empty(), "{m:?}: empty action path");
            // The counterexample went through the real wire codec.
            assert!(
                cx.trace.contains("a->b") && cx.trace.contains("wire bytes"),
                "{m:?}: trace not rendered through the codec:\n{}",
                cx.trace
            );
        }
    }

    #[test]
    fn state_limit_is_a_checked_error() {
        let cfg = TcpModelConfig::duplex().with_max_states(10);
        let err = TcpModel::new(cfg).run_exhaustive().unwrap_err();
        assert_eq!(err, StateLimit { limit: 10 });
    }

    #[test]
    fn random_walk_is_deterministic_and_clean() {
        let model = TcpModel::new(TcpModelConfig::deep());
        let a = model.random_walk(7, 4_000);
        let b = model.random_walk(7, 4_000);
        assert!(a.stats.max_depth > 0);
        assert_eq!(a.stats, b.stats);
        assert!(a.violation.is_none(), "{}", a.violation.unwrap());
        assert!(a.stats.transitions > 0);
    }

    #[test]
    fn random_walk_finds_an_injected_bug() {
        let cfg = TcpModelConfig::duplex().with_mutation(Some(TcpMutation::SkipFinAck));
        let model = TcpModel::new(cfg);
        let found = (0..16).any(|seed| model.random_walk(seed, 10_000).violation.is_some());
        assert!(found, "no seed found the skipped FIN-ACK");
    }

    #[test]
    fn eventual_fairness_guard_rejects_starvable_budgets() {
        let cfg = TcpModelConfig::duplex()
            .with_loss_budget(2)
            .with_retransmit_budget(1);
        assert!(std::panic::catch_unwind(|| TcpModel::new(cfg)).is_err());
    }

    #[test]
    fn orderly_trace_matches_the_rfc_state_sequences() {
        use ConnState::*;
        let (a, b) = TcpModel::new(TcpModelConfig::duplex()).orderly_trace();
        assert_eq!(
            a,
            vec![
                Closed,
                SynSent,
                Established,
                FinWait1,
                FinWait2,
                TimeWait,
                Closed
            ]
        );
        assert_eq!(
            b,
            vec![
                Closed,
                Listen,
                SynReceived,
                Established,
                CloseWait,
                LastAck,
                Closed
            ]
        );
    }

    #[test]
    fn counterexample_renders_decoded_segments() {
        let cfg = TcpModelConfig::duplex().with_mutation(Some(TcpMutation::DataInSynSent));
        let cx = TcpModel::new(cfg)
            .run_exhaustive()
            .unwrap()
            .violation
            .expect("must be caught");
        let rendered = cx.to_string();
        assert!(rendered.contains("violated"));
        assert!(rendered.contains("path ("));
        assert!(rendered.contains("decoded message trace"));
        assert!(rendered.contains("SYN"), "handshake rendered: {rendered}");
    }
}
