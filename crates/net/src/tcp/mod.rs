//! A segment-level TCP engine split along offload boundaries.
//!
//! The monolithic engine entangled four concerns that hardware offload
//! needs separated (the mlwip argument): **connection management**
//! ([`conn`] — the handshake/teardown FSM), **reliability**
//! ([`reliability`] — segmentation, checksums, go-back-N retransmission,
//! in-order reassembly), **congestion control** ([`congestion`] — a
//! [`CongestionController`] trait with fixed-window, Reno, and
//! CUBIC-shaped implementations), and **flow control** ([`flow`] —
//! receive-window accounting and the ack ledger). [`TcpEngine`] is now a
//! composition of those modules, and a stack preset is a *module
//! selection*:
//!
//! * [`TcpStackConfig::fpga_coyote`] — every module on the FPGA cost
//!   model: 64 B per 300 MHz cycle in a single pipeline shared by all
//!   flows, fixed hardware window (paper §5.2: performance independent
//!   of flow count);
//! * [`TcpStackConfig::linux_kernel`] — every module on the CPU cost
//!   model: a fixed per-segment cost (interrupt, skb bookkeeping, copy),
//!   so one flow tops out well below 100 Gb/s and ~4 flows are needed to
//!   saturate the link;
//! * [`TcpStackConfig::hybrid_offload`] — **a new point between the
//!   Fig. 7 extremes**: reliability/segmentation on the FPGA cost model
//!   (it touches every byte), congestion/flow *policy* on the CPU cost
//!   model (it only touches acks), selected as Reno over the FPGA data
//!   path with a per-ack CPU policy cost.
//!
//! The two original presets keep fixed-window congestion control and a
//! zero per-ack cost, which makes the composed engine's arithmetic
//! — and therefore every [`TransferOutcome`] — bit-identical to the
//! monolith's (pinned by `tests/tcp_golden.rs`).
//!
//! The engine still does real protocol work: it segments the byte
//! stream, computes and verifies the Internet checksum on every segment,
//! enforces the composed send window with cumulative acknowledgements,
//! and recovers from injected loss with go-back-N retransmission on
//! timeout. Timing comes from the [`EthLink`] plus per-segment
//! processing costs.

pub mod congestion;
pub mod conn;
pub mod flow;
pub mod model;
pub mod mux;
pub mod reliability;

pub use congestion::{CcAlgorithm, CongestionController, CubicShaped, FixedWindow, Reno};
pub use conn::{ConnError, ConnEvent, ConnState, Connection};
pub use flow::{AckLedger, SendWindow};
pub use model::{TcpModel, TcpModelConfig, TcpMutation, TcpViolationKind, ALL_TCP_MUTATIONS};
pub use mux::{MuxStats, SessionMux, WireSegment};
pub use reliability::{checksum_verifies, internet_checksum, segment_len, GoBackN, Reassembler};

use enzian_sim::stats::Summary;
use enzian_sim::telemetry::MetricsRegistry;
use enzian_sim::{CalendarQueue, Duration, FaultPlan, FaultSpec, Time};

use crate::eth::{EthLink, Switch};

/// Payload-free control segments (SYN, FIN, bare acks) still occupy this
/// many bytes on the wire.
const CONTROL_SEGMENT_BYTES: u64 = 64;

/// Which stack personality a config models — equivalently, which side of
/// the CPU/FPGA boundary each module lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// The single-pipeline hardware stack (Sidler et al., as ported to
    /// Enzian as a Coyote service): every module in the FPGA.
    FpgaPipeline,
    /// A kernel software stack on a fast server core: every module on
    /// the CPU.
    Kernel,
    /// Reliability/segmentation in the FPGA pipeline, congestion/flow
    /// policy on the CPU — the point between the Fig. 7 extremes.
    Hybrid,
}

/// Cost/parameter set for one endpoint's stack.
///
/// `#[non_exhaustive]`: construct from a named preset
/// ([`TcpStackConfig::fpga_coyote`] / [`TcpStackConfig::linux_kernel`] /
/// [`TcpStackConfig::hybrid_offload`]) and adjust fields with the
/// `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct TcpStackConfig {
    /// Stack personality.
    pub kind: StackKind,
    /// Maximum segment payload (MTU minus headers).
    pub mss: usize,
    /// Receive window in bytes (the flow-control module's bound).
    pub window: u64,
    /// Fixed per-segment processing cost (reliability data path).
    pub per_segment: Duration,
    /// Additional processing cost per 64 bytes of payload.
    pub per_64_bytes: Duration,
    /// One-time per-transfer overhead (socket wakeup/syscall path for
    /// the kernel stack; nil for hardware).
    pub per_transfer: Duration,
    /// Per-ack policy cost on the sender (congestion/flow decision).
    /// Zero when policy lives next to the data path; nonzero on the
    /// hybrid preset, where each ack crosses to the CPU.
    pub per_ack: Duration,
    /// Retransmission timeout (reliability module).
    pub rto: Duration,
    /// Congestion-control module selection.
    pub cc: CcAlgorithm,
}

impl TcpStackConfig {
    /// Returns the config with `kind` replaced.
    pub fn with_kind(mut self, kind: StackKind) -> Self {
        self.kind = kind;
        self
    }

    /// Returns the config with `mss` replaced.
    pub fn with_mss(mut self, mss: usize) -> Self {
        self.mss = mss;
        self
    }

    /// Returns the config with `window` replaced.
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window;
        self
    }

    /// Returns the config with `per_segment` replaced.
    pub fn with_per_segment(mut self, cost: Duration) -> Self {
        self.per_segment = cost;
        self
    }

    /// Returns the config with `per_64_bytes` replaced.
    pub fn with_per_64_bytes(mut self, cost: Duration) -> Self {
        self.per_64_bytes = cost;
        self
    }

    /// Returns the config with `per_transfer` replaced.
    pub fn with_per_transfer(mut self, cost: Duration) -> Self {
        self.per_transfer = cost;
        self
    }

    /// Returns the config with `per_ack` replaced.
    pub fn with_per_ack(mut self, cost: Duration) -> Self {
        self.per_ack = cost;
        self
    }

    /// Returns the config with `rto` replaced.
    pub fn with_rto(mut self, rto: Duration) -> Self {
        self.rto = rto;
        self
    }

    /// Returns the config with the congestion controller replaced.
    pub fn with_cc(mut self, cc: CcAlgorithm) -> Self {
        self.cc = cc;
        self
    }

    /// The FPGA stack at a 2 KiB MTU on a 300 MHz shell clock: every
    /// module in hardware, fixed-window congestion control (the
    /// pipeline's buffer is the window).
    pub fn fpga_coyote() -> Self {
        TcpStackConfig {
            kind: StackKind::FpgaPipeline,
            mss: 2048,
            window: 256 * 1024,
            per_segment: Duration::from_ns(30),
            per_64_bytes: Duration::from_ns(3), // 64 B/cycle at ~300 MHz
            per_transfer: Duration::ZERO,
            per_ack: Duration::ZERO,
            rto: Duration::from_us(500),
            cc: CcAlgorithm::Fixed,
        }
    }

    /// A Linux kernel stack on a Xeon Gold core at MTU 1500: every
    /// module on the CPU. Fixed-window congestion control keeps the
    /// preset bit-identical to the pre-split monolith; select
    /// [`CcAlgorithm::Reno`]/[`CcAlgorithm::Cubic`] with
    /// [`with_cc`](Self::with_cc) to study real kernel policies.
    pub fn linux_kernel() -> Self {
        TcpStackConfig {
            kind: StackKind::Kernel,
            mss: 1448,
            window: 2 * 1024 * 1024,
            per_segment: Duration::from_ns(430),
            per_64_bytes: Duration::from_ps(400), // memcpy at ~160 GB/s
            per_transfer: Duration::from_us(24),
            per_ack: Duration::ZERO,
            rto: Duration::from_ms(2),
            cc: CcAlgorithm::Fixed,
        }
    }

    /// The hybrid offload point the module split exists to express:
    /// reliability/segmentation in the FPGA pipeline (FPGA per-byte
    /// costs), congestion/flow policy on the CPU (Reno, with a per-ack
    /// CPU decision cost and a CPU-scale RTO). Sits between the Fig. 7
    /// extremes: the data path streams at pipeline speed once Reno's
    /// slow start has opened the window.
    pub fn hybrid_offload() -> Self {
        TcpStackConfig {
            kind: StackKind::Hybrid,
            mss: 2048,
            window: 512 * 1024,
            per_segment: Duration::from_ns(30),
            per_64_bytes: Duration::from_ns(3),
            per_transfer: Duration::from_us(2), // CPU arms the offload
            per_ack: Duration::from_ns(250),    // policy decision on CPU
            rto: Duration::from_ms(1),
            cc: CcAlgorithm::Reno,
        }
    }

    fn segment_cost(&self, bytes: usize) -> Duration {
        self.per_segment + self.per_64_bytes * (bytes as u64).div_ceil(64)
    }
}

/// Result of one simulated transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOutcome {
    /// Payload bytes moved.
    pub bytes: u64,
    /// When the sending application handed the data to the stack.
    pub started: Time,
    /// When the last payload byte was delivered to the receiving
    /// application.
    pub delivered: Time,
    /// Segments retransmitted (after injected loss).
    pub retransmissions: u64,
    /// Segments sent in total.
    pub segments: u64,
}

impl TransferOutcome {
    /// One-way transfer latency (application to application).
    pub fn latency(&self) -> Duration {
        self.delivered.since(self.started)
    }

    /// Goodput in bits per second.
    pub fn throughput_bits(&self) -> f64 {
        let s = self.latency().as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / s
        }
    }
}

/// Result of one connection-managed session: handshake, transfer,
/// orderly teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOutcome {
    /// When the three-way handshake completed at both endpoints.
    pub established: Time,
    /// The payload transfer, started at `established`.
    pub transfer: TransferOutcome,
    /// When the active closer left TimeWait (2·RTO linger after the
    /// FIN/ACK exchange).
    pub closed: Time,
    /// Control segments (SYN, SYN-ACK, FIN, bare acks) exchanged.
    pub control_segments: u64,
}

/// Fault-plan target for dropping a TCP data segment in flight.
pub const SEGMENT_LOSS_TARGET: &str = "net.tcp.segment_loss";

/// Fault-plan target for dropping the cumulative acknowledgement a data
/// segment elicits (the segment itself delivers). Recovery is usually a
/// *later* cumulative ack covering the same bytes — no retransmission at
/// all — and only an RTO rewind when no further ack traffic exists.
pub const ACK_LOSS_TARGET: &str = "net.tcp.ack_loss";

/// Fault-plan target for corrupting a data segment in flight: the copy
/// arrives, fails checksum verification in the reliability module, and
/// is silently discarded (`reliability.checksum_rejects`); the sender's
/// RTO retransmits it.
pub const SEGMENT_CORRUPT_TARGET: &str = "net.tcp.segment_corrupt";

/// Fault-plan target for a receive-window collapse: the ack it fires on
/// advertises a zero window (buffer momentarily full). The sender stalls
/// on flow control (`flow_ctl.rwnd_stalls`) until the receiver drains
/// one MSS and sends a reopening window update.
pub const RWND_SHRINK_TARGET: &str = "net.tcp.rwnd_shrink";

/// Loss injection for the engine, built on the shared deterministic
/// fault model ([`FaultPlan`]).
///
/// Semantics (precisely): loss applies to **first transmissions only**,
/// counted as injection opportunities in the order segments first appear
/// on the wire (1-based). A dropped segment is recovered by go-back-N
/// retransmission after the sender's RTO, and a retransmitted copy is
/// never offered to the plan again — so every pattern terminates,
/// including [`LossPattern::drop_every`] with `n = 1`, where every
/// segment's first copy is dropped exactly once and the retransmit
/// always delivers.
///
/// The plan's injected/recovered ledger, the reliability module's
/// [`GoBackN`] rewind count, and the per-flow [`FlowStats`] all describe
/// the *same* events: the engine fires a rewind in exactly one place,
/// notes the recovery on the plan there, and copies the module's count
/// into the flow stats once per transfer — so the three views can never
/// double-count.
#[derive(Debug, Clone, PartialEq)]
pub struct LossPattern {
    plan: FaultPlan,
}

impl LossPattern {
    /// No loss at all.
    pub fn none() -> Self {
        LossPattern {
            plan: FaultPlan::new(0),
        }
    }

    /// Compatibility constructor for the engine's original knob: drop
    /// each segment whose 1-based first-transmission index is a multiple
    /// of `n`. Zero disables loss.
    pub fn drop_every(n: u64) -> Self {
        if n == 0 {
            return LossPattern::none();
        }
        LossPattern {
            plan: FaultPlan::new(0).with(FaultSpec::every_nth(SEGMENT_LOSS_TARGET, n)),
        }
    }

    /// Wraps an arbitrary fault plan; specs addressing
    /// [`SEGMENT_LOSS_TARGET`] drive segment drops (one opportunity per
    /// first transmission).
    pub fn from_plan(plan: FaultPlan) -> Self {
        LossPattern { plan }
    }

    /// `true` when the pattern can never perturb a transfer: none of the
    /// per-module fault targets (segment loss, ack loss, corruption,
    /// window shrink) is addressed by the plan.
    pub fn is_lossless(&self) -> bool {
        ![
            SEGMENT_LOSS_TARGET,
            ACK_LOSS_TARGET,
            SEGMENT_CORRUPT_TARGET,
            RWND_SHRINK_TARGET,
        ]
        .iter()
        .any(|t| self.plan.targets(t))
    }

    /// The underlying plan, with its injected/recovered ledger.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn should_drop(&mut self, now: Time) -> bool {
        self.plan.should_fire(SEGMENT_LOSS_TARGET, now)
    }

    fn should_corrupt(&mut self, now: Time) -> bool {
        self.plan.should_fire(SEGMENT_CORRUPT_TARGET, now)
    }

    fn should_drop_ack(&mut self, now: Time) -> bool {
        self.plan.should_fire(ACK_LOSS_TARGET, now)
    }

    fn should_shrink_rwnd(&mut self, now: Time) -> bool {
        self.plan.should_fire(RWND_SHRINK_TARGET, now)
    }

    fn note_recovered_on(&mut self, target: &str, now: Time, latency: Duration) {
        self.plan.note_recovery(target, now, latency);
    }
}

impl Default for LossPattern {
    fn default() -> Self {
        LossPattern::none()
    }
}

/// A unidirectional TCP transfer engine between endpoint `a` (sender)
/// and `b` (receiver) over a shared [`EthLink`] and [`Switch`],
/// composed from the four protocol modules. The congestion controller
/// is built from the sender config's [`CcAlgorithm`] and keeps its
/// state across transfers (connection-lifetime policy state).
#[derive(Debug)]
pub struct TcpEngine {
    tx: TcpStackConfig,
    rx: TcpStackConfig,
    switch: Switch,
    loss: LossPattern,
    telemetry: TcpTelemetry,
    cc: Box<dyn CongestionController>,
}

/// Per-flow transfer counters — the telemetry's single source of truth;
/// every aggregate view is a derived sum over these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Transfers completed on this flow.
    pub transfers: u64,
    /// Payload bytes delivered on this flow.
    pub bytes: u64,
    /// Segments sent on this flow (including retransmissions).
    pub segments: u64,
    /// Segments retransmitted on this flow (copied once per transfer
    /// from the reliability module's [`GoBackN`] ledger).
    pub retransmissions: u64,
}

/// Per-module observations attributing behaviour to the module that
/// caused it: the congestion module's effective-window trajectory and
/// stalls, the flow module's receive-window stalls, and the connection
/// module's handshake/teardown counts. Retransmissions/RTO fires belong
/// to the reliability module but are *derived* from [`FlowStats`] (see
/// [`TcpTelemetry::rto_fires`]) so there is exactly one ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleTelemetry {
    /// Effective send window `min(cwnd, rwnd)` sampled at each data
    /// transmission, bytes — the congestion trajectory.
    pub cwnd_bytes: Summary,
    /// Sends blocked with the congestion window as the binding
    /// constraint (cwnd < rwnd at the stall).
    pub cwnd_stalls: u64,
    /// Sends blocked with the receive window as the binding constraint.
    pub rwnd_stalls: u64,
    /// Zero-window advertisements applied by the flow-control module
    /// (each later drains and reopens via a window update).
    pub rwnd_shrinks: u64,
    /// Segments the reliability module discarded because checksum
    /// verification failed (injected corruption); each is recovered by
    /// exactly one RTO retransmission in the same ledger.
    pub checksum_rejects: u64,
    /// Three-way handshakes completed by the connection module.
    pub handshakes: u64,
    /// Orderly teardowns completed by the connection module.
    pub teardowns: u64,
    /// Control segments (SYN/SYN-ACK/FIN/bare-ack) exchanged.
    pub control_segments: u64,
}

impl Default for ModuleTelemetry {
    fn default() -> Self {
        ModuleTelemetry {
            // Summary::new(), not Summary::default(): the derived
            // default has a zeroed min that would poison min-tracking.
            cwnd_bytes: Summary::new(),
            cwnd_stalls: 0,
            rwnd_stalls: 0,
            rwnd_shrinks: 0,
            checksum_rejects: 0,
            handshakes: 0,
            teardowns: 0,
            control_segments: 0,
        }
    }
}

/// Accumulated engine statistics across transfers: segment round-trip
/// times (send completion to cumulative-ack arrival, per flow),
/// per-flow transfer/loss-recovery counters, and per-module
/// observations. Single transfers record into flow 0, interleaved
/// transfers into their flow index; aggregate totals are derived, never
/// tracked separately.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TcpTelemetry {
    /// Per-flow RTT summaries in microseconds.
    pub flow_rtt_us: Vec<Summary>,
    flow_stats: Vec<FlowStats>,
    module: ModuleTelemetry,
}

impl TcpTelemetry {
    fn rtt_flow(&mut self, i: usize) -> &mut Summary {
        if self.flow_rtt_us.len() <= i {
            self.flow_rtt_us.resize(i + 1, Summary::new());
        }
        &mut self.flow_rtt_us[i]
    }

    fn stats_flow(&mut self, i: usize) -> &mut FlowStats {
        if self.flow_stats.len() <= i {
            self.flow_stats.resize(i + 1, FlowStats::default());
        }
        &mut self.flow_stats[i]
    }

    /// Per-flow counters, indexed by flow.
    pub fn flow_stats(&self) -> &[FlowStats] {
        &self.flow_stats
    }

    /// Per-module observations (congestion trajectory, stall
    /// attribution, connection counts).
    pub fn module(&self) -> &ModuleTelemetry {
        &self.module
    }

    /// Total transfers completed (derived over flows).
    pub fn transfers(&self) -> u64 {
        self.flow_stats.iter().map(|f| f.transfers).sum()
    }

    /// Total payload bytes delivered (derived over flows).
    pub fn bytes(&self) -> u64 {
        self.flow_stats.iter().map(|f| f.bytes).sum()
    }

    /// Total segments sent, including retransmissions (derived over
    /// flows).
    pub fn segments(&self) -> u64 {
        self.flow_stats.iter().map(|f| f.segments).sum()
    }

    /// Total segments retransmitted (derived over flows).
    pub fn retransmissions(&self) -> u64 {
        self.flow_stats.iter().map(|f| f.retransmissions).sum()
    }

    /// RTO fires in the reliability module. In this engine every RTO
    /// fire is exactly one go-back-N rewind, so this is the same ledger
    /// as [`retransmissions`](Self::retransmissions) — derived, never a
    /// second counter.
    pub fn rto_fires(&self) -> u64 {
        self.retransmissions()
    }

    /// All flows' RTT samples merged into one summary.
    pub fn rtt_us(&self) -> Summary {
        let mut all = Summary::new();
        for s in &self.flow_rtt_us {
            all.merge(s);
        }
        all
    }
}

/// Publishes the engine's counters: derived totals, the merged RTT
/// summary (`prefix.rtt_us`), per-flow counters and RTT summaries
/// (`prefix.flow<i>.*`), and per-module views (`prefix.congestion.*`,
/// `prefix.flow_ctl.*`, `prefix.reliability.*`, `prefix.conn.*`).
impl enzian_sim::Instrumented for TcpTelemetry {
    fn export_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.counter_set(&format!("{prefix}.transfers"), self.transfers());
        registry.counter_set(&format!("{prefix}.bytes"), self.bytes());
        registry.counter_set(&format!("{prefix}.segments"), self.segments());
        registry.counter_set(&format!("{prefix}.retransmissions"), self.retransmissions());
        registry.merge_summary(&format!("{prefix}.rtt_us"), &self.rtt_us());
        for (i, s) in self.flow_rtt_us.iter().enumerate() {
            registry.merge_summary(&format!("{prefix}.flow{i}.rtt_us"), s);
        }
        for (i, f) in self.flow_stats.iter().enumerate() {
            registry.counter_set(&format!("{prefix}.flow{i}.segments"), f.segments);
            registry.counter_set(
                &format!("{prefix}.flow{i}.retransmissions"),
                f.retransmissions,
            );
        }
        let m = &self.module;
        registry.merge_summary(&format!("{prefix}.congestion.cwnd_bytes"), &m.cwnd_bytes);
        registry.counter_set(&format!("{prefix}.congestion.cwnd_stalls"), m.cwnd_stalls);
        registry.counter_set(&format!("{prefix}.flow_ctl.rwnd_stalls"), m.rwnd_stalls);
        registry.counter_set(&format!("{prefix}.flow_ctl.rwnd_shrinks"), m.rwnd_shrinks);
        registry.counter_set(&format!("{prefix}.reliability.rto_fires"), self.rto_fires());
        registry.counter_set(
            &format!("{prefix}.reliability.checksum_rejects"),
            m.checksum_rejects,
        );
        registry.counter_set(&format!("{prefix}.conn.handshakes"), m.handshakes);
        registry.counter_set(&format!("{prefix}.conn.teardowns"), m.teardowns);
        registry.counter_set(
            &format!("{prefix}.conn.control_segments"),
            m.control_segments,
        );
    }
}

impl TcpEngine {
    /// Creates an engine between two stack personalities through a
    /// top-of-rack switch. The congestion controller is built from the
    /// sender (`tx`) config's [`CcAlgorithm`].
    pub fn new(tx: TcpStackConfig, rx: TcpStackConfig, switch: Switch) -> Self {
        TcpEngine {
            cc: tx.cc.build(&tx),
            tx,
            rx,
            switch,
            loss: LossPattern::default(),
            telemetry: TcpTelemetry::default(),
        }
    }

    /// Statistics accumulated across all transfers on this engine.
    pub fn telemetry(&self) -> &TcpTelemetry {
        &self.telemetry
    }

    /// The congestion-control module instance (current window, name).
    pub fn congestion(&self) -> &dyn CongestionController {
        self.cc.as_ref()
    }

    /// Enables loss injection.
    pub fn with_loss(mut self, loss: LossPattern) -> Self {
        self.loss = loss;
        self
    }

    /// Transfers `data` from a to b starting at `start`, verifying the
    /// checksum on every segment and reassembling the stream in order.
    ///
    /// Returns the delivered bytes and the timing outcome.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or a checksum ever fails to verify (a
    /// model bug, since the link never corrupts).
    pub fn transfer(
        &mut self,
        link: &mut EthLink,
        start: Time,
        data: &[u8],
    ) -> (Vec<u8>, TransferOutcome) {
        assert!(!data.is_empty(), "empty transfer");
        let len = data.len() as u64;
        let hop = self.switch.forwarding_latency();

        let mut delivered = vec![0u8; data.len()];
        // Sender state.
        let mut acked: u64 = 0;
        let mut sent: u64 = 0;
        let mut tx_free = start + self.tx.per_transfer;
        // Receiver state (go-back-N discards anything out of order and
        // re-acks the in-order edge).
        let mut reassembler = Reassembler::new();
        let mut rx_free = Time::ZERO;
        let mut last_delivery = start;
        let mut segments = 0u64;
        // Module instances for this transfer.
        let mut swnd = SendWindow::new(self.tx.window);
        let mut acks = AckLedger::new();
        let mut gbn = GoBackN::new();
        // Window advertisement riding on each in-flight ack (same wire
        // order as `acks`); normally the full receive window, zero when
        // the rwnd-shrink fault fires.
        let mut advs: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        // Which fault target scheduled the rewind for an offset, so the
        // recovery is noted on the ledger that injected it.
        let mut rewind_causes: std::collections::HashMap<u64, &'static str> =
            std::collections::HashMap::new();

        while acked < len {
            let wnd = swnd.effective(self.cc.cwnd());
            let window_open = sent - acked < wnd && sent < len;
            // Take an expired RTO rewind before anything else.
            if let Some((at, seq)) = gbn.pending() {
                if at <= tx_free || (!window_open && acks.is_empty()) {
                    self.cc.on_rto(sent - acked, at);
                    gbn.fire();
                    sent = seq.min(sent);
                    tx_free = tx_free.max(at);
                    let cause = rewind_causes.remove(&seq).unwrap_or(SEGMENT_LOSS_TARGET);
                    self.loss.note_recovered_on(cause, at, self.tx.rto);
                    continue;
                }
            }
            if window_open {
                // Send the next segment.
                let seg_len = segment_len(self.tx.mss, len, sent);
                let seq = sent;
                let payload = &data[seq as usize..seq as usize + seg_len];
                let checksum = internet_checksum(payload);
                segments += 1;
                self.telemetry.module.cwnd_bytes.record(wnd as f64);
                let tx_done = tx_free + self.tx.segment_cost(seg_len);
                tx_free = tx_done;
                sent = seq + seg_len as u64;

                // Fault opportunities are offered on first transmissions
                // only, so every pattern terminates: a retransmitted
                // copy (and the ack it elicits) always goes through.
                let first = gbn.first_transmission(seq);
                let drop = first && self.loss.should_drop(tx_done);
                if drop {
                    // The receiver never sees this one; arrange an RTO
                    // rewind to it if none is already pending earlier.
                    gbn.schedule_rewind(tx_done + self.tx.rto, seq);
                    rewind_causes.insert(seq, SEGMENT_LOSS_TARGET);
                    continue;
                }

                let arrived = link.send_a_to_b(tx_done, seg_len as u64) + hop;
                let rx_done = arrived.max(rx_free) + self.rx.segment_cost(seg_len);
                rx_free = rx_done;

                if first && self.loss.should_corrupt(tx_done) {
                    // The copy arrived damaged: the reliability module's
                    // checksum check rejects it and the receiver stays
                    // silent, exactly as for a lost segment — the
                    // sender's RTO recovers it through the same ledger.
                    let mut damaged = payload.to_vec();
                    damaged[0] ^= 0x5A;
                    assert!(
                        !checksum_verifies(&damaged, checksum),
                        "corruption must not survive verification"
                    );
                    self.telemetry.module.checksum_rejects += 1;
                    gbn.schedule_rewind(tx_done + self.tx.rto, seq);
                    rewind_causes.insert(seq, SEGMENT_CORRUPT_TARGET);
                    continue;
                }

                assert!(
                    checksum_verifies(payload, checksum),
                    "checksum mismatch at {seq}"
                );
                if reassembler.deliver_in_order(seq, payload, &mut delivered) {
                    last_delivery = last_delivery.max(rx_done);
                }
                // Either way a cumulative ack for the in-order edge
                // rides back.
                let ack_arrival = link.send_b_to_a(rx_done, CONTROL_SEGMENT_BYTES) + hop;
                if first && self.loss.should_drop_ack(ack_arrival) {
                    // The data delivered but its ack is gone. Arm the
                    // RTO; if a later cumulative ack covers this offset
                    // first, the timer is cancelled and nothing is
                    // retransmitted (the single ledger never moves).
                    gbn.schedule_rewind(ack_arrival + self.tx.rto, seq);
                    rewind_causes.insert(seq, ACK_LOSS_TARGET);
                    continue;
                }
                let adv = if first && self.loss.should_shrink_rwnd(ack_arrival) {
                    0
                } else {
                    self.tx.window
                };
                self.telemetry
                    .rtt_flow(0)
                    .record_micros(ack_arrival.since(tx_done));
                acks.push(ack_arrival, reassembler.rcv_next());
                advs.push_back(adv);
            } else {
                // Window closed or data exhausted: consume the next ack.
                match acks.pop() {
                    Some((at, upto)) => {
                        if sent < len {
                            // A genuine window stall: attribute it to
                            // the module whose bound was binding.
                            if swnd.rwnd_is_binding(self.cc.cwnd()) {
                                self.telemetry.module.rwnd_stalls += 1;
                            } else {
                                self.telemetry.module.cwnd_stalls += 1;
                            }
                        }
                        let newly = upto.saturating_sub(acked);
                        acked = acked.max(upto);
                        tx_free = tx_free.max(at) + self.tx.per_ack;
                        self.cc.on_ack(newly, at);
                        // Everything up to `upto` is delivered; anything
                        // beyond `sent` cannot regress below it.
                        if acked > sent {
                            sent = acked;
                        }
                        // A cumulative ack covering a pending rewind
                        // voids the timer: the bytes are delivered, no
                        // retransmission is needed (this is how a lost
                        // ack recovers without the ledger ever moving).
                        if let Some((_, seq)) = gbn.cancel_covered(acked) {
                            let cause = rewind_causes.remove(&seq).unwrap_or(SEGMENT_LOSS_TARGET);
                            self.loss.note_recovered_on(cause, at, self.tx.rto);
                        }
                        // Apply this ack's window advertisement.
                        let adv = advs.pop_front().expect("one advertisement per ack");
                        if adv != swnd.rwnd() {
                            if adv == 0 {
                                // Zero window: the receiver's buffer is
                                // full. It drains one MSS, then a window
                                // update reopens the flow.
                                self.telemetry.module.rwnd_shrinks += 1;
                                let drain = self.rx.segment_cost(self.rx.mss);
                                acks.push(at + drain, upto);
                                advs.push_back(self.tx.window);
                            } else {
                                // Reopening update: flow control
                                // unblocks and queued sends drain.
                                let drain = self.rx.segment_cost(self.rx.mss);
                                self.loss.note_recovered_on(RWND_SHRINK_TARGET, at, drain);
                            }
                            swnd.set_rwnd(adv);
                        }
                    }
                    None => {
                        let (at, seq) = gbn.pending().expect("deadlock: no acks, no retry");
                        self.cc.on_rto(sent - acked, at);
                        gbn.fire();
                        sent = seq.min(sent);
                        tx_free = tx_free.max(at);
                        let cause = rewind_causes.remove(&seq).unwrap_or(SEGMENT_LOSS_TARGET);
                        self.loss.note_recovered_on(cause, at, self.tx.rto);
                    }
                }
            }
        }

        assert_eq!(
            reassembler.rcv_next(),
            len,
            "receiver did not reach end of stream"
        );
        let retransmissions = gbn.retransmissions();
        let fs = self.telemetry.stats_flow(0);
        fs.transfers += 1;
        fs.bytes += len;
        fs.segments += segments;
        fs.retransmissions += retransmissions;
        (
            delivered,
            TransferOutcome {
                bytes: len,
                started: start,
                delivered: last_delivery,
                retransmissions,
                segments,
            },
        )
    }

    /// Runs a full connection-managed session: three-way handshake,
    /// [`transfer`](Self::transfer) of `data` starting once both ends
    /// are established, then an orderly FIN/ACK teardown with a 2·RTO
    /// TimeWait linger. Both endpoints' [`Connection`] FSMs are driven
    /// through every transition, so an illegal sequence panics rather
    /// than mis-modelling.
    pub fn session(
        &mut self,
        link: &mut EthLink,
        start: Time,
        data: &[u8],
    ) -> (Vec<u8>, SessionOutcome) {
        let (delivered, outcome, _) = self.session_traced(link, start, data);
        (delivered, outcome)
    }

    /// [`session`](Self::session), additionally returning the exact
    /// [`ConnState`] sequence each endpoint's FSM walked (active opener
    /// first), starting from `Closed`. The model checker's
    /// [`TcpModel::orderly_trace`] replays its canonical fault-free
    /// schedule through the same transition relation; the conformance
    /// test in `tests/tcp_explore.rs` pins the two walks equal.
    pub fn session_traced(
        &mut self,
        link: &mut EthLink,
        start: Time,
        data: &[u8],
    ) -> (Vec<u8>, SessionOutcome, (Vec<ConnState>, Vec<ConnState>)) {
        let hop = self.switch.forwarding_latency();
        let ctl_tx = self.tx.segment_cost(0);
        let ctl_rx = self.rx.segment_cost(0);
        let mut a = Connection::new();
        let mut b = Connection::new();
        let mut trace_a = vec![a.state()];
        let mut trace_b = vec![b.state()];
        fn step(c: &mut Connection, trace: &mut Vec<ConnState>, ev: ConnEvent) {
            let next = c.on(ev).expect("legal connection transition");
            trace.push(next);
        }

        // --- Three-way handshake -------------------------------------
        step(&mut a, &mut trace_a, ConnEvent::ActiveOpen);
        step(&mut b, &mut trace_b, ConnEvent::PassiveOpen);
        let syn_sent = start + self.tx.per_transfer + ctl_tx;
        let syn_rcvd = link.send_a_to_b(syn_sent, CONTROL_SEGMENT_BYTES) + hop + ctl_rx;
        step(&mut b, &mut trace_b, ConnEvent::SynRcvd);
        let synack_sent = syn_rcvd + ctl_rx;
        let synack_rcvd = link.send_b_to_a(synack_sent, CONTROL_SEGMENT_BYTES) + hop + ctl_tx;
        step(&mut a, &mut trace_a, ConnEvent::SynAckRcvd);
        let ack_sent = synack_rcvd + ctl_tx;
        let established = link.send_a_to_b(ack_sent, CONTROL_SEGMENT_BYTES) + hop + ctl_rx;
        step(&mut b, &mut trace_b, ConnEvent::AckRcvd);
        assert!(a.is_established() && b.is_established());
        self.telemetry.module.handshakes += 1;
        self.telemetry.module.control_segments += 3;

        // --- Payload -------------------------------------------------
        let (delivered, transfer) = self.transfer(link, established, data);

        // --- Orderly teardown (a closes first) -----------------------
        step(&mut a, &mut trace_a, ConnEvent::Close);
        let fin_sent = transfer.delivered.max(established) + ctl_tx;
        let fin_rcvd = link.send_a_to_b(fin_sent, CONTROL_SEGMENT_BYTES) + hop + ctl_rx;
        step(&mut b, &mut trace_b, ConnEvent::FinRcvd);
        let finack_sent = fin_rcvd + ctl_rx;
        let finack_rcvd = link.send_b_to_a(finack_sent, CONTROL_SEGMENT_BYTES) + hop + ctl_tx;
        step(&mut a, &mut trace_a, ConnEvent::AckRcvd);
        step(&mut b, &mut trace_b, ConnEvent::Close);
        let fin2_sent = finack_rcvd.max(fin_rcvd + ctl_rx) + ctl_rx;
        let fin2_rcvd = link.send_b_to_a(fin2_sent, CONTROL_SEGMENT_BYTES) + hop + ctl_tx;
        step(&mut a, &mut trace_a, ConnEvent::FinRcvd);
        let lastack_sent = fin2_rcvd + ctl_tx;
        let lastack_rcvd = link.send_a_to_b(lastack_sent, CONTROL_SEGMENT_BYTES) + hop + ctl_rx;
        step(&mut b, &mut trace_b, ConnEvent::AckRcvd);
        assert_eq!(b.state(), ConnState::Closed);
        let closed = lastack_rcvd + self.tx.rto * 2;
        step(&mut a, &mut trace_a, ConnEvent::TimeWaitExpired);
        assert_eq!(a.state(), ConnState::Closed);
        self.telemetry.module.teardowns += 1;
        self.telemetry.module.control_segments += 4;

        (
            delivered,
            SessionOutcome {
                established,
                transfer,
                closed,
                control_segments: 7,
            },
            (trace_a, trace_b),
        )
    }

    /// Simulates `flows` concurrent transfers (all a→b) sharing the link,
    /// with true time interleaving: at each step the flow whose sender
    /// pipeline frees earliest transmits next. Each flow gets its own
    /// sender/receiver pipeline and its own congestion-controller
    /// instance (its own core or connection state), as in the iperf
    /// multi-flow comparison.
    ///
    /// Returns per-flow outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is empty, any flow is empty, or loss injection
    /// is configured (single-flow only).
    pub fn transfer_interleaved(
        &mut self,
        link: &mut EthLink,
        start: Time,
        flows: &[&[u8]],
    ) -> Vec<TransferOutcome> {
        assert!(!flows.is_empty(), "no flows");
        assert!(
            self.loss.is_lossless(),
            "loss injection unsupported for multi-flow"
        );
        struct Flow {
            len: u64,
            acked: u64,
            sent: u64,
            tx_free: Time,
            rx_free: Time,
            last_delivery: Time,
            segments: u64,
            acks: AckLedger,
            cc: Box<dyn CongestionController>,
        }
        let hop = self.switch.forwarding_latency();
        let swnd = SendWindow::new(self.tx.window);
        let mut states: Vec<Flow> = flows
            .iter()
            .map(|d| {
                assert!(!d.is_empty(), "empty flow");
                Flow {
                    len: d.len() as u64,
                    acked: 0,
                    sent: 0,
                    tx_free: start + self.tx.per_transfer,
                    rx_free: Time::ZERO,
                    last_delivery: start,
                    segments: 0,
                    acks: AckLedger::new(),
                    cc: self.tx.cc.build(&self.tx),
                }
            })
            .collect();

        // Each live flow keeps exactly one candidate in the calendar
        // queue: the time of its next action (transmit if the window is
        // open, otherwise its oldest in-flight ack). A flow's candidate
        // depends only on its own state, so processing one flow never
        // invalidates another's queued entry; popping by (time, flow
        // index) reproduces the old linear scan's earliest-time,
        // lowest-index-on-tie order bit for bit.
        let next_at = |f: &Flow| -> Time {
            if f.sent < f.len && f.sent - f.acked < swnd.effective(f.cc.cwnd()) {
                f.tx_free
            } else {
                f.acks.next_arrival().expect("flow deadlock")
            }
        };
        let mut runnable = CalendarQueue::new();
        for (i, f) in states.iter().enumerate() {
            runnable.push(next_at(f), i as u64, 0, 0);
        }

        while let Some(entry) = runnable.pop() {
            let i = entry.key as usize;
            let f = &mut states[i];
            let wnd = swnd.effective(f.cc.cwnd());
            let is_send = f.sent < f.len && f.sent - f.acked < wnd;
            if is_send {
                let seg_len = segment_len(self.tx.mss, f.len, f.sent);
                let seq = f.sent;
                let payload = &flows[i][seq as usize..seq as usize + seg_len];
                let _ = internet_checksum(payload);
                f.segments += 1;
                self.telemetry.module.cwnd_bytes.record(wnd as f64);
                let tx_done = f.tx_free + self.tx.segment_cost(seg_len);
                f.tx_free = tx_done;
                f.sent = seq + seg_len as u64;
                let arrived = link.send_a_to_b(tx_done, seg_len as u64) + hop;
                let rx_done = arrived.max(f.rx_free) + self.rx.segment_cost(seg_len);
                f.rx_free = rx_done;
                f.last_delivery = f.last_delivery.max(rx_done);
                let ack_arrival = link.send_b_to_a(rx_done, CONTROL_SEGMENT_BYTES) + hop;
                self.telemetry
                    .rtt_flow(i)
                    .record_micros(ack_arrival.since(tx_done));
                f.acks.push(ack_arrival, f.sent);
            } else {
                let (at, upto) = f.acks.pop().expect("checked above");
                let newly = upto.saturating_sub(f.acked);
                f.acked = f.acked.max(upto);
                f.tx_free = f.tx_free.max(at) + self.tx.per_ack;
                f.cc.on_ack(newly, at);
            }
            let f = &states[i];
            if f.acked < f.len {
                runnable.push(next_at(f), i as u64, 0, 0);
            }
        }

        states
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                let fs = self.telemetry.stats_flow(i);
                fs.transfers += 1;
                fs.bytes += f.len;
                fs.segments += f.segments;
                TransferOutcome {
                    bytes: f.len,
                    started: start,
                    delivered: f.last_delivery,
                    retransmissions: 0,
                    segments: f.segments,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eth::EthLinkConfig;
    use enzian_sim::SimRng;

    fn payload(n: usize) -> Vec<u8> {
        let mut rng = SimRng::seed_from(42);
        let mut v = vec![0u8; n];
        rng.fill_bytes(&mut v);
        v
    }

    fn fpga_engine() -> TcpEngine {
        TcpEngine::new(
            TcpStackConfig::fpga_coyote(),
            TcpStackConfig::fpga_coyote(),
            Switch::tor(),
        )
    }

    fn kernel_engine() -> TcpEngine {
        TcpEngine::new(
            TcpStackConfig::linux_kernel(),
            TcpStackConfig::linux_kernel(),
            Switch::tor(),
        )
    }

    fn hybrid_engine() -> TcpEngine {
        TcpEngine::new(
            TcpStackConfig::hybrid_offload(),
            TcpStackConfig::hybrid_offload(),
            Switch::tor(),
        )
    }

    #[test]
    fn data_arrives_intact() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(100_000);
        let (out, r) = fpga_engine().transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data);
        assert_eq!(r.bytes, 100_000);
        assert_eq!(r.retransmissions, 0);
    }

    #[test]
    fn fpga_stack_saturates_100g_with_one_flow() {
        // Fig. 7: "Enzian can saturate a single 100 Gb/s TCP connection
        // with an MTU as low as 2 KiB."
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(4 << 20);
        let (_, r) = fpga_engine().transfer(&mut link, Time::ZERO, &data);
        let gbps = r.throughput_bits() / 1e9;
        assert!(gbps > 90.0, "hardware stack reached only {gbps:.1} Gb/s");
    }

    #[test]
    fn kernel_stack_single_flow_is_cpu_bound() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(4 << 20);
        let (_, r) = kernel_engine().transfer(&mut link, Time::ZERO, &data);
        let gbps = r.throughput_bits() / 1e9;
        assert!(
            (15.0..45.0).contains(&gbps),
            "kernel stack at {gbps:.1} Gb/s (expected ~25)"
        );
    }

    #[test]
    fn hybrid_stack_sits_between_the_extremes() {
        // The point the split exists to open: FPGA data path + CPU
        // policy lands between the Fig. 7 extremes on both axes.
        let data = payload(1 << 20);
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let (_, hw) = fpga_engine().transfer(&mut link, Time::ZERO, &data);
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let (out, hy) = hybrid_engine().transfer(&mut link, Time::ZERO, &data);
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let (_, sw) = kernel_engine().transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data, "hybrid stack corrupted the stream");
        assert!(
            hy.latency() > hw.latency(),
            "hybrid must pay for CPU policy: {:?} vs {:?}",
            hy.latency(),
            hw.latency()
        );
        assert!(
            hy.latency() < sw.latency(),
            "hybrid must beat the kernel: {:?} vs {:?}",
            hy.latency(),
            sw.latency()
        );
        // And it still lands near line rate at 1 MiB.
        assert!(hy.throughput_bits() / 1e9 > 60.0);
    }

    #[test]
    fn four_kernel_flows_approach_line_rate() {
        // Paper: "4 flows are needed using the CPU to saturate the link."
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let per_flow = 2 << 20;
        let data = payload(per_flow);
        let flows = [&data[..], &data[..], &data[..], &data[..]];
        let results = kernel_engine().transfer_interleaved(&mut link, Time::ZERO, &flows);
        let last = results.iter().map(|r| r.delivered).max().unwrap();
        let total_bits = (4 * per_flow) as f64 * 8.0;
        let gbps = total_bits / last.as_secs_f64() / 1e9;
        assert!(gbps > 75.0, "4 kernel flows reached only {gbps:.1} Gb/s");

        // And a single kernel flow cannot get there (the paper's point).
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let (_, single) = kernel_engine().transfer(&mut link, Time::ZERO, &data);
        assert!(single.throughput_bits() / 1e9 < 45.0);
    }

    #[test]
    fn latency_scales_with_size_for_kernel_stack() {
        // The Fig. 7 latency panel: Linux latency grows steeply with
        // transfer size; the hardware stack stays near wire time.
        let sizes = [2 * 1024, 64 * 1024, 1024 * 1024];
        let mut prev_ratio: f64 = 0.0;
        for &s in &sizes {
            let data = payload(s);
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let (_, hw) = fpga_engine().transfer(&mut link, Time::ZERO, &data);
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let (_, sw) = kernel_engine().transfer(&mut link, Time::ZERO, &data);
            let ratio = sw.latency().as_ps() as f64 / hw.latency().as_ps() as f64;
            assert!(ratio > 1.0, "kernel not slower at {s} B");
            prev_ratio = prev_ratio.max(ratio);
        }
        assert!(prev_ratio > 2.0, "kernel/hw latency gap too small");
    }

    #[test]
    fn loss_recovery_preserves_data() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(256 * 1024);
        let mut engine = fpga_engine().with_loss(LossPattern::drop_every(17));
        let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data, "data corrupted by loss recovery");
        assert!(r.retransmissions > 0, "no retransmissions recorded");

        // A lossy transfer is strictly slower than a clean one.
        let mut link2 = EthLink::new(EthLinkConfig::hundred_gig());
        let (_, clean) = fpga_engine().transfer(&mut link2, Time::ZERO, &data);
        assert!(r.latency() > clean.latency());
    }

    #[test]
    fn reno_and_cubic_recover_from_loss_intact() {
        for cc in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
            let cfg = TcpStackConfig::fpga_coyote().with_cc(cc);
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let mut engine =
                TcpEngine::new(cfg, cfg, Switch::tor()).with_loss(LossPattern::drop_every(23));
            let data = payload(512 * 1024);
            let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
            assert_eq!(out, data, "{} corrupted the stream", cc.label());
            assert!(r.retransmissions > 0);
            // The controller reacted: its window moved off the fixed
            // preset's constant trajectory.
            let cwnd = &engine.telemetry().module().cwnd_bytes;
            assert!(cwnd.count() > 0);
            assert!(
                cwnd.min().unwrap() < cwnd.max().unwrap(),
                "{} window never moved",
                cc.label()
            );
        }
    }

    #[test]
    fn fixed_window_trajectory_is_flat() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(512 * 1024);
        let mut engine = fpga_engine();
        let _ = engine.transfer(&mut link, Time::ZERO, &data);
        let cwnd = &engine.telemetry().module().cwnd_bytes;
        assert_eq!(cwnd.min(), cwnd.max(), "fixed window must never move");
        assert_eq!(cwnd.max(), Some(256.0 * 1024.0));
    }

    #[test]
    fn session_establishes_transfers_and_closes() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(64 * 1024);
        let mut engine = fpga_engine();
        let (out, s) = engine.session(&mut link, Time::ZERO, &data);
        assert_eq!(out, data);
        assert!(s.established > Time::ZERO, "handshake takes time");
        assert_eq!(s.transfer.started, s.established);
        assert!(s.closed > s.transfer.delivered, "teardown after delivery");
        assert_eq!(s.control_segments, 7);
        let m = engine.telemetry().module();
        assert_eq!((m.handshakes, m.teardowns, m.control_segments), (1, 1, 7));
        // A session is strictly slower end-to-end than a bare transfer.
        let mut link2 = EthLink::new(EthLinkConfig::hundred_gig());
        let (_, bare) = fpga_engine().transfer(&mut link2, Time::ZERO, &data);
        assert!(s.transfer.delivered > bare.delivered);
    }

    #[test]
    fn checksum_known_values() {
        // All zeros checksums to 0xFFFF; RFC 1071 example.
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xFFFF);
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn flow_count_independence_of_hardware_stack() {
        // Two concurrent hardware flows each keep roughly half the link —
        // the pipeline itself is not the bottleneck.
        let per_flow = 2 << 20;
        let data = payload(per_flow);
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let flows = [&data[..], &data[..]];
        let results = fpga_engine().transfer_interleaved(&mut link, Time::ZERO, &flows);
        let last = results.iter().map(|r| r.delivered).max().unwrap();
        let gbps = (2 * per_flow) as f64 * 8.0 / last.as_secs_f64() / 1e9;
        assert!(
            gbps > 90.0,
            "two hardware flows reached only {gbps:.1} Gb/s"
        );
    }

    #[test]
    fn telemetry_tracks_rtt_and_retransmissions() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(256 * 1024);
        let mut engine = fpga_engine().with_loss(LossPattern::drop_every(17));
        let (_, r) = engine.transfer(&mut link, Time::ZERO, &data);
        let t = engine.telemetry();
        assert_eq!(t.transfers(), 1);
        assert_eq!(t.bytes(), 256 * 1024);
        assert_eq!(t.retransmissions(), r.retransmissions);
        // Single ledger: RTO fires, the flow stats, and the outcome all
        // describe the same rewind events.
        assert_eq!(t.rto_fires(), r.retransmissions);
        let rtt = t.rtt_us();
        assert!(rtt.count() > 0);
        assert!(rtt.mean() > 0.0);

        let mut reg = enzian_sim::MetricsRegistry::new();
        enzian_sim::Instrumented::export_metrics(t, "net.tcp", &mut reg);
        assert_eq!(reg.counter("net.tcp.transfers"), 1);
        assert_eq!(reg.summary("net.tcp.rtt_us").unwrap().count(), rtt.count());
        // Per-module views are published, and the reliability export is
        // the same number as the aggregate (derived, not re-counted).
        assert_eq!(
            reg.counter("net.tcp.reliability.rto_fires"),
            r.retransmissions
        );
        assert!(
            reg.summary("net.tcp.congestion.cwnd_bytes")
                .unwrap()
                .count()
                > 0
        );
    }

    #[test]
    fn telemetry_keeps_per_flow_rtt() {
        let per_flow = 1 << 20;
        let data = payload(per_flow);
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let mut engine = kernel_engine();
        let flows = [&data[..], &data[..], &data[..]];
        let _ = engine.transfer_interleaved(&mut link, Time::ZERO, &flows);
        let t = engine.telemetry();
        assert_eq!(t.flow_rtt_us.len(), 3);
        for s in &t.flow_rtt_us {
            assert!(s.count() > 0, "every flow records RTT samples");
        }
        assert_eq!(t.transfers(), 3);
        // Per-flow counters are the source of truth; the aggregate is
        // their sum.
        assert_eq!(t.flow_stats().len(), 3);
        assert_eq!(
            t.flow_stats().iter().map(|f| f.segments).sum::<u64>(),
            t.segments()
        );
        for f in t.flow_stats() {
            assert_eq!(f.transfers, 1);
            assert_eq!(f.bytes, 1 << 20);
        }
    }

    #[test]
    fn drop_every_one_terminates_and_delivers_everything() {
        // The harshest pattern: every first transmission is dropped once.
        // Each segment still arrives via its retransmitted copy, so the
        // transfer terminates with exactly one retransmission burst per
        // drop and intact data.
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(16 * 1024);
        let mut engine = fpga_engine().with_loss(LossPattern::drop_every(1));
        let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data);
        assert!(r.retransmissions > 0);
        let plan = engine.telemetry(); // aggregate view
        assert_eq!(plan.retransmissions(), r.retransmissions);
    }

    #[test]
    fn loss_pattern_rides_the_shared_fault_model() {
        use enzian_sim::{FaultPlan, FaultSpec};
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(512 * 1024);
        let plan = FaultPlan::new(0xD0D0).with(FaultSpec::probability(SEGMENT_LOSS_TARGET, 0.05));
        let mut engine = fpga_engine().with_loss(LossPattern::from_plan(plan));
        let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data);
        assert!(r.retransmissions > 0, "5% loss over 256 segments");
        let ledger = engine.loss.plan();
        assert!(ledger.injected(SEGMENT_LOSS_TARGET) > 0);
        assert_eq!(
            ledger.recovered(SEGMENT_LOSS_TARGET),
            r.retransmissions,
            "every RTO rewind is a recorded recovery"
        );
        // Three views, one ledger: plan recoveries == flow stats ==
        // module RTO fires (the no-double-counting contract).
        assert_eq!(
            engine.telemetry().retransmissions(),
            engine.telemetry().rto_fires()
        );
    }

    #[test]
    fn lossless_patterns_allow_interleaved_transfers() {
        use enzian_sim::{FaultPlan, FaultSpec};
        assert!(LossPattern::none().is_lossless());
        assert!(LossPattern::drop_every(0).is_lossless());
        assert!(!LossPattern::drop_every(5).is_lossless());
        // Every per-module fault target disqualifies a plan.
        for target in [ACK_LOSS_TARGET, SEGMENT_CORRUPT_TARGET, RWND_SHRINK_TARGET] {
            let plan = FaultPlan::new(0).with(FaultSpec::every_nth(target, 2));
            assert!(
                !LossPattern::from_plan(plan).is_lossless(),
                "{target} must count as lossy"
            );
        }
    }

    #[test]
    fn corrupted_segment_is_checksum_rejected_then_recovered_exactly_once() {
        use enzian_sim::{FaultPlan, FaultSpec};
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let data = payload(64 * 1024);
        let plan = FaultPlan::new(0).with(FaultSpec::once(SEGMENT_CORRUPT_TARGET, Time::ZERO));
        let mut engine = fpga_engine().with_loss(LossPattern::from_plan(plan));
        let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data, "corruption recovery must deliver the stream");
        // The reliability module saw the damage, rejected the copy, and
        // recovered it through exactly one rewind of the single ledger.
        assert_eq!(engine.telemetry().module().checksum_rejects, 1);
        assert_eq!(r.retransmissions, 1);
        assert_eq!(engine.telemetry().rto_fires(), 1);
        let ledger = engine.loss.plan();
        assert_eq!(ledger.injected(SEGMENT_CORRUPT_TARGET), 1);
        assert_eq!(ledger.recovered(SEGMENT_CORRUPT_TARGET), 1);
        assert_eq!(ledger.injected(SEGMENT_LOSS_TARGET), 0);
    }

    #[test]
    fn ack_only_loss_is_covered_by_a_later_ack_without_retransmission() {
        use enzian_sim::{FaultPlan, FaultSpec};
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        // Many segments follow the one whose ack is dropped, so a later
        // cumulative ack covers the armed timer before it can fire.
        let data = payload(256 * 1024);
        let plan = FaultPlan::new(0).with(FaultSpec::once(ACK_LOSS_TARGET, Time::ZERO));
        let mut engine = fpga_engine().with_loss(LossPattern::from_plan(plan));
        let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data);
        // No data was retransmitted: cumulative acknowledgement did the
        // recovery, and the single ledger never moved.
        assert_eq!(r.retransmissions, 0, "ack loss must not retransmit data");
        assert_eq!(engine.telemetry().rto_fires(), 0);
        let ledger = engine.loss.plan();
        assert_eq!(ledger.injected(ACK_LOSS_TARGET), 1);
        assert_eq!(ledger.recovered(ACK_LOSS_TARGET), 1);
    }

    #[test]
    fn losing_the_only_ack_falls_back_to_one_accounted_rto() {
        use enzian_sim::{FaultPlan, FaultSpec};
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        // A single-segment transfer: no later ack can cover, so the RTO
        // fires once and the retransmitted copy's ack completes it.
        let data = payload(1024);
        let plan = FaultPlan::new(0).with(FaultSpec::once(ACK_LOSS_TARGET, Time::ZERO));
        let mut engine = fpga_engine().with_loss(LossPattern::from_plan(plan));
        let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data);
        // The retransmission exists and is fully accounted: outcome,
        // flow stats, rto_fires, and the plan's recovery all agree.
        assert_eq!(r.retransmissions, 1);
        assert_eq!(engine.telemetry().rto_fires(), 1);
        assert_eq!(engine.telemetry().retransmissions(), 1);
        assert_eq!(engine.loss.plan().recovered(ACK_LOSS_TARGET), 1);
    }

    #[test]
    fn rwnd_shrink_stalls_flow_control_and_drains_on_reopen() {
        use enzian_sim::{FaultPlan, FaultSpec};
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        // A small window forces ack-paced sending, so the zero-window
        // advertisement lands while data is still queued.
        let data = payload(128 * 1024);
        let cfg = TcpStackConfig::fpga_coyote().with_window(8 * 1024);
        let plan = FaultPlan::new(0).with(FaultSpec::once(RWND_SHRINK_TARGET, Time::ZERO));
        let mut engine =
            TcpEngine::new(cfg, cfg, Switch::tor()).with_loss(LossPattern::from_plan(plan));
        let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data, "the stream drains intact after reopening");
        let m = engine.telemetry().module();
        assert_eq!(m.rwnd_shrinks, 1, "exactly one zero-window event");
        assert!(
            m.rwnd_stalls > 0,
            "the stall must be attributed to flow control"
        );
        assert_eq!(m.cwnd_stalls, 0, "fixed-window cc is never the culprit");
        // The stall is pure flow control: nothing is lost, nothing is
        // retransmitted, and the fault ledger shows a full recovery.
        assert_eq!(r.retransmissions, 0);
        let ledger = engine.loss.plan();
        assert_eq!(ledger.injected(RWND_SHRINK_TARGET), 1);
        assert_eq!(ledger.recovered(RWND_SHRINK_TARGET), 1);

        // And a clean run under the same window never shrinks.
        let mut link2 = EthLink::new(EthLinkConfig::hundred_gig());
        let mut clean = TcpEngine::new(cfg, cfg, Switch::tor());
        let _ = clean.transfer(&mut link2, Time::ZERO, &data);
        assert_eq!(clean.telemetry().module().rwnd_shrinks, 0);
    }

    #[test]
    fn stall_attribution_points_at_the_binding_module() {
        // Kernel preset (rwnd 2 MiB, fixed cwnd == rwnd): stalls are
        // receive-window stalls. Reno over the same costs: early stalls
        // are congestion stalls (cwnd starts at IW10 << rwnd).
        let data = payload(1 << 20);
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let mut fixed = kernel_engine();
        let _ = fixed.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(fixed.telemetry().module().cwnd_stalls, 0);

        let cfg = TcpStackConfig::linux_kernel().with_cc(CcAlgorithm::Reno);
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let mut reno = TcpEngine::new(cfg, cfg, Switch::tor());
        let _ = reno.transfer(&mut link, Time::ZERO, &data);
        assert!(
            reno.telemetry().module().cwnd_stalls > 0,
            "slow start must stall on cwnd"
        );
    }

    #[test]
    #[should_panic(expected = "empty transfer")]
    fn empty_transfer_panics() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        fpga_engine().transfer(&mut link, Time::ZERO, &[]);
    }
}
