//! Reliability: segmentation, integrity, retransmission, and in-order
//! reassembly — the data-path module of the split stack.
//!
//! Everything here is mechanism, not policy: given an MSS the
//! [`segment_len`] schedule carves the byte stream, [`internet_checksum`]
//! guards each segment, [`GoBackN`] tracks first transmissions and the
//! pending retransmission-timeout rewind, and [`Reassembler`] delivers
//! the stream in order with cumulative acknowledgement. This is the
//! module every stack preset keeps on the FPGA side of the offload
//! boundary (the hybrid preset included) because it touches every
//! payload byte.
//!
//! The module is drivable in isolation — no engine, no link — which is
//! what the property tests below exploit: under any scripted drop
//! pattern, every dropped segment is retransmitted exactly once and the
//! receiver sees the stream in order.

use std::collections::HashSet;

use enzian_sim::Time;

/// The RFC 1071 Internet checksum over a byte slice (odd-length buffers
/// are virtually padded with a zero byte).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    for chunk in data.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += u32::from(word);
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verifies `data` against a checksum computed by [`internet_checksum`]:
/// summing the (zero-padded) data plus the checksum word must yield
/// zero. This is how a receiver checks a segment whose trailer carries
/// the transmitted checksum.
pub fn checksum_verifies(data: &[u8], checksum: u16) -> bool {
    let mut framed = Vec::with_capacity(data.len() + 3);
    framed.extend_from_slice(data);
    if framed.len() % 2 == 1 {
        framed.push(0);
    }
    framed.extend_from_slice(&checksum.to_be_bytes());
    internet_checksum(&framed) == 0
}

/// Payload length of the segment starting at offset `sent` of a
/// `len`-byte stream under `mss`.
pub fn segment_len(mss: usize, len: u64, sent: u64) -> usize {
    usize::min(mss, (len - sent) as usize)
}

/// Go-back-N retransmission state: which byte offsets have had their
/// first transmission (loss injection applies only to those), the
/// pending RTO rewind, and the retransmission ledger.
///
/// This ledger is the **single source of truth** for retransmission
/// counts: the engine copies it into [`FlowStats`](super::FlowStats)
/// once per transfer and every telemetry view (per-flow counters, the
/// `reliability.rto_fires` export, the fault plan's recovery ledger)
/// derives from the same events, so nothing is double-counted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GoBackN {
    first_tx: HashSet<u64>,
    /// Pending RTO rewind: (fire time, rewind-to offset).
    pending: Option<(Time, u64)>,
    retransmissions: u64,
}

impl GoBackN {
    /// Fresh per-transfer state.
    pub fn new() -> Self {
        GoBackN::default()
    }

    /// Records that the segment at `seq` is being transmitted; returns
    /// `true` iff this is its first transmission (the only copies
    /// offered to loss injection).
    pub fn first_transmission(&mut self, seq: u64) -> bool {
        self.first_tx.insert(seq)
    }

    /// The segment at `seq` was dropped at `fire_at = tx_done + rto`;
    /// arrange the rewind unless one is already pending for an earlier
    /// offset.
    pub fn schedule_rewind(&mut self, fire_at: Time, seq: u64) {
        self.pending = Some(match self.pending {
            Some((t, s)) if s < seq => (t, s),
            _ => (fire_at, seq),
        });
    }

    /// The pending rewind, if any: (fire time, rewind-to offset).
    pub fn pending(&self) -> Option<(Time, u64)> {
        self.pending
    }

    /// Cancels the pending rewind if a cumulative acknowledgement has
    /// covered its offset (`seq < acked`): the timer's data is known
    /// delivered, so firing it would only retransmit acknowledged bytes.
    /// Returns the cancelled entry, or `None` if nothing was pending or
    /// the pending offset is still unacknowledged. A rewind scheduled
    /// for a *dropped* segment can never be cancelled this way — the
    /// receiver's in-order edge (and therefore every cumulative ack)
    /// stops at the dropped offset until the retransmission lands.
    pub fn cancel_covered(&mut self, acked: u64) -> Option<(Time, u64)> {
        match self.pending {
            Some((_, seq)) if seq < acked => self.pending.take(),
            _ => None,
        }
    }

    /// Fires the pending rewind, counting one retransmission event.
    ///
    /// # Panics
    ///
    /// Panics if no rewind is pending.
    pub fn fire(&mut self) -> (Time, u64) {
        let fired = self.pending.take().expect("no pending rewind to fire");
        self.retransmissions += 1;
        fired
    }

    /// Retransmission events fired so far (go-back-N rewinds; equal to
    /// RTO fires in this engine).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

/// In-order stream reassembly with cumulative acknowledgement:
/// go-back-N discards anything but the next expected byte and re-acks
/// the current edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Reassembler {
    rcv_next: u64,
}

impl Reassembler {
    /// Fresh per-transfer state expecting byte 0.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Next in-order byte expected — the cumulative-ack value every
    /// arriving segment elicits.
    pub fn rcv_next(&self) -> u64 {
        self.rcv_next
    }

    /// Offers the segment at `seq`; delivers into `out` and advances the
    /// in-order edge iff it is the next expected segment. Out-of-order
    /// segments are discarded (go-back-N) and `false` is returned.
    pub fn deliver_in_order(&mut self, seq: u64, payload: &[u8], out: &mut [u8]) -> bool {
        if seq != self.rcv_next {
            return false;
        }
        out[seq as usize..seq as usize + payload.len()].copy_from_slice(payload);
        self.rcv_next = seq + payload.len() as u64;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enzian_sim::{Duration, SimRng};

    #[test]
    fn checksum_known_values() {
        // All zeros checksums to 0xFFFF; RFC 1071 example.
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xFFFF);
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    #[test]
    fn checksum_round_trips_on_odd_length_buffers() {
        let mut rng = SimRng::seed_from(0xC4EC_0001);
        for case in 0..64 {
            let n = 2 * case + 1; // every odd length 1..=127
            let mut data = vec![0u8; n];
            rng.fill_bytes(&mut data);
            let sum = internet_checksum(&data);
            assert!(
                checksum_verifies(&data, sum),
                "odd-length round trip failed at n={n}"
            );
            // A corrupted byte must break verification (checksum is not
            // position-sensitive, so flip a value, not a swap).
            let mut bad = data.clone();
            bad[n / 2] ^= 0x5A;
            assert!(
                !checksum_verifies(&bad, sum),
                "corruption undetected at n={n}"
            );
        }
    }

    #[test]
    fn checksum_round_trips_on_all_ff_buffers() {
        // All-0xFF buffers are the carry-heavy worst case: every word
        // wraps, exercising the end-around carry fold.
        for n in [1usize, 2, 3, 64, 127, 128] {
            let data = vec![0xFFu8; n];
            let sum = internet_checksum(&data);
            assert!(checksum_verifies(&data, sum), "all-0xFF failed at n={n}");
        }
        // Even-length all-ones sums to 0xFFFF, so the checksum is 0.
        assert_eq!(internet_checksum(&[0xFF; 8]), 0);
    }

    #[test]
    fn segment_schedule_covers_the_stream_exactly() {
        for (mss, len) in [(2048usize, 100_000u64), (1448, 1), (1448, 1448), (512, 513)] {
            let mut sent = 0u64;
            let mut segs = 0u64;
            while sent < len {
                let s = segment_len(mss, len, sent);
                assert!(s > 0 && s <= mss);
                sent += s as u64;
                segs += 1;
            }
            assert_eq!(sent, len);
            assert_eq!(segs, len.div_ceil(mss as u64));
        }
    }

    /// Drives the reliability module in isolation — no engine, no link —
    /// through a scripted drop set, and checks the go-back-N contract:
    /// every dropped segment is eventually retransmitted **exactly
    /// once**, retransmissions happen **in order**, and the receiver
    /// reassembles the stream intact.
    fn run_isolated(len: u64, mss: usize, rto: Duration, drop_seqs: &[u64]) {
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut out = vec![0u8; len as usize];
        let mut gbn = GoBackN::new();
        let mut rsm = Reassembler::new();
        let mut dropped: HashSet<u64> = drop_seqs.iter().copied().collect();
        let mut retransmitted: Vec<u64> = Vec::new();
        let mut sent = 0u64;
        let mut now = Time::ZERO;

        while rsm.rcv_next() < len {
            if let Some((at, seq)) = gbn.pending() {
                // No window in this harness: fire as soon as scheduled.
                let (fired_at, rewind) = gbn.fire();
                assert_eq!((fired_at, rewind), (at, seq));
                retransmitted.push(seq);
                sent = seq.min(sent);
                now = now.max(at);
            }
            let seg = segment_len(mss, len, sent);
            let seq = sent;
            now += Duration::from_ns(10);
            sent = seq + seg as u64;
            let first = gbn.first_transmission(seq);
            if first && dropped.remove(&seq) {
                gbn.schedule_rewind(now + rto, seq);
                continue;
            }
            let payload = &data[seq as usize..seq as usize + seg];
            let sum = internet_checksum(payload);
            assert!(checksum_verifies(payload, sum));
            rsm.deliver_in_order(seq, payload, &mut out);
        }

        assert_eq!(out, data, "stream corrupted");
        assert_eq!(rsm.rcv_next(), len);
        // Exactly one retransmission event per dropped segment, fired in
        // stream order.
        let mut expected: Vec<u64> = drop_seqs.to_vec();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(
            retransmitted, expected,
            "each drop must be retransmitted exactly once, in order"
        );
        assert_eq!(gbn.retransmissions(), expected.len() as u64);
    }

    #[test]
    fn every_dropped_segment_is_retransmitted_exactly_once_in_order() {
        let mss = 1000usize;
        run_isolated(10_000, mss, Duration::from_us(50), &[0]);
        run_isolated(10_000, mss, Duration::from_us(50), &[3000, 7000]);
        run_isolated(10_000, mss, Duration::from_us(50), &[9000]);
        // Every segment dropped once: the harshest pattern.
        let all: Vec<u64> = (0..10).map(|i| i * 1000).collect();
        run_isolated(10_000, mss, Duration::from_us(50), &all);
    }

    #[test]
    fn randomized_drop_sets_hold_the_contract() {
        let mut rng = SimRng::seed_from(0xC4EC_0002);
        for _case in 0..32 {
            let segs = rng.range(1, 40);
            let mss = 512usize;
            let len = segs * 512;
            let drops: Vec<u64> = (0..segs)
                .filter(|_| rng.chance(0.3))
                .map(|i| i * 512)
                .collect();
            run_isolated(len, mss, Duration::from_us(20), &drops);
        }
    }

    #[test]
    fn rewind_keeps_the_earliest_offset() {
        let mut gbn = GoBackN::new();
        gbn.schedule_rewind(Time::from_us(30), 5000);
        gbn.schedule_rewind(Time::from_us(10), 9000);
        // The earlier *offset* wins, keeping go-back-N monotone.
        assert_eq!(gbn.pending(), Some((Time::from_us(30), 5000)));
        assert_eq!(gbn.fire(), (Time::from_us(30), 5000));
        assert_eq!(gbn.pending(), None);
        assert_eq!(gbn.retransmissions(), 1);
    }

    #[test]
    fn ack_coverage_cancels_a_pending_rewind_without_counting() {
        let mut gbn = GoBackN::new();
        gbn.schedule_rewind(Time::from_us(10), 4000);
        // Acks up to (but not past) the offset leave the timer armed.
        assert_eq!(gbn.cancel_covered(4000), None);
        assert!(gbn.pending().is_some());
        // A cumulative ack past the offset voids the timer, and the
        // cancellation is not a retransmission event.
        assert_eq!(gbn.cancel_covered(4001), Some((Time::from_us(10), 4000)));
        assert_eq!(gbn.pending(), None);
        assert_eq!(gbn.retransmissions(), 0);
    }

    #[test]
    fn reassembler_discards_out_of_order() {
        let mut rsm = Reassembler::new();
        let mut out = vec![0u8; 8];
        assert!(!rsm.deliver_in_order(4, &[9, 9, 9, 9], &mut out));
        assert_eq!(rsm.rcv_next(), 0);
        assert!(rsm.deliver_in_order(0, &[1, 2, 3, 4], &mut out));
        assert!(rsm.deliver_in_order(4, &[5, 6, 7, 8], &mut out));
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
