//! Smart disaggregated memory with operator off-loading (§6 / Farview).
//!
//! *"We have recent work on smart disaggregated memory where the DRAM of
//! the FPGA is made available as network attached memory … This
//! disaggregated memory can be used, for example, as a database buffer
//! cache with operator off-loading and push down directly to the
//! memory."* (Korolija et al. \[37\].)
//!
//! [`FarviewServer`] exposes a table in FPGA DRAM over the network.
//! Clients either fetch raw rows (plain disaggregated memory) or push an
//! operator down: the FPGA scans rows at memory bandwidth and ships only
//! qualifying rows or a scalar aggregate — trading abundant FPGA-side
//! memory bandwidth for scarce network bandwidth.

use enzian_mem::{Addr, MemoryController, Op};
use enzian_sim::{Duration, Time};

use crate::eth::EthLink;
use crate::rdma::RDMA_HEADER;

/// A pushed-down predicate over one `u64` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Column equals the literal.
    Eq(u64),
    /// Column strictly greater than the literal.
    Gt(u64),
    /// Column strictly less than the literal.
    Lt(u64),
}

impl Predicate {
    fn eval(&self, v: u64) -> bool {
        match *self {
            Predicate::Eq(x) => v == x,
            Predicate::Gt(x) => v > x,
            Predicate::Lt(x) => v < x,
        }
    }
}

/// A pushed-down aggregate over one `u64` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of the column (wrapping).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Row count.
    Count,
}

/// The operator a request pushes down, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// No push-down: ship raw rows (plain disaggregated memory).
    None,
    /// Filter on a column; ship only qualifying rows.
    Filter {
        /// Byte offset of the `u64` column within the row.
        column_offset: usize,
        /// The predicate.
        predicate: Predicate,
    },
    /// Filter then aggregate another column; ship one scalar.
    FilterAggregate {
        /// Byte offset of the filter column.
        filter_offset: usize,
        /// The predicate.
        predicate: Predicate,
        /// Byte offset of the aggregated column.
        agg_offset: usize,
        /// The aggregate function.
        aggregate: Aggregate,
    },
}

/// The reply to a scan request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Raw or filtered rows (empty for aggregates).
    pub rows: Vec<Vec<u8>>,
    /// The aggregate scalar, when one was pushed down.
    pub scalar: Option<u64>,
    /// Completion time at the client.
    pub completed: Time,
    /// Payload bytes that crossed the network.
    pub network_bytes: u64,
}

/// A table served from FPGA DRAM.
#[derive(Debug)]
pub struct FarviewServer {
    memory: MemoryController,
    base: Addr,
    row_bytes: usize,
    rows: u64,
    /// Scan engine rate: bytes per FPGA cycle (one 64-byte beat).
    clock: Duration,
}

impl FarviewServer {
    /// Creates a server over `memory`, loading `rows` of `row_bytes`
    /// each from `data` at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly `rows * row_bytes` long or a row
    /// is smaller than 8 bytes.
    pub fn new(mut memory: MemoryController, base: Addr, row_bytes: usize, data: &[u8]) -> Self {
        assert!(row_bytes >= 8, "rows must hold at least one u64 column");
        assert!(
            data.len().is_multiple_of(row_bytes),
            "data length {} not a multiple of row size {row_bytes}",
            data.len()
        );
        memory.store_mut().write(base, data);
        FarviewServer {
            memory,
            base,
            row_bytes,
            rows: (data.len() / row_bytes) as u64,
            clock: Duration::from_hz(300_000_000),
        }
    }

    /// Rows in the table.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    fn column(&self, row: &[u8], offset: usize) -> u64 {
        u64::from_le_bytes(row[offset..offset + 8].try_into().expect("column in row"))
    }

    /// Serves a scan of `[first_row, first_row + count)` with `op`
    /// pushed down, shipping results back over `link` (server is side
    /// b). `now` is the request arrival at the server.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the table or a column offset does not
    /// fit a row.
    pub fn scan(
        &mut self,
        link: &mut EthLink,
        now: Time,
        first_row: u64,
        count: u64,
        op: Operator,
    ) -> ScanResult {
        assert!(first_row + count <= self.rows, "scan beyond table");
        let bytes = count as usize * self.row_bytes;
        let src = self.base.offset(first_row * self.row_bytes as u64);

        // The scan engine streams the range from DRAM...
        let dram_done = self.memory.request(now, src, bytes as u64, Op::Read);
        let mut raw = vec![0u8; bytes];
        self.memory.store().read(src, &mut raw);
        // ...and evaluates the operator at one 64-byte beat per cycle.
        let scan_done = dram_done + self.clock * (bytes as u64).div_ceil(64);

        let mut rows = Vec::new();
        let mut scalar: Option<u64> = None;
        match op {
            Operator::None => {
                rows.extend(raw.chunks_exact(self.row_bytes).map(<[u8]>::to_vec));
            }
            Operator::Filter {
                column_offset,
                predicate,
            } => {
                assert!(column_offset + 8 <= self.row_bytes, "column beyond row");
                for row in raw.chunks_exact(self.row_bytes) {
                    if predicate.eval(self.column(row, column_offset)) {
                        rows.push(row.to_vec());
                    }
                }
            }
            Operator::FilterAggregate {
                filter_offset,
                predicate,
                agg_offset,
                aggregate,
            } => {
                assert!(filter_offset + 8 <= self.row_bytes, "column beyond row");
                assert!(agg_offset + 8 <= self.row_bytes, "column beyond row");
                let mut acc: Option<u64> = None;
                let mut n = 0u64;
                for row in raw.chunks_exact(self.row_bytes) {
                    if !predicate.eval(self.column(row, filter_offset)) {
                        continue;
                    }
                    n += 1;
                    let v = self.column(row, agg_offset);
                    acc = Some(match (aggregate, acc) {
                        (Aggregate::Sum, a) => a.unwrap_or(0).wrapping_add(v),
                        (Aggregate::Min, Some(a)) => a.min(v),
                        (Aggregate::Max, Some(a)) => a.max(v),
                        (Aggregate::Min | Aggregate::Max, None) => v,
                        (Aggregate::Count, _) => n,
                    });
                }
                scalar = Some(match aggregate {
                    Aggregate::Count => n,
                    _ => acc.unwrap_or(0),
                });
            }
        }

        // Ship the result: qualifying rows (framed at 4 KiB) or one
        // scalar reply.
        let payload: u64 = match op {
            Operator::FilterAggregate { .. } => 8,
            _ => rows.iter().map(|r| r.len() as u64).sum(),
        };
        let mut completed = scan_done;
        let mut remaining = payload.max(1);
        while remaining > 0 {
            let seg = remaining.min(4096);
            completed = link.send_b_to_a(scan_done, seg + RDMA_HEADER);
            remaining -= seg;
        }
        ScanResult {
            rows,
            scalar,
            completed,
            network_bytes: payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eth::EthLinkConfig;
    use enzian_mem::MemoryControllerConfig;

    /// Rows: [ key: u64 | amount: u64 | padding to 64 B ].
    const ROW: usize = 64;

    fn table(n: u64) -> Vec<u8> {
        let mut data = Vec::with_capacity(n as usize * ROW);
        for i in 0..n {
            let mut row = [0u8; ROW];
            row[..8].copy_from_slice(&i.to_le_bytes());
            row[8..16].copy_from_slice(&(i * 10).to_le_bytes());
            data.extend_from_slice(&row);
        }
        data
    }

    fn server(n: u64) -> FarviewServer {
        FarviewServer::new(
            MemoryController::new(MemoryControllerConfig::enzian_fpga()),
            Addr(0),
            ROW,
            &table(n),
        )
    }

    fn link() -> EthLink {
        EthLink::new(EthLinkConfig::hundred_gig())
    }

    #[test]
    fn raw_scan_ships_every_row() {
        let mut s = server(100);
        let mut l = link();
        let r = s.scan(&mut l, Time::ZERO, 0, 100, Operator::None);
        assert_eq!(r.rows.len(), 100);
        assert_eq!(r.network_bytes, 100 * ROW as u64);
        assert_eq!(u64::from_le_bytes(r.rows[42][..8].try_into().unwrap()), 42);
    }

    #[test]
    fn filter_pushdown_ships_only_matches() {
        let mut s = server(1000);
        let mut l = link();
        let r = s.scan(
            &mut l,
            Time::ZERO,
            0,
            1000,
            Operator::Filter {
                column_offset: 0,
                predicate: Predicate::Gt(989),
            },
        );
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.network_bytes, 10 * ROW as u64);
        for row in &r.rows {
            assert!(u64::from_le_bytes(row[..8].try_into().unwrap()) > 989);
        }
    }

    #[test]
    fn aggregates_compute_correctly() {
        let mut s = server(100);
        let mut l = link();
        // sum(amount) where key < 10  = 10 * (0+1+..+9) = 450.
        let sum = s
            .scan(
                &mut l,
                Time::ZERO,
                0,
                100,
                Operator::FilterAggregate {
                    filter_offset: 0,
                    predicate: Predicate::Lt(10),
                    agg_offset: 8,
                    aggregate: Aggregate::Sum,
                },
            )
            .scalar
            .unwrap();
        assert_eq!(sum, 450);
        let count = s
            .scan(
                &mut l,
                Time::ZERO,
                0,
                100,
                Operator::FilterAggregate {
                    filter_offset: 0,
                    predicate: Predicate::Eq(55),
                    agg_offset: 8,
                    aggregate: Aggregate::Count,
                },
            )
            .scalar
            .unwrap();
        assert_eq!(count, 1);
        let max = s
            .scan(
                &mut l,
                Time::ZERO,
                0,
                100,
                Operator::FilterAggregate {
                    filter_offset: 0,
                    predicate: Predicate::Lt(100),
                    agg_offset: 8,
                    aggregate: Aggregate::Max,
                },
            )
            .scalar
            .unwrap();
        assert_eq!(max, 990);
    }

    #[test]
    fn pushdown_saves_network_time_on_selective_queries() {
        // A selective filter over a large range finishes far sooner at
        // the client than shipping the whole range.
        let n = 20_000u64;
        let mut s = server(n);
        let mut l = link();
        let raw = s.scan(&mut l, Time::ZERO, 0, n, Operator::None);
        let mut s = server(n);
        let mut l = link();
        let filtered = s.scan(
            &mut l,
            Time::ZERO,
            0,
            n,
            Operator::Filter {
                column_offset: 0,
                predicate: Predicate::Gt(n - 20),
            },
        );
        assert!(filtered.network_bytes < raw.network_bytes / 100);
        assert!(
            filtered.completed < raw.completed,
            "push-down did not reduce completion time"
        );
    }

    #[test]
    fn aggregate_ships_eight_bytes_regardless_of_range() {
        let mut s = server(5_000);
        let mut l = link();
        let r = s.scan(
            &mut l,
            Time::ZERO,
            0,
            5_000,
            Operator::FilterAggregate {
                filter_offset: 0,
                predicate: Predicate::Gt(0),
                agg_offset: 8,
                aggregate: Aggregate::Sum,
            },
        );
        assert_eq!(r.network_bytes, 8);
        assert!(r.rows.is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond table")]
    fn out_of_range_scan_panics() {
        let mut s = server(10);
        let mut l = link();
        s.scan(&mut l, Time::ZERO, 5, 10, Operator::None);
    }
}
