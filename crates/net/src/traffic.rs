//! Traffic-plane building blocks for million-flow load generation.
//!
//! TrafficEngine-style stateful load generators (shared-nothing per-core
//! TCP engines doing ~100k connections/sec/core) rest on three small
//! mechanisms, and this module provides the simulated analogue of each:
//!
//! * [`Segment`] — the compact wire format a churn session's segments
//!   travel in between boards. Only the header is materialized; payload
//!   bytes are carried as a *length* so a million-flow run never copies
//!   gigabytes of data around. The header is checksummed with the same
//!   [`internet_checksum`] the reliability module uses.
//! * [`PortMask`] — RSS/RFS-style flow steering. The low bits of every
//!   port name the owning board, the high bits index directly into that
//!   board's flow table, so steering a reply and demultiplexing it to
//!   its flow are both O(1) mask-and-shift operations.
//! * [`FlowTable`] — a slab-backed table of per-flow state with a free
//!   list and generation counters. Memory is bounded by the *peak*
//!   number of concurrent flows, never by the total churned through:
//!   teardown recycles the slot and bumps its generation so stale
//!   handles cannot resurrect a dead flow.
//!
//! The multi-session engine that drives per-flow state machines over
//! these pieces is [`SessionMux`](crate::tcp::mux::SessionMux).

use crate::tcp::reliability::internet_checksum;

/// TCP flag bits carried by [`Segment::flags`].
pub mod flags {
    /// Connection request (first or second handshake segment).
    pub const SYN: u8 = 1 << 0;
    /// Acknowledgement field is live.
    pub const ACK: u8 = 1 << 1;
    /// Sender is done; teardown begins.
    pub const FIN: u8 = 1 << 2;
    /// Connection-control acknowledgement (the handshake's third
    /// segment and the teardown FIN-acks). Distinguishes FSM-driving
    /// acks from cumulative data acks so a duplicate data ack can
    /// never be mistaken for a teardown step.
    pub const CTL: u8 = 1 << 3;
}

/// Encoded size of one segment header on the wire (payload bytes ride
/// as a declared length, not as materialized data).
pub const SEGMENT_HEADER_BYTES: u64 = 28;

/// Magic byte opening every traffic segment (`0xEB` is the bridge's,
/// `0xEC` ECI's).
pub const SEGMENT_MAGIC: u8 = 0xE7;

/// Segment format version.
pub const SEGMENT_VERSION: u8 = 1;

/// One traffic-plane TCP segment.
///
/// `seq`/`ack` number payload bytes only (the simulator does not model
/// ISNs); control segments carry `len == 0`. `src_port`/`dst_port` are
/// 32-bit simulated ports: the [`PortMask`] low bits steer to a board,
/// the high bits index its flow table, and a 16-bit space would cap a
/// board at ~64k concurrent flows — an order of magnitude below the
/// 10^5–10^6 this plane targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// Board the segment left from.
    pub src_board: u8,
    /// Board it is steered to.
    pub dst_board: u8,
    /// Sender's port (flow port, or a listen port for the first SYN).
    pub src_port: u32,
    /// Receiver's port.
    pub dst_port: u32,
    /// Payload byte offset of this segment's first byte.
    pub seq: u32,
    /// Cumulative acknowledgement (next expected payload byte).
    pub ack: u32,
    /// Payload length in virtual bytes (zero for control segments).
    pub len: u32,
}

impl Segment {
    /// Bytes this segment occupies on the wire: the encoded header plus
    /// its virtual payload.
    pub fn wire_bytes(&self) -> u64 {
        SEGMENT_HEADER_BYTES + u64::from(self.len)
    }
}

/// Decoding failures for [`decode_segment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// Fewer bytes than a header.
    Truncated {
        /// Bytes available.
        got: usize,
    },
    /// First byte was not [`SEGMENT_MAGIC`].
    BadMagic(u8),
    /// Unknown format version.
    BadVersion(u8),
    /// Header checksum mismatch.
    BadChecksum {
        /// Checksum computed from the header contents.
        expected: u16,
        /// Checksum found in the trailer.
        found: u16,
    },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Truncated { got } => {
                write!(
                    f,
                    "truncated segment: {got} of {SEGMENT_HEADER_BYTES} bytes"
                )
            }
            SegmentError::BadMagic(b) => write!(f, "bad segment magic {b:#04x}"),
            SegmentError::BadVersion(v) => write!(f, "unknown segment version {v}"),
            SegmentError::BadChecksum { expected, found } => {
                write!(f, "segment checksum {found:#06x}, expected {expected:#06x}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

/// Encodes `seg` as a [`SEGMENT_HEADER_BYTES`]-byte header.
pub fn encode_segment(seg: &Segment) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
    out.push(SEGMENT_MAGIC);
    out.push(SEGMENT_VERSION);
    out.push(seg.flags);
    out.push(seg.src_board);
    out.push(seg.dst_board);
    out.push(0); // pad: keeps the u32 fields aligned and the size even
    out.extend_from_slice(&seg.src_port.to_le_bytes());
    out.extend_from_slice(&seg.dst_port.to_le_bytes());
    out.extend_from_slice(&seg.seq.to_le_bytes());
    out.extend_from_slice(&seg.ack.to_le_bytes());
    out.extend_from_slice(&seg.len.to_le_bytes());
    let sum = internet_checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    debug_assert_eq!(out.len() as u64, SEGMENT_HEADER_BYTES);
    out
}

/// Decodes a header produced by [`encode_segment`].
pub fn decode_segment(bytes: &[u8]) -> Result<Segment, SegmentError> {
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        return Err(SegmentError::Truncated { got: bytes.len() });
    }
    if bytes[0] != SEGMENT_MAGIC {
        return Err(SegmentError::BadMagic(bytes[0]));
    }
    if bytes[1] != SEGMENT_VERSION {
        return Err(SegmentError::BadVersion(bytes[1]));
    }
    let body = &bytes[..26];
    let found = u16::from_le_bytes([bytes[26], bytes[27]]);
    let expected = internet_checksum(body);
    if found != expected {
        return Err(SegmentError::BadChecksum { expected, found });
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    Ok(Segment {
        flags: bytes[2],
        src_board: bytes[3],
        dst_board: bytes[4],
        src_port: u32_at(6),
        dst_port: u32_at(10),
        seq: u32_at(14),
        ack: u32_at(18),
        len: u32_at(22),
    })
}

/// RSS-style port-mask flow steering.
///
/// Every port's low `bits` name the board that owns the flow, and the
/// remaining high bits index the owner's flow table directly (index 0
/// is reserved for the board's listen port). A reply is steered by
/// masking its destination port — no per-flow routing state anywhere in
/// the fabric — and demultiplexed at the owner by one shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortMask {
    bits: u32,
}

impl PortMask {
    /// The smallest mask that distinguishes `boards` boards (at least
    /// one bit, so a two-board mask still exercises the steering path).
    ///
    /// # Panics
    ///
    /// Panics if `boards` is zero or needs more than 8 bits (board ids
    /// travel as a byte).
    pub fn for_boards(boards: usize) -> Self {
        assert!(boards > 0, "PortMask::for_boards: no boards");
        assert!(boards <= 256, "board ids must fit a byte");
        let bits = usize::BITS - (boards - 1).max(1).leading_zeros();
        PortMask { bits: bits.max(1) }
    }

    /// Number of low board bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The board-selecting bit mask.
    pub fn mask(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// The board a port steers to.
    pub fn board_of(&self, port: u32) -> u8 {
        (port & self.mask()) as u8
    }

    /// `board`'s well-known listen port (flow index 0 is reserved).
    pub fn listen_port(&self, board: u8) -> u32 {
        u32::from(board)
    }

    /// The port owned by `board` for flow-table slot `slot`.
    pub fn flow_port(&self, board: u8, slot: u32) -> u32 {
        ((slot + 1) << self.bits) | u32::from(board)
    }

    /// The flow-table slot a port demultiplexes to, or `None` for a
    /// listen port.
    pub fn slot_of(&self, port: u32) -> Option<u32> {
        (port >> self.bits).checked_sub(1)
    }
}

/// A handle to a [`FlowTable`] entry: slot index plus the generation it
/// was allocated under. A freed-and-recycled slot invalidates all old
/// keys because its generation moved on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Slab slot index.
    pub slot: u32,
    /// Generation the slot had when this key was issued.
    pub gen: u32,
}

struct Slot<T> {
    gen: u32,
    state: Option<T>,
}

/// Slab-backed per-flow state with bounded memory.
///
/// The table grows only when a flow arrives while the free list is
/// empty, so its capacity equals the *peak* number of concurrent flows
/// ever live — churning a million sessions through a table that never
/// holds more than 10^5 at once allocates 10^5 slots, not 10^6. Freed
/// slots are recycled LIFO (hot in cache) with a generation bump.
pub struct FlowTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: u32,
    peak_live: u32,
    opened: u64,
    freed: u64,
}

impl<T> FlowTable<T> {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            opened: 0,
            freed: 0,
        }
    }

    /// Flows live right now.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// High-water mark of concurrent live flows.
    pub fn peak_live(&self) -> u32 {
        self.peak_live
    }

    /// Slots ever allocated — the table's memory bound. Equals
    /// [`peak_live`](Self::peak_live) by construction, which the
    /// property tests assert.
    pub fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Total flows admitted over the table's lifetime.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// Total flows freed over the table's lifetime.
    pub fn freed(&self) -> u64 {
        self.freed
    }

    /// Admits a flow and returns its key.
    pub fn alloc(&mut self, state: T) -> FlowKey {
        self.opened += 1;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.state.is_none(), "free list held a live slot");
            s.state = Some(state);
            FlowKey { slot, gen: s.gen }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                state: Some(state),
            });
            FlowKey { slot, gen: 0 }
        }
    }

    /// The flow `key` names, if it is still the same incarnation.
    pub fn get(&self, key: FlowKey) -> Option<&T> {
        let s = self.slots.get(key.slot as usize)?;
        if s.gen != key.gen {
            return None;
        }
        s.state.as_ref()
    }

    /// Mutable access to the flow `key` names.
    pub fn get_mut(&mut self, key: FlowKey) -> Option<&mut T> {
        let s = self.slots.get_mut(key.slot as usize)?;
        if s.gen != key.gen {
            return None;
        }
        s.state.as_mut()
    }

    /// The live flow in `slot` (however it was allocated), with its
    /// current key — the receive-path demux after [`PortMask::slot_of`].
    pub fn get_slot(&self, slot: u32) -> Option<(&T, FlowKey)> {
        let s = self.slots.get(slot as usize)?;
        s.state.as_ref().map(|t| (t, FlowKey { slot, gen: s.gen }))
    }

    /// Frees the flow, recycling its slot. Returns the state, or `None`
    /// if the key was stale.
    pub fn free(&mut self, key: FlowKey) -> Option<T> {
        let s = self.slots.get_mut(key.slot as usize)?;
        if s.gen != key.gen || s.state.is_none() {
            return None;
        }
        let state = s.state.take();
        s.gen = s.gen.wrapping_add(1);
        self.free.push(key.slot);
        self.live -= 1;
        self.freed += 1;
        state
    }

    /// Iterates live flows in slot order (deterministic digests).
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.state.as_ref().map(|t| (i as u32, t)))
    }
}

impl<T> Default for FlowTable<T> {
    fn default() -> Self {
        FlowTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_roundtrips() {
        let seg = Segment {
            flags: flags::SYN | flags::ACK,
            src_board: 3,
            dst_board: 1,
            src_port: 0x1234_5678,
            dst_port: 0x9abc_def0,
            seq: 42,
            ack: 7,
            len: 2048,
        };
        let bytes = encode_segment(&seg);
        assert_eq!(bytes.len() as u64, SEGMENT_HEADER_BYTES);
        assert_eq!(decode_segment(&bytes), Ok(seg));
        assert_eq!(seg.wire_bytes(), SEGMENT_HEADER_BYTES + 2048);
    }

    #[test]
    fn segment_corruption_is_detected() {
        let seg = Segment {
            flags: flags::FIN,
            src_board: 0,
            dst_board: 1,
            src_port: 9,
            dst_port: 10,
            seq: 0,
            ack: 0,
            len: 0,
        };
        let mut bytes = encode_segment(&seg);
        bytes[14] ^= 0x40; // flip a seq bit
        assert!(matches!(
            decode_segment(&bytes),
            Err(SegmentError::BadChecksum { .. })
        ));
        assert_eq!(
            decode_segment(&bytes[..10]),
            Err(SegmentError::Truncated { got: 10 })
        );
        assert_eq!(decode_segment(&[0u8; 28]), Err(SegmentError::BadMagic(0)));
    }

    #[test]
    fn port_mask_steers_and_demuxes() {
        let m = PortMask::for_boards(8);
        assert_eq!(m.bits(), 3);
        for board in 0..8u8 {
            assert_eq!(m.board_of(m.listen_port(board)), board);
            assert_eq!(m.slot_of(m.listen_port(board)), None);
            for slot in [0u32, 1, 77, 1_000_000] {
                let p = m.flow_port(board, slot);
                assert_eq!(m.board_of(p), board);
                assert_eq!(m.slot_of(p), Some(slot));
            }
        }
        // Two boards still get one steering bit.
        assert_eq!(PortMask::for_boards(2).bits(), 1);
        assert_eq!(PortMask::for_boards(3).bits(), 2);
    }

    #[test]
    fn flow_table_recycles_slots_with_generations() {
        let mut t = FlowTable::new();
        let a = t.alloc("a");
        let b = t.alloc("b");
        assert_eq!(t.live(), 2);
        assert_eq!(t.get(a), Some(&"a"));
        assert_eq!(t.free(a), Some("a"));
        assert_eq!(t.get(a), None, "freed key must go stale");
        // LIFO reuse: the freed slot comes back under a new generation.
        let c = t.alloc("c");
        assert_eq!(c.slot, a.slot);
        assert_ne!(c.gen, a.gen);
        assert_eq!(t.get(a), None);
        assert_eq!(t.get(c), Some(&"c"));
        assert_eq!(t.get_slot(b.slot).map(|(s, _)| *s), Some("b"));
        assert_eq!(t.capacity(), 2);
        assert_eq!(t.peak_live(), 2);
    }

    #[test]
    fn flow_table_memory_is_bounded_by_peak_churn() {
        // Churn 10_000 flows through a table that never holds more than
        // 64 at once: capacity must equal the peak, not the total.
        let mut t = FlowTable::new();
        let mut live: Vec<FlowKey> = Vec::new();
        for i in 0..10_000u32 {
            live.push(t.alloc(i));
            if live.len() == 64 {
                // Free in an order that exercises non-trivial reuse.
                for k in live.drain(..32) {
                    assert!(t.free(k).is_some());
                }
            }
        }
        for k in live.drain(..) {
            assert!(t.free(k).is_some());
        }
        assert_eq!(t.live(), 0);
        assert_eq!(t.opened(), 10_000);
        assert_eq!(t.freed(), 10_000);
        assert_eq!(t.capacity(), t.peak_live());
        assert!(
            t.capacity() <= 64,
            "capacity {} outgrew the peak",
            t.capacity()
        );
    }
}
