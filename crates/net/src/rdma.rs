//! A StRoM-style RDMA engine over pluggable memory back-ends.
//!
//! The Fig. 8 experiment generates one-sided RDMA READ/WRITE requests
//! from a VCU118 board over 100 Gb/s Ethernet against five targets:
//!
//! * **Enzian DRAM** — the FPGA serves from its own 512 GiB DDR4;
//! * **Enzian Host** — the FPGA reaches CPU memory *coherently over ECI*
//!   ("RDMA reads and writes on Enzian traverse ECI and are therefore
//!   coherent with the CPU's L2 cache");
//! * **Alveo DRAM** — a u280 serves from card DDR4;
//! * **Alveo Host** — the u280 DMAs host memory over PCIe;
//! * **Mellanox Host** — a ConnectX-class NIC DMAs host memory.
//!
//! The engine does the real protocol bookkeeping — request/response
//! framing over the Ethernet model, segmentation at the RDMA MTU, data
//! movement against the functional stores — and derives its timing from
//! the respective back-end path.

use enzian_eci::EciSystem;
use enzian_mem::{Addr, MemoryController};
use enzian_pcie::DmaEngine;
use enzian_sim::{Duration, Time};

use crate::eth::{EthLink, Switch};

/// RDMA maximum transfer unit on the wire (payload per network frame).
pub const RDMA_MTU: u64 = 4096;
/// Request/response header bytes (BTH + RETH analogue).
pub const RDMA_HEADER: u64 = 28;

/// Where the target's memory lives and how it is reached.
#[allow(clippy::large_enum_variant)] // backends are built once per engine
pub enum RdmaBackend {
    /// FPGA-attached DRAM (Enzian or Alveo flavour).
    LocalDram {
        /// The card/FPGA memory controller.
        memory: MemoryController,
        /// Per-request pipeline latency in the serving FPGA.
        pipeline: Duration,
    },
    /// Host memory over ECI (Enzian): coherent line-granular access.
    HostViaEci(Box<EciSystem>),
    /// Host memory over a PCIe DMA engine (Alveo).
    HostViaPcie {
        /// The card's DMA engine.
        dma: DmaEngine,
        /// The host memory it targets.
        host: MemoryController,
    },
    /// Host memory behind an RDMA NIC's optimized PCIe datapath
    /// (Mellanox): fixed-cost DMA without the descriptor choreography.
    HostViaNic {
        /// The host memory controller.
        host: MemoryController,
        /// NIC processing latency per request.
        nic_latency: Duration,
        /// Sustained NIC PCIe payload bandwidth, bytes/sec.
        pcie_bytes_per_sec: f64,
    },
}

impl std::fmt::Debug for RdmaBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            RdmaBackend::LocalDram { .. } => "LocalDram",
            RdmaBackend::HostViaEci(_) => "HostViaEci",
            RdmaBackend::HostViaPcie { .. } => "HostViaPcie",
            RdmaBackend::HostViaNic { .. } => "HostViaNic",
        };
        f.write_str(name)
    }
}

/// Outcome of one RDMA operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RdmaOutcome {
    /// Bytes moved.
    pub bytes: u64,
    /// Completion time at the requester.
    pub completed: Time,
    /// Data returned (reads) or empty (writes).
    pub data: Vec<u8>,
}

impl RdmaOutcome {
    /// Latency from a given start instant.
    pub fn latency_from(&self, start: Time) -> Duration {
        self.completed.since(start)
    }
}

/// A one-sided RDMA engine: requester on side `a` of the link, target
/// (with its memory back-end) on side `b`.
#[derive(Debug)]
pub struct RdmaEngine {
    backend: RdmaBackend,
    switch: Switch,
    /// Requester-side NIC/FPGA processing per request.
    requester_overhead: Duration,
    /// Target-side stack processing per request.
    target_overhead: Duration,
}

impl RdmaEngine {
    /// Creates an engine over `backend` through a ToR switch.
    pub fn new(backend: RdmaBackend) -> Self {
        RdmaEngine {
            backend,
            switch: Switch::tor(),
            requester_overhead: Duration::from_ns(300),
            target_overhead: Duration::from_ns(350),
        }
    }

    /// The engine's backend (for inspection).
    pub fn backend(&self) -> &RdmaBackend {
        &self.backend
    }

    /// Serves the memory side of a request: returns (data, ready time).
    fn memory_read(&mut self, at: Time, addr: Addr, bytes: u64) -> (Vec<u8>, Time) {
        let mut buf = vec![0u8; bytes as usize];
        match &mut self.backend {
            RdmaBackend::LocalDram { memory, pipeline } => {
                let done = memory.read(at + *pipeline, addr, &mut buf);
                (buf, done)
            }
            RdmaBackend::HostViaEci(sys) => {
                // Coherent line-granular reads over ECI; pipelined.
                let mut done = at;
                let mut off = 0u64;
                while off < bytes {
                    let (line, t) = sys.fpga_read_line(at, addr.offset(off));
                    let n = usize::min(128, (bytes - off) as usize);
                    buf[off as usize..off as usize + n].copy_from_slice(&line[..n]);
                    done = done.max(t);
                    off += 128;
                }
                (buf, done)
            }
            RdmaBackend::HostViaPcie { dma, host } => {
                let completion = dma.host_to_card(at, bytes);
                host.store().read(addr, &mut buf);
                (buf, completion.completed)
            }
            RdmaBackend::HostViaNic {
                host,
                nic_latency,
                pcie_bytes_per_sec,
            } => {
                let xfer = Duration::from_secs_f64(bytes as f64 / *pcie_bytes_per_sec);
                host.store().read(addr, &mut buf);
                (buf, at + *nic_latency + xfer)
            }
        }
    }

    /// Serves the memory side of a write: returns commit time.
    fn memory_write(&mut self, at: Time, addr: Addr, data: &[u8]) -> Time {
        match &mut self.backend {
            RdmaBackend::LocalDram { memory, pipeline } => memory.write(at + *pipeline, addr, data),
            RdmaBackend::HostViaEci(sys) => {
                let mut done = at;
                let mut off = 0usize;
                while off < data.len() {
                    let mut line = [0u8; 128];
                    let n = usize::min(128, data.len() - off);
                    // Read-modify-write for a partial tail line.
                    if n < 128 {
                        line = sys.cpu_mem().store().read_line(addr.offset(off as u64));
                    }
                    line[..n].copy_from_slice(&data[off..off + n]);
                    let t = sys.fpga_write_line(at, addr.offset(off as u64), &line);
                    done = done.max(t);
                    off += 128;
                }
                done
            }
            RdmaBackend::HostViaPcie { dma, host } => {
                let completion = dma.card_to_host(at, data.len() as u64);
                host.store_mut().write(addr, data);
                completion.completed
            }
            RdmaBackend::HostViaNic {
                host,
                nic_latency,
                pcie_bytes_per_sec,
            } => {
                let xfer = Duration::from_secs_f64(data.len() as f64 / *pcie_bytes_per_sec);
                host.store_mut().write(addr, data);
                at + *nic_latency + xfer
            }
        }
    }

    /// One-sided RDMA READ of `bytes` at `addr`, issued at `now` from the
    /// requester. Returns the data and completion timing.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length operation.
    pub fn read(&mut self, link: &mut EthLink, now: Time, addr: Addr, bytes: u64) -> RdmaOutcome {
        assert!(bytes > 0, "zero-length RDMA read");
        let hop = self.switch.forwarding_latency();
        // Request frame: header only.
        let req_arrived = link.send_a_to_b(now + self.requester_overhead, RDMA_HEADER) + hop;
        let serve_at = req_arrived + self.target_overhead;
        let (data, data_ready) = self.memory_read(serve_at, addr, bytes);
        // Response segmented at the RDMA MTU; frames pipeline on the wire.
        let mut completed = data_ready;
        let mut off = 0u64;
        while off < bytes {
            let seg = u64::min(RDMA_MTU, bytes - off);
            completed = link.send_b_to_a(data_ready, seg + RDMA_HEADER) + hop;
            off += seg;
        }
        RdmaOutcome {
            bytes,
            completed: completed + self.requester_overhead,
            data,
        }
    }

    /// One-sided RDMA WRITE of `data` to `addr`, issued at `now`. The
    /// completion is the target's ack arriving back at the requester.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length operation.
    pub fn write(&mut self, link: &mut EthLink, now: Time, addr: Addr, data: &[u8]) -> RdmaOutcome {
        assert!(!data.is_empty(), "zero-length RDMA write");
        let hop = self.switch.forwarding_latency();
        let bytes = data.len() as u64;
        // Write data flows requester→target, segmented at the MTU.
        let mut arrived = now;
        let mut off = 0u64;
        let t0 = now + self.requester_overhead;
        while off < bytes {
            let seg = u64::min(RDMA_MTU, bytes - off);
            arrived = link.send_a_to_b(t0, seg + RDMA_HEADER) + hop;
            off += seg;
        }
        let commit = self.memory_write(arrived + self.target_overhead, addr, data);
        // Ack frame back.
        let ack = link.send_b_to_a(commit, RDMA_HEADER) + hop;
        RdmaOutcome {
            bytes,
            completed: ack + self.requester_overhead,
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eth::EthLinkConfig;
    use enzian_eci::EciSystemConfig;
    use enzian_mem::MemoryControllerConfig;
    use enzian_pcie::DmaEngineConfig;

    fn link() -> EthLink {
        EthLink::new(EthLinkConfig::hundred_gig())
    }

    fn enzian_dram() -> RdmaEngine {
        RdmaEngine::new(RdmaBackend::LocalDram {
            memory: MemoryController::new(MemoryControllerConfig::enzian_fpga()),
            pipeline: Duration::from_ns(120),
        })
    }

    fn enzian_host() -> RdmaEngine {
        RdmaEngine::new(RdmaBackend::HostViaEci(Box::new(EciSystem::new(
            EciSystemConfig::enzian(),
        ))))
    }

    fn alveo_host() -> RdmaEngine {
        RdmaEngine::new(RdmaBackend::HostViaPcie {
            dma: DmaEngine::new(DmaEngineConfig::alveo_u250()),
            host: MemoryController::new(MemoryControllerConfig::enzian_cpu()),
        })
    }

    fn mellanox_host() -> RdmaEngine {
        RdmaEngine::new(RdmaBackend::HostViaNic {
            host: MemoryController::new(MemoryControllerConfig::enzian_cpu()),
            nic_latency: Duration::from_ns(700),
            pcie_bytes_per_sec: 12.5e9,
        })
    }

    #[test]
    fn read_returns_target_data() {
        let mut e = enzian_dram();
        if let RdmaBackend::LocalDram { memory, .. } = &mut e.backend {
            memory.store_mut().write(Addr(0x100), b"remote-memory!");
        }
        let mut l = link();
        let out = e.read(&mut l, Time::ZERO, Addr(0x100), 14);
        assert_eq!(&out.data, b"remote-memory!");
    }

    #[test]
    fn write_commits_to_target_memory() {
        let mut e = enzian_host();
        let mut l = link();
        let data = vec![7u8; 300];
        let out = e.write(&mut l, Time::ZERO, Addr(0x2000), &data);
        assert!(out.completed > Time::ZERO);
        if let RdmaBackend::HostViaEci(sys) = &mut e.backend {
            let mut buf = vec![0u8; 300];
            sys.cpu_mem().store().read(Addr(0x2000), &mut buf);
            assert_eq!(buf, data);
            sys.checker().assert_clean();
        }
    }

    #[test]
    fn small_read_latencies_in_figure_envelope() {
        // Fig. 8: small reads land in the ~2-5 us regime everywhere,
        // with the PCIe host path the slowest.
        let mut engines = [
            ("enzian-dram", enzian_dram()),
            ("enzian-host", enzian_host()),
            ("alveo-host", alveo_host()),
            ("mellanox", mellanox_host()),
        ];
        let mut lat = std::collections::BTreeMap::new();
        for (name, e) in engines.iter_mut() {
            let mut l = link();
            let out = e.read(&mut l, Time::ZERO, Addr(0), 128);
            let us = out.latency_from(Time::ZERO).as_micros_f64();
            assert!((1.0..8.0).contains(&us), "{name}: {us:.2} us");
            lat.insert(*name, us);
        }
        assert!(
            lat["alveo-host"] > lat["enzian-dram"],
            "PCIe host path should be slowest: {lat:?}"
        );
    }

    #[test]
    fn enzian_dram_read_throughput_beats_host_paths() {
        // Fig. 8: "Enzian has superior throughput and latency when
        // accessing the 512 GiB of DDR4 on the FPGA side."
        let size = 16384u64;
        let n = 200;
        let mut results = std::collections::BTreeMap::new();
        for (name, mut e) in [
            ("enzian-dram", enzian_dram()),
            ("enzian-host", enzian_host()),
            ("alveo-host", alveo_host()),
        ] {
            let mut l = link();
            let mut done = Time::ZERO;
            for i in 0..n {
                let out = e.read(&mut l, Time::ZERO, Addr(i * size), size);
                done = done.max(out.completed);
            }
            let gib = (n * size) as f64 / done.as_secs_f64() / (1u64 << 30) as f64;
            results.insert(name, gib);
        }
        assert!(
            results["enzian-dram"] >= results["enzian-host"],
            "{results:?}"
        );
        assert!(
            results["enzian-dram"] > results["alveo-host"],
            "{results:?}"
        );
        // All are ultimately capped by the 100G wire (~11.6 GiB/s).
        for (&name, &gib) in &results {
            assert!(gib < 12.0, "{name} exceeded the wire: {gib:.1} GiB/s");
        }
    }

    #[test]
    fn eci_write_path_is_coherent_with_cpu_cache() {
        let mut e = enzian_host();
        let mut l = link();
        // CPU caches a line, then RDMA writes it: the L2 copy must be
        // invalidated so a subsequent CPU read sees RDMA data.
        if let RdmaBackend::HostViaEci(sys) = &mut e.backend {
            let (_, _) = sys.cpu_read_line(Time::ZERO, Addr(0x4000));
        }
        let data = vec![0xAB; 128];
        let out = e.write(
            &mut l,
            Time::ZERO + Duration::from_us(10),
            Addr(0x4000),
            &data,
        );
        if let RdmaBackend::HostViaEci(sys) = &mut e.backend {
            let (line, _) = sys.cpu_read_line(out.completed, Addr(0x4000));
            assert_eq!(line[0], 0xAB);
            sys.checker().assert_clean();
        }
    }

    #[test]
    fn large_reads_amortize_request_cost() {
        let mut e = enzian_dram();
        let mut l = link();
        let small = e.read(&mut l, Time::ZERO, Addr(0), 128);
        let t1 = small.latency_from(Time::ZERO).as_ps() as f64;
        let big = e.read(&mut l, small.completed, Addr(0), 16384);
        let t2 = big.latency_from(small.completed).as_ps() as f64;
        assert!(t2 / t1 < 16.0, "128x data cost {:.1}x the time", t2 / t1);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_read_panics() {
        let mut e = enzian_dram();
        let mut l = link();
        e.read(&mut l, Time::ZERO, Addr(0), 0);
    }
}
