//! Frame-level Ethernet links and a store-and-forward switch.

use enzian_sim::{Channel, ChannelConfig, Duration, Time};

/// Per-frame overhead on the wire: preamble+SFD (8) + MAC header (14) +
/// FCS (4) + minimum inter-packet gap (12).
pub const FRAME_OVERHEAD_BYTES: u64 = 38;

/// Static parameters of one Ethernet link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EthLinkConfig {
    /// Line rate in bits per second.
    pub bits_per_sec: u64,
    /// One-way propagation (cable + PHY).
    pub propagation: Duration,
}

impl EthLinkConfig {
    /// A 100GBASE link with a short DAC cable.
    pub fn hundred_gig() -> Self {
        EthLinkConfig {
            bits_per_sec: 100_000_000_000,
            propagation: Duration::from_ns(450),
        }
    }

    /// A 40GBASE link (the ThunderX-1 SoC NICs).
    pub fn forty_gig() -> Self {
        EthLinkConfig {
            bits_per_sec: 40_000_000_000,
            propagation: Duration::from_ns(450),
        }
    }
}

/// A full-duplex Ethernet link between two endpoints, `a` and `b`.
#[derive(Debug, Clone)]
pub struct EthLink {
    a_to_b: Channel,
    b_to_a: Channel,
}

impl EthLink {
    /// Creates an idle link.
    pub fn new(config: EthLinkConfig) -> Self {
        let ch = ChannelConfig {
            bits_per_sec: config.bits_per_sec,
            coding_efficiency: 1.0, // rate already quoted post-coding
            propagation: config.propagation,
            frame_overhead_bytes: FRAME_OVERHEAD_BYTES,
        };
        EthLink {
            a_to_b: Channel::new(ch),
            b_to_a: Channel::new(ch),
        }
    }

    /// Sends one frame of `payload` bytes from a to b; returns last-byte
    /// arrival.
    pub fn send_a_to_b(&mut self, now: Time, payload: u64) -> Time {
        self.a_to_b.send(now, payload).done
    }

    /// Sends one frame of `payload` bytes from b to a; returns last-byte
    /// arrival.
    pub fn send_b_to_a(&mut self, now: Time, payload: u64) -> Time {
        self.b_to_a.send(now, payload).done
    }

    /// Payload bytes carried a→b so far.
    pub fn bytes_a_to_b(&self) -> u64 {
        self.a_to_b.bytes_carried()
    }

    /// Payload bytes carried b→a so far.
    pub fn bytes_b_to_a(&self) -> u64 {
        self.b_to_a.bytes_carried()
    }
}

/// A store-and-forward switch hop: adds a fixed forwarding latency per
/// frame plus output-port serialization.
#[derive(Debug, Clone)]
pub struct Switch {
    forwarding: Duration,
}

impl Switch {
    /// Creates a switch with the given per-frame forwarding latency
    /// (~1 µs for the datacenter switches in the experiment).
    pub fn new(forwarding: Duration) -> Self {
        Switch { forwarding }
    }

    /// A typical 100G top-of-rack switch.
    pub fn tor() -> Self {
        Switch::new(Duration::from_us(1))
    }

    /// The added latency for one frame traversal.
    pub fn forwarding_latency(&self) -> Duration {
        self.forwarding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_gig_wire_rate() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let n = 10_000u64;
        let mtu = 2048u64;
        let mut done = Time::ZERO;
        for _ in 0..n {
            done = done.max(link.send_a_to_b(Time::ZERO, mtu));
        }
        let gb_s = (n * mtu * 8) as f64 / done.as_secs_f64() / 1e9;
        // 2048/(2048+38) of 100 Gb/s ≈ 98.2 Gb/s of payload.
        assert!((95.0..100.0).contains(&gb_s), "payload rate {gb_s:.1} Gb/s");
    }

    #[test]
    fn duplex_directions_are_independent() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let big = link.send_a_to_b(Time::ZERO, 1 << 20);
        let ack = link.send_b_to_a(Time::ZERO, 64);
        assert!(ack < big, "reverse direction blocked by forward traffic");
    }

    #[test]
    fn small_frames_pay_relatively_more() {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let n = 1000u64;
        let mut done = Time::ZERO;
        for _ in 0..n {
            done = done.max(link.send_a_to_b(Time::ZERO, 64));
        }
        let gb_s = (n * 64 * 8) as f64 / done.as_secs_f64() / 1e9;
        // 64/(64+38) ≈ 63% efficiency.
        assert!(gb_s < 70.0, "64 B frames too efficient: {gb_s:.1} Gb/s");
    }

    #[test]
    fn forty_gig_is_slower() {
        let mut h = EthLink::new(EthLinkConfig::hundred_gig());
        let mut f = EthLink::new(EthLinkConfig::forty_gig());
        let th = h.send_a_to_b(Time::ZERO, 1 << 20);
        let tf = f.send_a_to_b(Time::ZERO, 1 << 20);
        assert!(tf > th);
    }
}
