//! Conformance between the TCP model checker and the real engine.
//!
//! The bounded model ([`TcpModel`]) and the timed engine
//! ([`TcpEngine::session_traced`]) drive the *same* transition relation
//! — [`Connection::on`] — from two different harnesses. These tests pin
//! them together: the model's canonical fault-free schedule
//! ([`TcpModel::orderly_trace`]) must walk each endpoint through exactly
//! the [`ConnState`] sequence a real session walks, for every stack
//! preset. A divergence means one of the harnesses drives the FSM
//! through a path the other considers canonical — precisely the class
//! of bug a model checker that "checks a copy of the protocol" would
//! miss.

use enzian_net::eth::{EthLink, EthLinkConfig, Switch};
use enzian_net::tcp::{ConnState, TcpEngine, TcpModel, TcpModelConfig, TcpStackConfig};
use enzian_sim::{SimRng, Time};

fn payload(n: usize) -> Vec<u8> {
    let mut rng = SimRng::seed_from(42);
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

fn session_walk(cfg: TcpStackConfig) -> (Vec<ConnState>, Vec<ConnState>) {
    let mut link = EthLink::new(EthLinkConfig::hundred_gig());
    let mut engine = TcpEngine::new(cfg, cfg, Switch::tor());
    let data = payload(32 * 1024);
    let (out, _, traces) = engine.session_traced(&mut link, Time::ZERO, &data);
    assert_eq!(out, data, "session must deliver the stream intact");
    traces
}

#[test]
fn model_orderly_trace_matches_the_real_engine_walk() {
    let (model_a, model_b) = TcpModel::new(TcpModelConfig::one_way()).orderly_trace();
    let (engine_a, engine_b) = session_walk(TcpStackConfig::fpga_coyote());
    assert_eq!(
        model_a, engine_a,
        "active closer: model and engine walked different state sequences"
    );
    assert_eq!(
        model_b, engine_b,
        "passive side: model and engine walked different state sequences"
    );
    // And both walks are the RFC 793 orderly-close sequences.
    use ConnState::*;
    assert_eq!(
        engine_a,
        [
            Closed,
            SynSent,
            Established,
            FinWait1,
            FinWait2,
            TimeWait,
            Closed
        ]
    );
    assert_eq!(
        engine_b,
        [
            Closed,
            Listen,
            SynReceived,
            Established,
            CloseWait,
            LastAck,
            Closed
        ]
    );
}

#[test]
fn conformance_holds_across_stack_presets_and_model_budgets() {
    // The connection walk is protocol, not timing: every preset (each a
    // different placement of the modules across the CPU/FPGA boundary)
    // and every model budget produces the same canonical sequences.
    let reference = session_walk(TcpStackConfig::fpga_coyote());
    for cfg in [
        TcpStackConfig::linux_kernel(),
        TcpStackConfig::hybrid_offload(),
    ] {
        assert_eq!(session_walk(cfg), reference, "preset diverged: {cfg:?}");
    }
    for model in [
        TcpModelConfig::one_way(),
        TcpModelConfig::duplex(),
        TcpModelConfig::deep(),
    ] {
        assert_eq!(
            TcpModel::new(model).orderly_trace(),
            reference,
            "model budget changed the canonical walk"
        );
    }
}
