//! Randomized invariant tests for the network substrate, driven by the
//! deterministic [`SimRng`] so every failure reproduces exactly.

use enzian_mem::{Addr, MemoryController, MemoryControllerConfig};
use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::farview::{Aggregate, FarviewServer, Operator, Predicate};
use enzian_net::rdma::{RdmaBackend, RdmaEngine};
use enzian_sim::{Duration, SimRng, Time};

/// Farview push-down results equal a naive host-side computation
/// over the same rows, for arbitrary tables and predicates.
#[test]
fn farview_matches_naive() {
    let mut rng = SimRng::seed_from(0xFA2_0001);
    for _case in 0..32 {
        let n = rng.range(4, 59) as usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.next_below(100)).collect();
        let pivot = rng.next_below(100);
        let which = rng.next_below(3) as u8;

        const ROW: usize = 16; // [key u64 | value u64]
        let mut data = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            data.extend_from_slice(&k.to_le_bytes());
            data.extend_from_slice(&(i as u64).to_le_bytes());
        }
        let mut server = FarviewServer::new(
            MemoryController::new(MemoryControllerConfig::enzian_fpga()),
            Addr(0),
            ROW,
            &data,
        );
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let predicate = match which {
            0 => Predicate::Eq(pivot),
            1 => Predicate::Gt(pivot),
            _ => Predicate::Lt(pivot),
        };
        let eval = |k: u64| match predicate {
            Predicate::Eq(x) => k == x,
            Predicate::Gt(x) => k > x,
            Predicate::Lt(x) => k < x,
        };
        // Filter push-down vs naive filter.
        let r = server.scan(
            &mut link,
            Time::ZERO,
            0,
            keys.len() as u64,
            Operator::Filter {
                column_offset: 0,
                predicate,
            },
        );
        let naive: Vec<u64> = keys.iter().copied().filter(|&k| eval(k)).collect();
        assert_eq!(r.rows.len(), naive.len());
        for (row, want) in r.rows.iter().zip(&naive) {
            assert_eq!(u64::from_le_bytes(row[..8].try_into().unwrap()), *want);
        }
        // Sum aggregate vs naive sum of the value column.
        let r = server.scan(
            &mut link,
            Time::ZERO,
            0,
            keys.len() as u64,
            Operator::FilterAggregate {
                filter_offset: 0,
                predicate,
                agg_offset: 8,
                aggregate: Aggregate::Sum,
            },
        );
        let naive_sum: u64 = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| eval(k))
            .map(|(i, _)| i as u64)
            .fold(0u64, |a, v| a.wrapping_add(v));
        assert_eq!(r.scalar, Some(naive_sum));
    }
}

/// RDMA reads return exactly what writes stored, at any size and
/// offset, over the local-DRAM backend.
#[test]
fn rdma_write_read_roundtrip() {
    let mut rng = SimRng::seed_from(0xFA2_0002);
    for _case in 0..16 {
        let offset = rng.next_below(10_000);
        let len = rng.range(1, 4_999) as usize;
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        let mut engine = RdmaEngine::new(RdmaBackend::LocalDram {
            memory: MemoryController::new(MemoryControllerConfig::enzian_fpga()),
            pipeline: Duration::from_ns(120),
        });
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let w = engine.write(&mut link, Time::ZERO, Addr(offset), &data);
        let r = engine.read(&mut link, w.completed, Addr(offset), data.len() as u64);
        assert_eq!(r.data, data);
        assert!(r.completed > w.completed);
    }
}
