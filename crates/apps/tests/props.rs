//! Property tests for the workloads.

use proptest::prelude::*;

use enzian_apps::rtverify::{compile, Atom, EventKind, Formula, Monitor, TraceEvent};
use enzian_apps::vision;
use enzian_sim::Time;

/// Reference (exponential-time) semantics of past-time LTL over a trace
/// prefix ending at position `i`.
fn reference_eval(f: &Formula, trace: &[TraceEvent], i: usize) -> bool {
    fn atom(a: &Atom, ev: &TraceEvent) -> bool {
        match a {
            Atom::Is(k) => ev.kind == *k,
            Atom::AnyAcquire => matches!(ev.kind, EventKind::LockAcquire(_)),
            Atom::AnyRelease => matches!(ev.kind, EventKind::LockRelease(_)),
            Atom::OnCore(c) => ev.core == *c,
        }
    }
    match f {
        Formula::Atom(a) => atom(a, &trace[i]),
        Formula::Not(x) => !reference_eval(x, trace, i),
        Formula::And(a, b) => reference_eval(a, trace, i) && reference_eval(b, trace, i),
        Formula::Or(a, b) => reference_eval(a, trace, i) || reference_eval(b, trace, i),
        Formula::Yesterday(x) => i > 0 && reference_eval(x, trace, i - 1),
        Formula::Historically(x) => (0..=i).all(|j| reference_eval(x, trace, j)),
        Formula::Once(x) => (0..=i).any(|j| reference_eval(x, trace, j)),
        Formula::Since(a, b) => (0..=i).rev().any(|j| {
            reference_eval(b, trace, j) && ((j + 1)..=i).all(|k| reference_eval(a, trace, k))
        }),
    }
}

fn arb_event() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::IrqEnter),
        Just(EventKind::IrqExit),
        (0u16..3).prop_map(EventKind::LockAcquire),
        (0u16..3).prop_map(EventKind::LockRelease),
        Just(EventKind::ContextSwitch),
    ]
}

fn arb_formula(depth: u32) -> BoxedStrategy<Formula> {
    let atom = prop_oneof![
        arb_event().prop_map(|k| Formula::Atom(Atom::Is(k))),
        Just(Formula::Atom(Atom::AnyAcquire)),
        Just(Formula::Atom(Atom::AnyRelease)),
    ];
    if depth == 0 {
        return atom.boxed();
    }
    let sub = arb_formula(depth - 1);
    prop_oneof![
        atom,
        sub.clone().prop_map(|f| Formula::Not(Box::new(f))),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Formula::And(Box::new(a), Box::new(b))),
        (sub.clone(), sub.clone()).prop_map(|(a, b)| Formula::Or(Box::new(a), Box::new(b))),
        sub.clone().prop_map(|f| Formula::Yesterday(Box::new(f))),
        sub.clone().prop_map(|f| Formula::Historically(Box::new(f))),
        sub.clone().prop_map(|f| Formula::Once(Box::new(f))),
        (sub.clone(), sub).prop_map(|(a, b)| Formula::Since(Box::new(a), Box::new(b))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled constant-space monitor computes exactly the reference
    /// past-time LTL semantics, for arbitrary formulas and traces.
    #[test]
    fn monitor_matches_reference_semantics(
        formula in arb_formula(3),
        kinds in proptest::collection::vec(arb_event(), 1..24),
    ) {
        let trace: Vec<TraceEvent> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| TraceEvent {
                core: 0,
                at: Time::from_ps(i as u64 * 1000),
                kind,
            })
            .collect();
        let mut monitor = Monitor::new(compile(&formula));
        for i in 0..trace.len() {
            let violated = monitor.step(&trace[i]).is_some();
            let expected = reference_eval(&formula, &trace, i);
            prop_assert_eq!(!violated, expected, "event {} of {:?}", i, trace[i].kind);
        }
    }

    /// Quantise/dequantise round-trips within one nibble for arbitrary
    /// luminance planes, and packing halves the size.
    #[test]
    fn quantisation_bounds(luma in proptest::collection::vec(any::<u8>(), 1..500)) {
        let packed = vision::quantize_4bpp(&luma);
        prop_assert_eq!(packed.len(), luma.len().div_ceil(2));
        let back = vision::dequantize_4bpp(&packed, luma.len());
        prop_assert_eq!(back.len(), luma.len());
        for (orig, rec) in luma.iter().zip(&back) {
            prop_assert!((i16::from(*orig) - i16::from(*rec)).unsigned_abs() <= 16);
        }
    }

    /// The blur never brightens beyond the plane's maximum or darkens
    /// below its minimum (a convex-combination filter).
    #[test]
    fn blur_is_bounded_by_extremes(
        w in 1usize..24, h in 1usize..24,
        seed in any::<u64>(),
    ) {
        let frame = vision::Frame::synthetic(seed, w, h);
        let luma = vision::rgba_to_luma(&frame);
        let lo = *luma.iter().min().unwrap();
        let hi = *luma.iter().max().unwrap();
        let out = vision::blur3x3(&luma, w, h);
        for &px in &out {
            prop_assert!(px >= lo.saturating_sub(1) && px <= hi);
        }
    }
}
