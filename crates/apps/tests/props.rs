//! Randomized invariant tests for the workloads, driven by the
//! deterministic [`SimRng`] so every failure reproduces exactly.

use enzian_apps::rtverify::{compile, Atom, EventKind, Formula, Monitor, TraceEvent};
use enzian_apps::vision;
use enzian_sim::{SimRng, Time};

/// Reference (exponential-time) semantics of past-time LTL over a trace
/// prefix ending at position `i`.
fn reference_eval(f: &Formula, trace: &[TraceEvent], i: usize) -> bool {
    fn atom(a: &Atom, ev: &TraceEvent) -> bool {
        match a {
            Atom::Is(k) => ev.kind == *k,
            Atom::AnyAcquire => matches!(ev.kind, EventKind::LockAcquire(_)),
            Atom::AnyRelease => matches!(ev.kind, EventKind::LockRelease(_)),
            Atom::OnCore(c) => ev.core == *c,
        }
    }
    match f {
        Formula::Atom(a) => atom(a, &trace[i]),
        Formula::Not(x) => !reference_eval(x, trace, i),
        Formula::And(a, b) => reference_eval(a, trace, i) && reference_eval(b, trace, i),
        Formula::Or(a, b) => reference_eval(a, trace, i) || reference_eval(b, trace, i),
        Formula::Yesterday(x) => i > 0 && reference_eval(x, trace, i - 1),
        Formula::Historically(x) => (0..=i).all(|j| reference_eval(x, trace, j)),
        Formula::Once(x) => (0..=i).any(|j| reference_eval(x, trace, j)),
        Formula::Since(a, b) => (0..=i).rev().any(|j| {
            reference_eval(b, trace, j) && ((j + 1)..=i).all(|k| reference_eval(a, trace, k))
        }),
    }
}

fn random_event(rng: &mut SimRng) -> EventKind {
    match rng.next_below(5) {
        0 => EventKind::IrqEnter,
        1 => EventKind::IrqExit,
        2 => EventKind::LockAcquire(rng.next_below(3) as u16),
        3 => EventKind::LockRelease(rng.next_below(3) as u16),
        _ => EventKind::ContextSwitch,
    }
}

fn random_atom(rng: &mut SimRng) -> Formula {
    match rng.next_below(3) {
        0 => Formula::Atom(Atom::Is(random_event(rng))),
        1 => Formula::Atom(Atom::AnyAcquire),
        _ => Formula::Atom(Atom::AnyRelease),
    }
}

fn random_formula(rng: &mut SimRng, depth: u32) -> Formula {
    if depth == 0 {
        return random_atom(rng);
    }
    match rng.next_below(8) {
        0 => random_atom(rng),
        1 => Formula::Not(Box::new(random_formula(rng, depth - 1))),
        2 => Formula::And(
            Box::new(random_formula(rng, depth - 1)),
            Box::new(random_formula(rng, depth - 1)),
        ),
        3 => Formula::Or(
            Box::new(random_formula(rng, depth - 1)),
            Box::new(random_formula(rng, depth - 1)),
        ),
        4 => Formula::Yesterday(Box::new(random_formula(rng, depth - 1))),
        5 => Formula::Historically(Box::new(random_formula(rng, depth - 1))),
        6 => Formula::Once(Box::new(random_formula(rng, depth - 1))),
        _ => Formula::Since(
            Box::new(random_formula(rng, depth - 1)),
            Box::new(random_formula(rng, depth - 1)),
        ),
    }
}

/// The compiled constant-space monitor computes exactly the reference
/// past-time LTL semantics, for arbitrary formulas and traces.
#[test]
fn monitor_matches_reference_semantics() {
    let mut rng = SimRng::seed_from(0xA55_0001);
    for _case in 0..64 {
        let formula = random_formula(&mut rng, 3);
        let n = rng.range(1, 23) as usize;
        let trace: Vec<TraceEvent> = (0..n)
            .map(|i| TraceEvent {
                core: 0,
                at: Time::from_ps(i as u64 * 1000),
                kind: random_event(&mut rng),
            })
            .collect();
        let mut monitor = Monitor::new(compile(&formula));
        for i in 0..trace.len() {
            let violated = monitor.step(&trace[i]).is_some();
            let expected = reference_eval(&formula, &trace, i);
            assert_eq!(!violated, expected, "event {} of {:?}", i, trace[i].kind);
        }
    }
}

/// Quantise/dequantise round-trips within one nibble for arbitrary
/// luminance planes, and packing halves the size.
#[test]
fn quantisation_bounds() {
    let mut rng = SimRng::seed_from(0xA55_0002);
    for _case in 0..64 {
        let n = rng.range(1, 499) as usize;
        let mut luma = vec![0u8; n];
        rng.fill_bytes(&mut luma);
        let packed = vision::quantize_4bpp(&luma);
        assert_eq!(packed.len(), luma.len().div_ceil(2));
        let back = vision::dequantize_4bpp(&packed, luma.len());
        assert_eq!(back.len(), luma.len());
        for (orig, rec) in luma.iter().zip(&back) {
            assert!((i16::from(*orig) - i16::from(*rec)).unsigned_abs() <= 16);
        }
    }
}

/// The blur never brightens beyond the plane's maximum or darkens
/// below its minimum (a convex-combination filter).
#[test]
fn blur_is_bounded_by_extremes() {
    let mut rng = SimRng::seed_from(0xA55_0003);
    for _case in 0..64 {
        let w = rng.range(1, 23) as usize;
        let h = rng.range(1, 23) as usize;
        let seed = rng.next_u64();
        let frame = vision::Frame::synthetic(seed, w, h);
        let luma = vision::rgba_to_luma(&frame);
        let lo = *luma.iter().min().unwrap();
        let hi = *luma.iter().max().unwrap();
        let out = vision::blur3x3(&luma, w, h);
        for &px in &out {
            assert!(px >= lo.saturating_sub(1) && px <= hi);
        }
    }
}
