//! The §5.4 machine-vision kernels.
//!
//! Input frames are "uncompressed 1024×576 RGB video frames with 8 bits
//! per channel pixels padded to 32 bits". The pipeline performs an RGB →
//! luminance conversion (RGB2Y) followed by a 3×3 Gaussian blur with
//! "roughly 5× the arithmetic intensity of the conversion"; the offloaded
//! variant additionally quantises luminance to 4 bits per pixel. All
//! kernels here are integer-exact so the offloaded and software paths can
//! be compared bit-for-bit.

use enzian_sim::SimRng;

/// Paper frame width.
pub const FRAME_WIDTH: usize = 1024;
/// Paper frame height.
pub const FRAME_HEIGHT: usize = 576;

/// An RGBA8888 frame (8-bit channels padded to 32 bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major RGBA pixels, 4 bytes each.
    pub rgba: Vec<u8>,
}

impl Frame {
    /// Generates a deterministic synthetic video frame: smooth gradients
    /// plus pseudo-random texture (compressible like natural video but
    /// not degenerate).
    pub fn synthetic(seed: u64, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "empty frame");
        let mut rng = SimRng::seed_from(seed);
        let mut rgba = Vec::with_capacity(width * height * 4);
        for y in 0..height {
            for x in 0..width {
                let noise = (rng.next_u64() & 0x1F) as u8;
                let r = ((x * 255 / width) as u8).wrapping_add(noise);
                let g = ((y * 255 / height) as u8).wrapping_add(noise / 2);
                let b = (((x + y) * 127 / (width + height)) as u8).wrapping_add(noise / 4);
                rgba.extend_from_slice(&[r, g, b, 0]);
            }
        }
        Frame {
            width,
            height,
            rgba,
        }
    }

    /// The paper's 1024×576 frame.
    pub fn paper_sized(seed: u64) -> Self {
        Frame::synthetic(seed, FRAME_WIDTH, FRAME_HEIGHT)
    }

    /// Number of pixels.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Raw frame size in bytes (32 bpp).
    pub fn bytes(&self) -> usize {
        self.rgba.len()
    }
}

/// Converts one RGBA pixel to 8-bit luminance using the BT.601 integer
/// approximation `(77 R + 150 G + 29 B) >> 8` — the same arithmetic the
/// FPGA engine implements, so results match exactly.
pub fn pixel_to_luma(r: u8, g: u8, b: u8) -> u8 {
    ((77 * u32::from(r) + 150 * u32::from(g) + 29 * u32::from(b)) >> 8) as u8
}

/// RGB2Y over a whole frame: one luminance byte per pixel.
pub fn rgba_to_luma(frame: &Frame) -> Vec<u8> {
    frame
        .rgba
        .chunks_exact(4)
        .map(|px| pixel_to_luma(px[0], px[1], px[2]))
        .collect()
}

/// Quantises 8-bit luminance to 4 bits per pixel, packing two pixels per
/// byte (even pixel in the low nibble).
pub fn quantize_4bpp(luma: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(luma.len().div_ceil(2));
    for pair in luma.chunks(2) {
        let lo = pair[0] >> 4;
        let hi = pair.get(1).map_or(0, |&p| p >> 4);
        out.push(lo | (hi << 4));
    }
    out
}

/// Unpacks 4-bit luminance back to 8 bits (nibble replicated, the
/// standard inverse).
pub fn dequantize_4bpp(packed: &[u8], pixels: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(pixels);
    for &b in packed {
        out.push((b & 0x0F) << 4 | (b & 0x0F));
        if out.len() < pixels {
            out.push((b >> 4) << 4 | (b >> 4));
        }
        if out.len() >= pixels {
            break;
        }
    }
    out.truncate(pixels);
    out
}

/// 3×3 Gaussian blur (kernel 1-2-1 / 2-4-2 / 1-2-1, divisor 16) over a
/// luminance plane, with edge clamping.
pub fn blur3x3(luma: &[u8], width: usize, height: usize) -> Vec<u8> {
    assert_eq!(luma.len(), width * height, "plane size mismatch");
    let mut out = vec![0u8; luma.len()];
    let at = |x: isize, y: isize| -> u32 {
        let xc = x.clamp(0, width as isize - 1) as usize;
        let yc = y.clamp(0, height as isize - 1) as usize;
        u32::from(luma[yc * width + xc])
    };
    for y in 0..height as isize {
        for x in 0..width as isize {
            let sum = at(x - 1, y - 1)
                + 2 * at(x, y - 1)
                + at(x + 1, y - 1)
                + 2 * at(x - 1, y)
                + 4 * at(x, y)
                + 2 * at(x + 1, y)
                + at(x - 1, y + 1)
                + 2 * at(x, y + 1)
                + at(x + 1, y + 1);
            out[y as usize * width + x as usize] = (sum / 16) as u8;
        }
    }
    out
}

/// Per-pixel cost profiles for the kernels.
///
/// `*_OPS` count arithmetic operations per pixel — the blur's ~20 ops
/// (nine weighted taps plus normalisation) are roughly 5× the
/// conversion's 4 (three multiplies and a shift), the §5.4 "arithmetic
/// intensity" claim. `*_CYCLES` are measured in-order ThunderX-1 cycles
/// per pixel at 2 GHz, which include address generation and limited
/// dual-issue, and drive the Fig. 11 timing model.
pub mod cost {
    /// Soft RGB2Y arithmetic operations per pixel.
    pub const RGB2Y_OPS: f64 = 4.0;
    /// 3×3 blur arithmetic operations per pixel.
    pub const BLUR_OPS: f64 = 20.0;
    /// Soft RGB2Y cycles per pixel.
    pub const RGB2Y_CYCLES: f64 = 17.3;
    /// 3×3 blur cycles per pixel.
    pub const BLUR_CYCLES: f64 = 43.3;
    /// Unpacking 8-bit luminance from a packed line (trivial).
    pub const UNPACK_8BPP_CYCLES: f64 = 0.0;
    /// Unpacking 4-bit luminance (shift/mask per pixel).
    pub const UNPACK_4BPP_CYCLES: f64 = 2.1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_known_values() {
        assert_eq!(pixel_to_luma(0, 0, 0), 0);
        assert_eq!(pixel_to_luma(255, 255, 255), 255);
        // Pure green dominates the weights.
        assert!(pixel_to_luma(0, 255, 0) > pixel_to_luma(255, 0, 0));
        assert!(pixel_to_luma(255, 0, 0) > pixel_to_luma(0, 0, 255));
    }

    #[test]
    fn frame_geometry() {
        let f = Frame::paper_sized(1);
        assert_eq!(f.pixels(), 1024 * 576);
        assert_eq!(f.bytes(), 1024 * 576 * 4);
        let luma = rgba_to_luma(&f);
        assert_eq!(luma.len(), f.pixels());
    }

    #[test]
    fn quantization_packs_two_pixels_per_byte() {
        let luma = vec![0x12, 0xE7, 0xFF];
        let q = quantize_4bpp(&luma);
        assert_eq!(q, vec![0x01 | (0x0E << 4), 0x0F]);
        let back = dequantize_4bpp(&q, 3);
        assert_eq!(back, vec![0x11, 0xEE, 0xFF]);
    }

    #[test]
    fn quantization_error_bounded_by_one_nibble() {
        let f = Frame::synthetic(2, 64, 64);
        let luma = rgba_to_luma(&f);
        let q = quantize_4bpp(&luma);
        let back = dequantize_4bpp(&q, luma.len());
        for (orig, rec) in luma.iter().zip(&back) {
            assert!((i16::from(*orig) - i16::from(*rec)).unsigned_abs() <= 16);
        }
    }

    #[test]
    fn blur_preserves_constant_planes() {
        let plane = vec![100u8; 16 * 16];
        assert_eq!(blur3x3(&plane, 16, 16), plane);
    }

    #[test]
    fn blur_smooths_an_impulse() {
        let mut plane = vec![0u8; 9 * 9];
        plane[4 * 9 + 4] = 160;
        let out = blur3x3(&plane, 9, 9);
        assert_eq!(out[4 * 9 + 4], 40); // 160 * 4/16
        assert_eq!(out[4 * 9 + 3], 20); // 160 * 2/16
        assert_eq!(out[3 * 9 + 3], 10); // 160 * 1/16
        assert_eq!(out[0], 0);
    }

    #[test]
    fn blur_is_deterministic_and_bounded() {
        let f = Frame::synthetic(3, 128, 64);
        let luma = rgba_to_luma(&f);
        let a = blur3x3(&luma, 128, 64);
        let b = blur3x3(&luma, 128, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn arithmetic_intensity_ratio() {
        // §5.4: the blur has roughly 5x the conversion's intensity.
        let ratio = cost::BLUR_OPS / cost::RGB2Y_OPS;
        assert!((4.5..5.5).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    #[should_panic(expected = "plane size mismatch")]
    fn blur_rejects_wrong_dimensions() {
        blur3x3(&[0u8; 10], 4, 4);
    }
}
