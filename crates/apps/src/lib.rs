//! Evaluation workloads for the Enzian platform reproduction.
//!
//! Each module pairs a *real* computation (so results can be verified
//! bit-for-bit) with the timing model of its hardware incarnation:
//!
//! * [`gbdt`] — gradient-boosted decision-tree ensemble inference
//!   (Owaida et al. [52, 53]), the §5.3 accelerator workload, with the
//!   double-buffered offload pipeline timing of Fig. 9;
//! * [`vision`] — the §5.4 machine-vision kernels: RGB→luminance
//!   conversion, 4-bit quantisation, and a 3×3 Gaussian blur with ~5× the
//!   conversion's arithmetic intensity;
//! * [`reduction`] — the Fig. 10 coherent data-reduction pipeline: the
//!   FPGA-side engine that turns an L2 refill request into a DRAM burst,
//!   reduces it, and answers with a packed cache line;
//! * [`stress`] — the §5.5 FPGA power-burn schedule (1/24-area steps of
//!   toggling flip-flops) and the staged diagnostic workload of Fig. 12;
//! * [`rtverify`] — the §6 runtime-verification use-case: past-time LTL
//!   assertions compiled to constant-space monitors over program-trace
//!   events, evaluated entirely on the FPGA ("zero overhead");
//! * [`kvs`] — the hardware-accelerated key-value store use-case
//!   (KV-Direct style): a cuckoo-hashed store in FPGA DRAM served at
//!   line rate;
//! * [`service`] — the replicated KV *service* built on [`kvs`]: shard
//!   placement, primary-backup replication with epoch fencing, retrying
//!   clients with typed errors, and SLO telemetry (the state machines
//!   the platform crate runs across a simulated multi-board cluster).

pub mod gbdt;
pub mod kvs;
pub mod reduction;
pub mod rtverify;
pub mod service;
pub mod stress;
pub mod vision;

pub use gbdt::{AcceleratorConfig, Ensemble, GbdtAccelerator, Tuple};
pub use kvs::{KvStats, KvStore, KvStoreConfig};
pub use reduction::{ReductionEngine, ReductionMode};
pub use rtverify::{Formula, Monitor, TraceEvent};
pub use service::{
    decode_svc, encode_svc, verify_log, Applied, ClientPlan, ClientState, KvOp, KvResult, LogEntry,
    OpClass, PendingReq, Replica, RespErr, RespOk, RetryDecision, Role, ShardMap, SloRecorder,
    SvcError, SvcPayload, SvcWireError,
};
pub use stress::{StressPhase, StressSchedule};
pub use vision::{blur3x3, quantize_4bpp, rgba_to_luma, Frame};
