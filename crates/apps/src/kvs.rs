//! A hardware-accelerated key-value store in FPGA DRAM (§6 / KV-Direct).
//!
//! The paper cites KV-Direct \[40\] as a use-case Enzian subsumes: the
//! FPGA terminates the network and serves GET/PUT directly from its own
//! DRAM, with the CPU out of the datapath. This module implements the
//! store itself: a two-choice cuckoo hash table laid out in FPGA memory
//! at one 128-byte cache line per slot group, with all accesses going
//! through the [`MemoryController`] (so both the *data* and the *timing*
//! are real).
//!
//! Entry layout within a 128-byte bucket line (4 slots of 32 bytes):
//!
//! ```text
//! slot := [ key: 8 B | vlen: 1 B | value: 23 B ]   (vlen 0 = empty)
//! ```

use enzian_mem::{Addr, MemoryController, Op};
use enzian_sim::{Duration, Time};

/// Bytes per slot.
const SLOT_BYTES: usize = 32;
/// Slots per 128-byte bucket line.
const SLOTS_PER_BUCKET: usize = 4;
/// Maximum value length (slot minus key and length byte).
pub const MAX_VALUE_BYTES: usize = SLOT_BYTES - 8 - 1;

/// Static store configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvStoreConfig {
    /// Number of 128-byte buckets (power of two).
    pub buckets: u64,
    /// Base address of the table in FPGA DRAM.
    pub base: Addr,
    /// Maximum cuckoo displacement chain before declaring full.
    pub max_kicks: u32,
    /// FPGA pipeline latency per request (hashing + slot scan).
    pub pipeline: Duration,
}

impl KvStoreConfig {
    /// A 1 Mi-bucket table (4 Mi slots, 128 MiB of DRAM).
    pub fn large() -> Self {
        KvStoreConfig {
            buckets: 1 << 20,
            base: Addr(0),
            max_kicks: 32,
            pipeline: Duration::from_ns(50),
        }
    }

    /// A tiny table for tests.
    pub fn tiny() -> Self {
        KvStoreConfig {
            buckets: 16,
            base: Addr(0),
            max_kicks: 16,
            pipeline: Duration::from_ns(50),
        }
    }
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The value exceeds [`MAX_VALUE_BYTES`].
    ValueTooLarge {
        /// Offending length.
        len: usize,
    },
    /// Insertion failed after the maximum cuckoo displacement chain.
    TableFull,
    /// Keys of zero are reserved as the empty marker.
    ReservedKey,
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::ValueTooLarge { len } => {
                write!(f, "value of {len} bytes exceeds {MAX_VALUE_BYTES}")
            }
            KvError::TableFull => write!(f, "cuckoo displacement limit reached"),
            KvError::ReservedKey => write!(f, "key 0 is reserved"),
        }
    }
}

impl std::error::Error for KvError {}

/// Operation counters served by a [`KvStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// GET operations served.
    pub gets: u64,
    /// PUT operations served (successful inserts and overwrites).
    pub puts: u64,
    /// DELETE operations served.
    pub deletes: u64,
    /// Cuckoo displacement steps performed across all PUTs.
    pub kicks: u64,
}

/// A timed operation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvOutcome<T> {
    /// The functional result.
    pub value: T,
    /// Completion time at the FPGA.
    pub done: Time,
}

/// The store: a cuckoo hash table over an FPGA memory controller.
#[derive(Debug)]
pub struct KvStore {
    config: KvStoreConfig,
    mem: MemoryController,
    entries: u64,
    stats: KvStats,
}

fn mix(key: u64, salt: u64) -> u64 {
    // SplitMix64-style avalanche, salted per hash function.
    let mut z = key ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KvStore {
    /// Creates an empty store over `mem`.
    ///
    /// # Panics
    ///
    /// Panics unless `buckets` is a power of two ≥ 2.
    pub fn new(config: KvStoreConfig, mem: MemoryController) -> Self {
        assert!(
            config.buckets >= 2 && config.buckets.is_power_of_two(),
            "buckets must be a power of two"
        );
        KvStore {
            config,
            mem,
            entries: 0,
            stats: KvStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Operation counters served so far.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    fn bucket_addr(&self, bucket: u64) -> Addr {
        self.config
            .base
            .offset((bucket & (self.config.buckets - 1)) * 128)
    }

    fn buckets_of(&self, key: u64) -> (u64, u64) {
        let b1 = mix(key, 0x9E37_79B9_7F4A_7C15);
        let mut b2 = mix(key, 0xC2B2_AE3D_27D4_EB4F);
        if (b1 & (self.config.buckets - 1)) == (b2 & (self.config.buckets - 1)) {
            b2 = b2.wrapping_add(1);
        }
        (b1, b2)
    }

    fn read_bucket(&mut self, now: Time, bucket: u64) -> ([u8; 128], Time) {
        let addr = self.bucket_addr(bucket);
        let done = self.mem.request(now, addr, 128, Op::Read);
        (self.mem.store().read_line(addr), done)
    }

    fn write_bucket(&mut self, now: Time, bucket: u64, line: &[u8; 128]) -> Time {
        let addr = self.bucket_addr(bucket);
        self.mem.store_mut().write_line(addr, line);
        self.mem.request(now, addr, 128, Op::Write)
    }

    fn slot_key(line: &[u8; 128], slot: usize) -> u64 {
        let off = slot * SLOT_BYTES;
        u64::from_le_bytes(line[off..off + 8].try_into().expect("8 bytes"))
    }

    fn slot_value(line: &[u8; 128], slot: usize) -> Option<Vec<u8>> {
        let off = slot * SLOT_BYTES;
        let vlen = line[off + 8] as usize;
        if vlen == 0 {
            return None;
        }
        Some(line[off + 9..off + 9 + vlen].to_vec())
    }

    fn set_slot(line: &mut [u8; 128], slot: usize, key: u64, value: &[u8]) {
        let off = slot * SLOT_BYTES;
        line[off..off + 8].copy_from_slice(&key.to_le_bytes());
        line[off + 8] = value.len() as u8;
        line[off + 9..off + SLOT_BYTES].fill(0);
        line[off + 9..off + 9 + value.len()].copy_from_slice(value);
    }

    fn clear_slot(line: &mut [u8; 128], slot: usize) {
        let off = slot * SLOT_BYTES;
        line[off..off + SLOT_BYTES].fill(0);
    }

    /// Looks `key` up; both candidate buckets are probed (in parallel on
    /// the hardware; we charge both DRAM reads).
    pub fn get(&mut self, now: Time, key: u64) -> KvOutcome<Option<Vec<u8>>> {
        self.stats.gets += 1;
        let t0 = now + self.config.pipeline;
        let (b1, b2) = self.buckets_of(key);
        let (l1, d1) = self.read_bucket(t0, b1);
        let (l2, d2) = self.read_bucket(t0, b2);
        let done = d1.max(d2);
        for line in [&l1, &l2] {
            for slot in 0..SLOTS_PER_BUCKET {
                if Self::slot_key(line, slot) == key {
                    if let Some(v) = Self::slot_value(line, slot) {
                        return KvOutcome {
                            value: Some(v),
                            done,
                        };
                    }
                }
            }
        }
        KvOutcome { value: None, done }
    }

    /// Inserts or overwrites `key`. Displaces entries cuckoo-style when
    /// both buckets are full.
    ///
    /// # Errors
    ///
    /// Fails on oversized values, the reserved key 0, or when the
    /// displacement chain exceeds the configured limit.
    pub fn put(&mut self, now: Time, key: u64, value: &[u8]) -> Result<KvOutcome<()>, KvError> {
        if value.len() > MAX_VALUE_BYTES {
            return Err(KvError::ValueTooLarge { len: value.len() });
        }
        if key == 0 {
            return Err(KvError::ReservedKey);
        }
        self.stats.puts += 1;
        let mut t = now + self.config.pipeline;

        // Overwrite or free-slot fast path over both buckets.
        let (b1, b2) = self.buckets_of(key);
        for bucket in [b1, b2] {
            let (mut line, d) = self.read_bucket(t, bucket);
            t = d;
            // First a matching key, then any empty slot.
            let mut target = None;
            for slot in 0..SLOTS_PER_BUCKET {
                if Self::slot_key(&line, slot) == key && line[slot * SLOT_BYTES + 8] != 0 {
                    target = Some((slot, false));
                    break;
                }
            }
            if target.is_none() {
                for slot in 0..SLOTS_PER_BUCKET {
                    if line[slot * SLOT_BYTES + 8] == 0 {
                        target = Some((slot, true));
                        break;
                    }
                }
            }
            if let Some((slot, fresh)) = target {
                Self::set_slot(&mut line, slot, key, value);
                let done = self.write_bucket(t, bucket, &line);
                if fresh {
                    self.entries += 1;
                }
                return Ok(KvOutcome { value: (), done });
            }
        }

        // Cuckoo path: displace a victim from the first bucket.
        let mut key = key;
        let mut value = value.to_vec();
        let mut bucket = b1;
        for kick in 0..self.config.max_kicks {
            let (mut line, d) = self.read_bucket(t, bucket);
            t = d;
            // Evict the slot indexed by the kick counter (deterministic).
            let victim = (kick as usize) % SLOTS_PER_BUCKET;
            let v_key = Self::slot_key(&line, victim);
            let v_val = Self::slot_value(&line, victim).unwrap_or_default();
            Self::set_slot(&mut line, victim, key, &value);
            t = self.write_bucket(t, bucket, &line);
            self.stats.kicks += 1;

            // Re-home the victim in its alternate bucket.
            let (vb1, vb2) = self.buckets_of(v_key);
            let v_alt = if (vb1 & (self.config.buckets - 1)) == (bucket & (self.config.buckets - 1))
            {
                vb2
            } else {
                vb1
            };
            let (mut alt, d) = self.read_bucket(t, v_alt);
            t = d;
            for slot in 0..SLOTS_PER_BUCKET {
                if alt[slot * SLOT_BYTES + 8] == 0 {
                    Self::set_slot(&mut alt, slot, v_key, &v_val);
                    let done = self.write_bucket(t, v_alt, &alt);
                    self.entries += 1;
                    return Ok(KvOutcome { value: (), done });
                }
            }
            // Alternate bucket also full: continue displacing from there.
            key = v_key;
            value = v_val;
            bucket = v_alt;
        }
        Err(KvError::TableFull)
    }

    /// Deletes `key`; returns whether it was present.
    pub fn delete(&mut self, now: Time, key: u64) -> KvOutcome<bool> {
        self.stats.deletes += 1;
        let t0 = now + self.config.pipeline;
        let (b1, b2) = self.buckets_of(key);
        let mut t = t0;
        for bucket in [b1, b2] {
            let (mut line, d) = self.read_bucket(t, bucket);
            t = d;
            for slot in 0..SLOTS_PER_BUCKET {
                if Self::slot_key(&line, slot) == key && line[slot * SLOT_BYTES + 8] != 0 {
                    Self::clear_slot(&mut line, slot);
                    let done = self.write_bucket(t, bucket, &line);
                    self.entries -= 1;
                    return KvOutcome { value: true, done };
                }
            }
        }
        KvOutcome {
            value: false,
            done: t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enzian_mem::MemoryControllerConfig;
    use enzian_sim::SimRng;

    fn store(cfg: KvStoreConfig) -> KvStore {
        KvStore::new(
            cfg,
            MemoryController::new(MemoryControllerConfig::enzian_fpga()),
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let mut kv = store(KvStoreConfig::tiny());
        let r = kv.put(Time::ZERO, 42, b"hello-enzian").unwrap();
        let g = kv.get(r.done, 42);
        assert_eq!(g.value.as_deref(), Some(&b"hello-enzian"[..]));
        assert_eq!(kv.len(), 1);
        assert!(g.done > r.done, "get consumed DRAM time");
    }

    #[test]
    fn missing_key_returns_none() {
        let mut kv = store(KvStoreConfig::tiny());
        assert_eq!(kv.get(Time::ZERO, 7).value, None);
    }

    #[test]
    fn overwrite_replaces_value_without_growing() {
        let mut kv = store(KvStoreConfig::tiny());
        kv.put(Time::ZERO, 5, b"one").unwrap();
        kv.put(Time::ZERO, 5, b"two").unwrap();
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.get(Time::ZERO, 5).value.as_deref(), Some(&b"two"[..]));
    }

    #[test]
    fn delete_removes_and_reports() {
        let mut kv = store(KvStoreConfig::tiny());
        kv.put(Time::ZERO, 9, b"x").unwrap();
        assert!(kv.delete(Time::ZERO, 9).value);
        assert!(!kv.delete(Time::ZERO, 9).value);
        assert_eq!(kv.get(Time::ZERO, 9).value, None);
        assert!(kv.is_empty());
    }

    #[test]
    fn stats_name_every_op_class() {
        let mut kv = store(KvStoreConfig::tiny());
        kv.put(Time::ZERO, 3, b"v").unwrap();
        kv.get(Time::ZERO, 3);
        kv.get(Time::ZERO, 4);
        kv.delete(Time::ZERO, 3);
        assert_eq!(
            kv.stats(),
            KvStats {
                gets: 2,
                puts: 1,
                deletes: 1,
                kicks: 0,
            }
        );
    }

    #[test]
    fn validation_errors() {
        let mut kv = store(KvStoreConfig::tiny());
        assert_eq!(
            kv.put(Time::ZERO, 1, &[0u8; MAX_VALUE_BYTES + 1]),
            Err(KvError::ValueTooLarge {
                len: MAX_VALUE_BYTES + 1
            })
        );
        assert_eq!(kv.put(Time::ZERO, 0, b"x"), Err(KvError::ReservedKey));
    }

    #[test]
    fn thousands_of_keys_survive_cuckoo_displacement() {
        let mut kv = store(KvStoreConfig {
            buckets: 1 << 12,
            ..KvStoreConfig::tiny()
        });
        // Fill to ~60% of 16k slots.
        let n = 10_000u64;
        let mut t = Time::ZERO;
        for i in 1..=n {
            let v = i.to_le_bytes();
            t = kv.put(t, i, &v).expect("insert").done;
        }
        assert_eq!(kv.len(), n);
        let stats = kv.stats();
        assert!(stats.kicks > 0, "no cuckoo displacements at 60% load");
        assert_eq!(stats.puts, n);
        // Every key reads back its own value.
        for i in 1..=n {
            let got = kv.get(t, i).value.expect("present");
            assert_eq!(got, i.to_le_bytes());
        }
    }

    #[test]
    fn table_full_is_detected_not_looped() {
        let mut kv = store(KvStoreConfig {
            buckets: 2,
            max_kicks: 8,
            ..KvStoreConfig::tiny()
        });
        // 2 buckets x 4 slots = 8 slots; the 9th insert must fail.
        let mut inserted = 0;
        let mut full = false;
        for i in 1..=32u64 {
            match kv.put(Time::ZERO, i, b"v") {
                Ok(_) => inserted += 1,
                Err(KvError::TableFull) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(full, "table never reported full");
        assert!(inserted <= 8);
        assert_eq!(kv.len(), inserted);
    }

    #[test]
    fn random_workload_matches_reference_map() {
        let mut kv = store(KvStoreConfig {
            buckets: 1 << 10,
            ..KvStoreConfig::tiny()
        });
        let mut reference = std::collections::HashMap::new();
        let mut rng = SimRng::seed_from(99);
        let mut t = Time::ZERO;
        for _ in 0..5_000 {
            let key = rng.range(1, 500);
            match rng.next_below(3) {
                0 => {
                    let mut v = vec![0u8; rng.range(1, 23) as usize];
                    rng.fill_bytes(&mut v);
                    t = kv.put(t, key, &v).expect("put").done;
                    reference.insert(key, v);
                }
                1 => {
                    let out = kv.delete(t, key);
                    t = out.done;
                    assert_eq!(out.value, reference.remove(&key).is_some());
                }
                _ => {
                    let out = kv.get(t, key);
                    t = out.done;
                    assert_eq!(out.value.as_ref(), reference.get(&key));
                }
            }
        }
        assert_eq!(kv.len() as usize, reference.len());
    }

    #[test]
    fn get_latency_is_two_parallel_dram_reads() {
        let mut kv = store(KvStoreConfig::large());
        kv.put(Time::ZERO, 77, b"payload").unwrap();
        let t0 = Time::ZERO + Duration::from_us(10);
        let out = kv.get(t0, 77);
        let lat = out.done.since(t0);
        // Pipeline (50 ns) + one row-miss DRAM access (~30-60 ns): well
        // under a microsecond, far beyond a CPU-mediated path.
        assert!(
            lat < Duration::from_ns(500),
            "GET latency {lat} implausibly high"
        );
    }
}
