//! The Fig. 10 coherent data-reduction pipeline.
//!
//! The offload engine "interacts with the raw coherence protocol packet
//! interfaces, receiving refill requests from the CPU's L2 cache which it
//! transforms into larger sequential burst reads from DRAM. The burst
//! data is then fed to the data reduction module, which performs an RGB
//! to luminance conversion and optionally quantizes to 4 bits per pixel,
//! packing the result into a single cache line which is then returned to
//! the CPU … The pipeline is thus invisible to the CPU beyond an increase
//! in latency."
//!
//! [`ReductionEngine`] implements exactly that: given the index of a
//! *logical* luminance cache line, it issues the corresponding RGBA burst
//! to the FPGA memory controller, runs the real [`crate::vision`] kernels
//! over the burst, and returns the packed 128-byte line plus timing. It
//! also exports the per-mode [`WorkloadProfile`]s that drive the Fig. 11
//! core-scaling model.

use enzian_cache::WorkloadProfile;
use enzian_mem::{Addr, MemoryController, Op};
use enzian_sim::{Duration, Time};

use crate::vision::{self, cost, Frame};

/// How much reduction the engine applies per refill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionMode {
    /// No reduction: the CPU reads raw RGBA (32 bpp) and converts in
    /// software. One 128-byte line holds 32 pixels.
    None,
    /// Hardware RGB2Y at 8 bpp: one line holds 128 pixels (a 512-byte
    /// RGBA burst per refill).
    Y8,
    /// Hardware RGB2Y + 4-bit quantisation: one line holds 256 pixels
    /// (a 1-KiB RGBA burst per refill).
    Y4,
}

impl ReductionMode {
    /// All modes in Fig. 11 order.
    pub const ALL: [ReductionMode; 3] = [ReductionMode::None, ReductionMode::Y8, ReductionMode::Y4];

    /// Pixels represented by one 128-byte logical line.
    pub fn pixels_per_line(self) -> u64 {
        match self {
            ReductionMode::None => 32,
            ReductionMode::Y8 => 128,
            ReductionMode::Y4 => 256,
        }
    }

    /// RGBA bytes the engine must burst-read per logical line.
    pub fn burst_bytes(self) -> u64 {
        self.pixels_per_line() * 4
    }

    /// Interconnect bytes the CPU fetches per pixel.
    pub fn bytes_per_pixel(self) -> f64 {
        128.0 / self.pixels_per_line() as f64
    }

    /// The figure legend label.
    pub fn label(self) -> &'static str {
        match self {
            ReductionMode::None => "None",
            ReductionMode::Y8 => "8bpp",
            ReductionMode::Y4 => "4bpp",
        }
    }

    /// The per-pixel CPU cost/stall profile of the full vision pipeline
    /// (conversion where applicable, unpack, then blur) in this mode —
    /// the input to [`enzian_cache::CoreTimingModel`] for Fig. 11 and
    /// Table 1.
    pub fn workload_profile(self) -> WorkloadProfile {
        let (compute, stall_per_refill) = match self {
            // Soft RGB2Y + blur; remote refill latency partially hidden.
            ReductionMode::None => (cost::RGB2Y_CYCLES + cost::BLUR_CYCLES, 46.0),
            // Blur only; fewer refills each hiding well behind compute.
            ReductionMode::Y8 => (cost::BLUR_CYCLES + cost::UNPACK_8BPP_CYCLES, 25.8),
            // Blur + nibble unpack; each refill now needs a 1 KiB DRAM
            // burst behind it, so per-refill latency roughly doubles.
            ReductionMode::Y4 => (cost::BLUR_CYCLES + cost::UNPACK_4BPP_CYCLES, 52.5),
        };
        WorkloadProfile {
            compute_cycles_per_unit: compute,
            remote_bytes_per_unit: self.bytes_per_pixel(),
            refill_bytes: 128.0,
            stall_cycles_per_refill: stall_per_refill,
            instructions_per_unit: compute * 0.8,
        }
    }
}

/// One served refill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Refill {
    /// The packed 128-byte response line.
    pub line: [u8; 128],
    /// When the line was ready to send back over ECI.
    pub ready: Time,
}

/// The FPGA-side request-transform + reduction engine.
#[derive(Debug)]
pub struct ReductionEngine {
    mode: ReductionMode,
    memory: MemoryController,
    frame_base: Addr,
    frame_pixels: u64,
    /// Engine pipeline clock.
    clock: Duration,
    refills: u64,
}

impl ReductionEngine {
    /// Creates an engine in `mode` over an FPGA memory controller,
    /// preloading `frame` at `frame_base` (the experiment preloads the
    /// input video into FPGA-side DRAM).
    pub fn new(
        mode: ReductionMode,
        mut memory: MemoryController,
        frame_base: Addr,
        frame: &Frame,
    ) -> Self {
        memory.store_mut().write(frame_base, &frame.rgba);
        ReductionEngine {
            mode,
            memory,
            frame_base,
            frame_pixels: frame.pixels() as u64,
            clock: Duration::from_hz(300_000_000),
            refills: 0,
        }
    }

    /// The engine's reduction mode.
    pub fn mode(&self) -> ReductionMode {
        self.mode
    }

    /// Number of refills served.
    pub fn refills_served(&self) -> u64 {
        self.refills
    }

    /// Logical lines the loaded frame spans in this mode.
    pub fn logical_lines(&self) -> u64 {
        self.frame_pixels.div_ceil(self.mode.pixels_per_line())
    }

    /// Serves an L2 refill for logical line `index`: burst-reads the
    /// corresponding RGBA pixels, reduces them, and packs the result.
    ///
    /// # Panics
    ///
    /// Panics if `index` is beyond the loaded frame.
    pub fn serve_refill(&mut self, now: Time, index: u64) -> Refill {
        assert!(index < self.logical_lines(), "refill beyond frame");
        self.refills += 1;
        let burst = self.mode.burst_bytes();
        let src = self.frame_base.offset(index * burst);

        // Request transform: one refill -> one DRAM burst (Fig. 10's
        // "ADDR xN" expansion), plus a few pipeline cycles.
        let burst_done = self
            .memory
            .request(now + self.clock * 4, src, burst, Op::Read);

        let mut rgba = vec![0u8; burst as usize];
        self.memory.store().read(src, &mut rgba);

        let mut line = [0u8; 128];
        match self.mode {
            ReductionMode::None => {
                // Pass-through: the first 128 bytes of RGBA (32 pixels).
                line.copy_from_slice(&rgba[..128]);
            }
            ReductionMode::Y8 => {
                for (i, px) in rgba.chunks_exact(4).enumerate() {
                    line[i] = vision::pixel_to_luma(px[0], px[1], px[2]);
                }
            }
            ReductionMode::Y4 => {
                let luma: Vec<u8> = rgba
                    .chunks_exact(4)
                    .map(|px| vision::pixel_to_luma(px[0], px[1], px[2]))
                    .collect();
                let packed = vision::quantize_4bpp(&luma);
                line.copy_from_slice(&packed);
            }
        }
        // The reduction datapath consumes the burst at line rate: one
        // 64-byte beat per cycle behind the DRAM read.
        let ready = burst_done + self.clock * burst.div_ceil(64);
        Refill { line, ready }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enzian_mem::MemoryControllerConfig;

    fn engine(mode: ReductionMode) -> (ReductionEngine, Frame) {
        let frame = Frame::synthetic(11, 256, 64);
        let mem = MemoryController::new(MemoryControllerConfig::enzian_fpga());
        (ReductionEngine::new(mode, mem, Addr(0), &frame), frame)
    }

    #[test]
    fn passthrough_returns_raw_rgba() {
        let (mut e, frame) = engine(ReductionMode::None);
        let r = e.serve_refill(Time::ZERO, 2);
        assert_eq!(&r.line[..], &frame.rgba[256..256 + 128]);
    }

    #[test]
    fn y8_matches_software_conversion() {
        let (mut e, frame) = engine(ReductionMode::Y8);
        let soft = vision::rgba_to_luma(&frame);
        let r = e.serve_refill(Time::ZERO, 1);
        assert_eq!(&r.line[..], &soft[128..256]);
    }

    #[test]
    fn y4_matches_software_conversion_and_packing() {
        let (mut e, frame) = engine(ReductionMode::Y4);
        let soft = vision::quantize_4bpp(&vision::rgba_to_luma(&frame));
        let r = e.serve_refill(Time::ZERO, 0);
        assert_eq!(&r.line[..], &soft[..128]);
    }

    #[test]
    fn higher_reduction_needs_larger_bursts_and_more_latency() {
        let (mut none, _) = engine(ReductionMode::None);
        let (mut y4, _) = engine(ReductionMode::Y4);
        let r_none = none.serve_refill(Time::ZERO, 0);
        let r_y4 = y4.serve_refill(Time::ZERO, 0);
        assert!(
            r_y4.ready > r_none.ready,
            "1 KiB burst should take longer than 128 B"
        );
    }

    #[test]
    fn geometry_per_mode() {
        assert_eq!(ReductionMode::None.pixels_per_line(), 32);
        assert_eq!(ReductionMode::Y8.pixels_per_line(), 128);
        assert_eq!(ReductionMode::Y4.pixels_per_line(), 256);
        assert_eq!(ReductionMode::Y4.burst_bytes(), 1024);
        assert_eq!(ReductionMode::None.bytes_per_pixel(), 4.0);
        assert_eq!(ReductionMode::Y8.bytes_per_pixel(), 1.0);
        assert_eq!(ReductionMode::Y4.bytes_per_pixel(), 0.5);
    }

    #[test]
    fn workload_profiles_reproduce_paper_per_core_rates() {
        // Fig. 11: baseline ~33 Mpx/s/core; +39% at 8bpp; +33% at 4bpp.
        let cpu = enzian_cache::CoreTimingModel::thunderx1();
        let rate = |m: ReductionMode| {
            cpu.steady_state(&m.workload_profile(), 1, 20e9)
                .units_per_sec
                / 1e6
        };
        let base = rate(ReductionMode::None);
        let y8 = rate(ReductionMode::Y8);
        let y4 = rate(ReductionMode::Y4);
        assert!((31.0..35.0).contains(&base), "baseline {base:.1} Mpx/s");
        let up8 = (y8 - base) / base * 100.0;
        let up4 = (y4 - base) / base * 100.0;
        assert!((35.0..43.0).contains(&up8), "8bpp uplift {up8:.1}%");
        assert!((29.0..37.0).contains(&up4), "4bpp uplift {up4:.1}%");
        // 4bpp is slightly *slower* than 8bpp (the paper's observation).
        assert!(y4 < y8);
    }

    #[test]
    fn frame_coverage() {
        let (e, frame) = engine(ReductionMode::Y8);
        assert_eq!(
            e.logical_lines(),
            frame.pixels() as u64 / ReductionMode::Y8.pixels_per_line()
        );
    }

    #[test]
    #[should_panic(expected = "beyond frame")]
    fn out_of_range_refill_panics() {
        let (mut e, _) = engine(ReductionMode::None);
        let lines = e.logical_lines();
        e.serve_refill(Time::ZERO, lines);
    }
}
