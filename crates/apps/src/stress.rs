//! The Fig. 12 staged diagnostic and stress-test schedule.
//!
//! The §5.5 experiment drives the machine through a scripted sequence —
//! boot, BDK DRAM check, data/address bus tests, marching-rows and
//! random-data memtests, CPU power-off, then an FPGA "power burn" that
//! switches blocks of flip-flops in 1/24-area steps — while the BMC
//! samples rail power every 20 ms. [`StressSchedule`] produces that
//! timeline as data, which the Fig. 12 experiment replays against the
//! power model.

use enzian_sim::{Duration, Time};

/// Number of area steps in the FPGA power burn (one per 1/24 of fabric).
pub const BURN_STEPS: u32 = 24;

/// One phase of the scripted workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StressPhase {
    /// Machine idle before CPU power-on (rails up, FPGA idle).
    IdleBefore,
    /// CPU released: BDK boot spike and settling.
    CpuBoot,
    /// BDK DRAM presence check.
    DramCheck,
    /// Data bus test.
    DataBusTest,
    /// Address bus test.
    AddressBusTest,
    /// Marching-rows memtest.
    MemtestMarching,
    /// Random-data memtest.
    MemtestRandom,
    /// CPU powered off again.
    CpuOff,
    /// FPGA power burn at `fraction` of fabric area.
    FpgaBurn {
        /// Toggling area fraction in `[0, 1]`.
        fraction: f64,
    },
    /// Final idle (everything quiescent).
    IdleAfter,
}

/// A timed phase entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledPhase {
    /// Phase start.
    pub from: Time,
    /// Phase end (exclusive).
    pub until: Time,
    /// What runs during the window.
    pub phase: StressPhase,
}

/// The complete scripted timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct StressSchedule {
    phases: Vec<ScheduledPhase>,
}

impl StressSchedule {
    /// Builds the paper's ~260 s timeline: boot and memtests in the
    /// first ~100 s, CPU off, then the 24-step FPGA burn.
    pub fn paper_timeline() -> Self {
        let mut phases = Vec::new();
        let mut t = Time::ZERO;
        let mut push = |t: &mut Time, secs_x10: u64, phase: StressPhase| {
            let until = *t + Duration::from_ms(secs_x10 * 100);
            phases.push(ScheduledPhase {
                from: *t,
                until,
                phase,
            });
            *t = until;
        };
        push(&mut t, 100, StressPhase::IdleBefore); // 10 s
        push(&mut t, 60, StressPhase::CpuBoot); // 6 s
        push(&mut t, 120, StressPhase::DramCheck); // 12 s
        push(&mut t, 90, StressPhase::DataBusTest); // 9 s
        push(&mut t, 90, StressPhase::AddressBusTest); // 9 s
        push(&mut t, 320, StressPhase::MemtestMarching); // 32 s
        push(&mut t, 380, StressPhase::MemtestRandom); // 38 s
        push(&mut t, 60, StressPhase::CpuOff); // 6 s of settling
                                               // 24 burn steps of 4 s each: 96 s.
        for step in 1..=BURN_STEPS {
            push(
                &mut t,
                40,
                StressPhase::FpgaBurn {
                    fraction: f64::from(step) / f64::from(BURN_STEPS),
                },
            );
        }
        push(&mut t, 100, StressPhase::IdleAfter); // 10 s
        StressSchedule { phases }
    }

    /// The timeline's phases in order.
    pub fn phases(&self) -> &[ScheduledPhase] {
        &self.phases
    }

    /// Total duration.
    pub fn total(&self) -> Duration {
        self.phases
            .last()
            .map(|p| p.until.since(Time::ZERO))
            .unwrap_or(Duration::ZERO)
    }

    /// The phase active at `at`, if any.
    pub fn phase_at(&self, at: Time) -> Option<StressPhase> {
        self.phases
            .iter()
            .find(|p| at >= p.from && at < p.until)
            .map(|p| p.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_contiguous_and_ordered() {
        let s = StressSchedule::paper_timeline();
        let phases = s.phases();
        assert!(!phases.is_empty());
        assert_eq!(phases[0].from, Time::ZERO);
        for w in phases.windows(2) {
            assert_eq!(w[0].until, w[1].from, "gap in timeline");
            assert!(w[0].from < w[0].until);
        }
    }

    #[test]
    fn total_duration_matches_figure_scale() {
        // Fig. 12's x-axis spans ~250-260 s.
        let secs = StressSchedule::paper_timeline().total().as_secs_f64();
        assert!((220.0..280.0).contains(&secs), "timeline {secs:.0} s");
    }

    #[test]
    fn burn_has_24_increasing_steps() {
        let s = StressSchedule::paper_timeline();
        let fractions: Vec<f64> = s
            .phases()
            .iter()
            .filter_map(|p| match p.phase {
                StressPhase::FpgaBurn { fraction } => Some(fraction),
                _ => None,
            })
            .collect();
        assert_eq!(fractions.len(), BURN_STEPS as usize);
        for w in fractions.windows(2) {
            assert!(w[1] > w[0], "burn steps must increase");
        }
        assert!((fractions[0] - 1.0 / 24.0).abs() < 1e-12);
        assert!((fractions.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_lookup() {
        let s = StressSchedule::paper_timeline();
        assert_eq!(s.phase_at(Time::ZERO), Some(StressPhase::IdleBefore));
        let end = Time::ZERO + s.total();
        assert_eq!(s.phase_at(end), None);
        // Mid-timeline lands in some memtest or burn phase.
        let mid = Time::ZERO + s.total() / 2;
        assert!(s.phase_at(mid).is_some());
    }
}
