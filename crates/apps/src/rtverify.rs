//! Zero-overhead runtime verification on the FPGA (§6).
//!
//! *"The FPGA can function as an instrument for observing the CPU and its
//! software in real-time. For example, we perform runtime verification of
//! a combined hardware/software system at scale with zero overhead, by
//! using the FPGA to process events from the program trace units on the
//! ThunderX-1 cores, and compiling temporal logic assertions about the
//! behavior of the hardware, OS, and application software into
//! reconfigurable logic."* (After Convent et al. \[17\].)
//!
//! This module implements that use-case end to end:
//!
//! * [`TraceEvent`] — program-trace-unit events (per core, timestamped);
//! * [`Formula`] — past-time LTL over event predicates (the fragment
//!   that compiles to constant-space monitor circuits);
//! * [`compile`] — "synthesis": lowers a formula into a flat monitor
//!   netlist of registers and combinational nodes, the software analogue
//!   of compiling assertions into reconfigurable logic;
//! * [`Monitor`] — evaluates the netlist one event at a time in O(nodes)
//!   with no allocation, reporting violations with their trigger event.
//!
//! Because the monitor consumes the trace stream on the FPGA, the
//! observed system pays nothing: the paper's "zero overhead" claim is
//! the absence of any feedback edge from monitor to workload, which
//! holds by construction here.

use enzian_sim::Time;

/// One event from a core's program trace unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Originating core (0..48).
    pub core: u8,
    /// Event timestamp.
    pub at: Time,
    /// Event kind.
    pub kind: EventKind,
}

/// Trace-event kinds (a practical subset of an ETM-style stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Kernel entered an interrupt handler.
    IrqEnter,
    /// Kernel left an interrupt handler.
    IrqExit,
    /// A lock was acquired (by lock id).
    LockAcquire(u16),
    /// A lock was released.
    LockRelease(u16),
    /// The scheduler switched tasks.
    ContextSwitch,
    /// A syscall was entered.
    SyscallEnter(u16),
    /// A syscall returned.
    SyscallExit(u16),
}

/// An atomic predicate over a single trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// Matches an exact event kind.
    Is(EventKind),
    /// Matches any lock-acquire.
    AnyAcquire,
    /// Matches any lock-release.
    AnyRelease,
    /// Matches events from one core.
    OnCore(u8),
}

impl Atom {
    fn eval(&self, ev: &TraceEvent) -> bool {
        match self {
            Atom::Is(k) => ev.kind == *k,
            Atom::AnyAcquire => matches!(ev.kind, EventKind::LockAcquire(_)),
            Atom::AnyRelease => matches!(ev.kind, EventKind::LockRelease(_)),
            Atom::OnCore(c) => ev.core == *c,
        }
    }
}

/// Past-time LTL formulas (safety fragment; constant-space monitors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// An atomic predicate on the current event.
    Atom(Atom),
    /// Logical negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// `Y φ`: φ held at the previous event (false initially).
    Yesterday(Box<Formula>),
    /// `H φ`: φ has held at every event so far.
    Historically(Box<Formula>),
    /// `O φ`: φ held at some past-or-present event.
    Once(Box<Formula>),
    /// `φ S ψ`: ψ held at some point, and φ has held since then.
    Since(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// `φ → ψ` as a convenience constructor.
    pub fn implies(lhs: Formula, rhs: Formula) -> Formula {
        Formula::Or(Box::new(Formula::Not(Box::new(lhs))), Box::new(rhs))
    }
}

/// A node of the compiled monitor netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Atom(Atom),
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    /// Register: outputs the previous value of its input (init false).
    Yesterday(usize),
    /// Register: AND-accumulator (init true).
    Historically(usize),
    /// Register: OR-accumulator (init false).
    Once(usize),
    /// Register pair implementing Since(lhs, rhs).
    Since(usize, usize),
}

/// The compiled monitor "bitstream": a flat netlist plus register file.
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    nodes: Vec<Node>,
    root: usize,
}

/// Compiles (synthesises) a formula into a netlist with common-
/// subexpression sharing — two occurrences of the same subformula map to
/// one node, like logic synthesis would.
pub fn compile(formula: &Formula) -> CompiledMonitor {
    fn lower(
        f: &Formula,
        nodes: &mut Vec<Node>,
        memo: &mut std::collections::HashMap<String, usize>,
    ) -> usize {
        let key = format!("{f:?}");
        if let Some(&idx) = memo.get(&key) {
            return idx;
        }
        let node = match f {
            Formula::Atom(a) => Node::Atom(a.clone()),
            Formula::Not(x) => Node::Not(lower(x, nodes, memo)),
            Formula::And(a, b) => {
                let (a, b) = (lower(a, nodes, memo), lower(b, nodes, memo));
                Node::And(a, b)
            }
            Formula::Or(a, b) => {
                let (a, b) = (lower(a, nodes, memo), lower(b, nodes, memo));
                Node::Or(a, b)
            }
            Formula::Yesterday(x) => Node::Yesterday(lower(x, nodes, memo)),
            Formula::Historically(x) => Node::Historically(lower(x, nodes, memo)),
            Formula::Once(x) => Node::Once(lower(x, nodes, memo)),
            Formula::Since(a, b) => {
                let (a, b) = (lower(a, nodes, memo), lower(b, nodes, memo));
                Node::Since(a, b)
            }
        };
        nodes.push(node);
        let idx = nodes.len() - 1;
        memo.insert(key, idx);
        idx
    }
    let mut nodes = Vec::new();
    let mut memo = std::collections::HashMap::new();
    let root = lower(formula, &mut nodes, &mut memo);
    CompiledMonitor { nodes, root }
}

impl CompiledMonitor {
    /// Number of netlist nodes ("LUTs + registers").
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stateful nodes ("flip-flops").
    pub fn registers(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    Node::Yesterday(_) | Node::Historically(_) | Node::Once(_) | Node::Since(..)
                )
            })
            .count()
    }
}

/// A violation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The event at which the property first evaluated false.
    pub event: TraceEvent,
    /// Ordinal of the event in the stream (0-based).
    pub index: u64,
}

/// The running monitor: evaluates a compiled netlist per event.
#[derive(Debug, Clone)]
pub struct Monitor {
    netlist: CompiledMonitor,
    /// Current combinational values.
    values: Vec<bool>,
    /// Register state (indexed like nodes; unused slots stay default).
    regs: Vec<bool>,
    /// Extra register for Since initialisation semantics.
    since_regs: Vec<bool>,
    events_seen: u64,
    violations: Vec<Violation>,
    /// FPGA cycles consumed per event (for the instrumentation budget).
    cycles_per_event: u32,
}

impl Monitor {
    /// Instantiates a compiled monitor. One netlist evaluation costs one
    /// FPGA cycle per pipeline stage; the flat netlist evaluates in a
    /// single cycle after placement, so we charge 1.
    pub fn new(netlist: CompiledMonitor) -> Self {
        let n = netlist.nodes.len();
        Monitor {
            netlist,
            values: vec![false; n],
            regs: vec![false; n],
            since_regs: vec![false; n],
            events_seen: 0,
            violations: Vec::new(),
            cycles_per_event: 1,
        }
    }

    /// Compiles and instantiates in one step.
    pub fn for_formula(f: &Formula) -> Self {
        Monitor::new(compile(f))
    }

    /// Feeds one event; records (and returns) a violation if the
    /// property evaluates false at this event.
    pub fn step(&mut self, ev: &TraceEvent) -> Option<Violation> {
        // Nodes are in topological order by construction (children are
        // lowered before parents).
        for i in 0..self.netlist.nodes.len() {
            let v = match &self.netlist.nodes[i] {
                Node::Atom(a) => a.eval(ev),
                Node::Not(x) => !self.values[*x],
                Node::And(a, b) => self.values[*a] && self.values[*b],
                Node::Or(a, b) => self.values[*a] || self.values[*b],
                Node::Yesterday(x) => {
                    let prev = if self.events_seen == 0 {
                        false
                    } else {
                        self.regs[i]
                    };
                    self.regs[i] = self.values[*x];
                    let _ = x;
                    prev
                }
                Node::Historically(x) => {
                    let acc = if self.events_seen == 0 {
                        true
                    } else {
                        self.regs[i]
                    };
                    let now = acc && self.values[*x];
                    self.regs[i] = now;
                    now
                }
                Node::Once(x) => {
                    let acc = if self.events_seen == 0 {
                        false
                    } else {
                        self.regs[i]
                    };
                    let now = acc || self.values[*x];
                    self.regs[i] = now;
                    now
                }
                Node::Since(a, b) => {
                    // φ S ψ  =  ψ ∨ (φ ∧ Y(φ S ψ))
                    let prev = if self.events_seen == 0 {
                        false
                    } else {
                        self.since_regs[i]
                    };
                    let now = self.values[*b] || (self.values[*a] && prev);
                    self.since_regs[i] = now;
                    now
                }
            };
            self.values[i] = v;
        }
        self.events_seen += 1;
        if !self.values[self.netlist.root] {
            let v = Violation {
                event: *ev,
                index: self.events_seen - 1,
            };
            self.violations.push(v.clone());
            Some(v)
        } else {
            None
        }
    }

    /// Feeds a whole trace; returns all violations found.
    pub fn run(&mut self, trace: &[TraceEvent]) -> &[Violation] {
        for ev in trace {
            self.step(ev);
        }
        self.violations()
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Events processed.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// FPGA cycles the monitor consumed — all on the FPGA side, i.e.
    /// zero cycles charged to the observed CPU ("zero overhead").
    pub fn fpga_cycles_consumed(&self) -> u64 {
        self.events_seen * u64::from(self.cycles_per_event)
    }
}

/// Library of properties from the OS-observation use-case.
pub mod properties {
    use super::*;

    /// "An IRQ exit is only legal if an IRQ entry has happened before
    /// with no intervening exit": `IrqExit → Y(¬IrqExit S IrqEnter)`.
    pub fn irq_well_nested() -> Formula {
        let enter = Formula::Atom(Atom::Is(EventKind::IrqEnter));
        let exit = Formula::Atom(Atom::Is(EventKind::IrqExit));
        Formula::implies(
            exit.clone(),
            Formula::Yesterday(Box::new(Formula::Since(
                Box::new(Formula::Not(Box::new(exit))),
                Box::new(enter),
            ))),
        )
    }

    /// "A release must be preceded by an acquire of the same lock":
    /// `Release(l) → Y(O Acquire(l))`, instantiated per lock id.
    pub fn lock_discipline(lock: u16) -> Formula {
        Formula::implies(
            Formula::Atom(Atom::Is(EventKind::LockRelease(lock))),
            Formula::Yesterday(Box::new(Formula::Once(Box::new(Formula::Atom(Atom::Is(
                EventKind::LockAcquire(lock),
            )))))),
        )
    }

    /// "No context switch while any lock is held (spinlock rule)":
    /// `ContextSwitch → ¬(¬AnyRelease S AnyAcquire)`.
    pub fn no_switch_under_lock() -> Formula {
        Formula::implies(
            Formula::Atom(Atom::Is(EventKind::ContextSwitch)),
            Formula::Not(Box::new(Formula::Since(
                Box::new(Formula::Not(Box::new(Formula::Atom(Atom::AnyRelease)))),
                Box::new(Formula::Atom(Atom::AnyAcquire)),
            ))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::properties::*;
    use super::*;
    use enzian_sim::Duration;

    fn ev(i: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            core: 0,
            at: Time::ZERO + Duration::from_ns(i * 10),
            kind,
        }
    }

    #[test]
    fn well_nested_irqs_are_clean() {
        use EventKind::*;
        let trace: Vec<TraceEvent> = [IrqEnter, IrqExit, ContextSwitch, IrqEnter, IrqExit]
            .iter()
            .enumerate()
            .map(|(i, &k)| ev(i as u64, k))
            .collect();
        let mut m = Monitor::for_formula(&irq_well_nested());
        assert!(m.run(&trace).is_empty());
        assert_eq!(m.events_seen(), 5);
    }

    #[test]
    fn orphan_irq_exit_is_caught_at_the_right_event() {
        use EventKind::*;
        let trace: Vec<TraceEvent> = [IrqEnter, IrqExit, IrqExit]
            .iter()
            .enumerate()
            .map(|(i, &k)| ev(i as u64, k))
            .collect();
        let mut m = Monitor::for_formula(&irq_well_nested());
        let v = m.run(&trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 2);
        assert_eq!(v[0].event.kind, IrqExit);
    }

    #[test]
    fn lock_discipline_per_lock_id() {
        use EventKind::*;
        // Release of lock 7 without acquire; lock 3 is fine.
        let trace: Vec<TraceEvent> = [
            LockAcquire(3),
            LockRelease(3),
            LockRelease(7),
            LockAcquire(7),
            LockRelease(7),
        ]
        .iter()
        .enumerate()
        .map(|(i, &k)| ev(i as u64, k))
        .collect();
        let mut ok = Monitor::for_formula(&lock_discipline(3));
        assert!(ok.run(&trace).is_empty());
        let mut bad = Monitor::for_formula(&lock_discipline(7));
        let v = bad.run(&trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 2);
    }

    #[test]
    fn context_switch_under_lock_is_flagged() {
        use EventKind::*;
        let good: Vec<TraceEvent> = [LockAcquire(1), LockRelease(1), ContextSwitch]
            .iter()
            .enumerate()
            .map(|(i, &k)| ev(i as u64, k))
            .collect();
        let bad: Vec<TraceEvent> = [LockAcquire(1), ContextSwitch, LockRelease(1)]
            .iter()
            .enumerate()
            .map(|(i, &k)| ev(i as u64, k))
            .collect();
        assert!(Monitor::for_formula(&no_switch_under_lock())
            .run(&good)
            .is_empty());
        let mut m = Monitor::for_formula(&no_switch_under_lock());
        let v = m.run(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].event.kind, ContextSwitch);
    }

    #[test]
    fn compile_shares_common_subexpressions() {
        // IrqExit appears twice in irq_well_nested; the netlist must
        // contain its atom exactly once.
        let compiled = compile(&irq_well_nested());
        let atoms = compiled
            .nodes
            .iter()
            .filter(|n| matches!(n, Node::Atom(Atom::Is(EventKind::IrqExit))))
            .count();
        assert_eq!(atoms, 1);
        assert!(compiled.registers() >= 2, "Y and S need registers");
    }

    #[test]
    fn yesterday_is_false_initially() {
        let f = Formula::Yesterday(Box::new(Formula::Atom(Atom::Is(EventKind::ContextSwitch))));
        let mut m = Monitor::for_formula(&f);
        // First event: Y(...) is false regardless.
        let v = m.step(&ev(0, EventKind::ContextSwitch));
        assert!(v.is_some());
        // Second event: yesterday there WAS a context switch.
        let v = m.step(&ev(1, EventKind::IrqEnter));
        assert!(v.is_none());
    }

    #[test]
    fn since_semantics_match_recursion() {
        // φ S ψ with φ = ¬IrqExit, ψ = IrqEnter over a concrete trace,
        // cross-checked against a reference fold.
        use EventKind::*;
        let kinds = [
            IrqEnter,
            ContextSwitch,
            IrqExit,
            ContextSwitch,
            IrqEnter,
            ContextSwitch,
        ];
        let f = Formula::Since(
            Box::new(Formula::Not(Box::new(Formula::Atom(Atom::Is(IrqExit))))),
            Box::new(Formula::Atom(Atom::Is(IrqEnter))),
        );
        let mut m = Monitor::for_formula(&f);
        let mut reference = false;
        for (i, &k) in kinds.iter().enumerate() {
            let e = ev(i as u64, k);
            let phi = k != IrqExit;
            let psi = k == IrqEnter;
            reference = psi || (phi && reference);
            let violated = m.step(&e).is_some();
            assert_eq!(!violated, reference, "event {i}");
        }
    }

    #[test]
    fn monitoring_costs_zero_cpu_cycles() {
        let mut m = Monitor::for_formula(&irq_well_nested());
        let trace: Vec<TraceEvent> = (0..1000).map(|i| ev(i, EventKind::ContextSwitch)).collect();
        m.run(&trace);
        // All cycles land on the FPGA; the trace source pays nothing.
        assert_eq!(m.fpga_cycles_consumed(), 1000);
    }
}
