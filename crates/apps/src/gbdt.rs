//! Gradient-boosted decision-tree ensemble inference.
//!
//! The §5.3 macro-benchmark reproduces Owaida et al.'s distributed
//! decision-tree inference: a trained ensemble is offloaded to the FPGA
//! once, then tuples stream through a pipelined scoring engine in a
//! GPU-like pattern (load batch → compute → copy results back), with
//! double buffering hiding the transfer behind compute.
//!
//! This module implements real ensembles (deterministic synthetic
//! generation, software reference inference) and the accelerator timing
//! model: a scoring pipeline with a fixed initiation interval per tuple,
//! replicated per engine, whose throughput scales with the platform's
//! achievable clock — which is exactly why Enzian's -3 speed grade part
//! wins Fig. 9.

use enzian_sim::{Duration, SimRng, Time};

/// A feature vector scored by the ensemble.
pub type Tuple = Vec<f32>;

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Split {
        feature: u16,
        threshold: f32,
        left: u32,
        right: u32,
    },
    Leaf(f32),
}

/// One regression tree with array-packed nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Scores one tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple has fewer features than the tree references.
    pub fn score(&self, tuple: &[f32]) -> f32 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if tuple[usize::from(*feature)] < *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Generates a random full tree of `depth` over `features` features.
    fn generate(rng: &mut SimRng, depth: u32, features: u16) -> Tree {
        assert!(depth >= 1 && features >= 1);
        let mut nodes = Vec::new();
        // Build level by level: internal nodes then leaves.
        fn build(rng: &mut SimRng, nodes: &mut Vec<Node>, depth: u32, features: u16) -> u32 {
            if depth == 0 {
                nodes.push(Node::Leaf((rng.next_f64() as f32) * 2.0 - 1.0));
                return (nodes.len() - 1) as u32;
            }
            let idx = nodes.len();
            nodes.push(Node::Leaf(0.0)); // placeholder
            let feature = rng.next_below(u64::from(features)) as u16;
            let threshold = (rng.next_f64() as f32) * 2.0 - 1.0;
            let left = build(rng, nodes, depth - 1, features);
            let right = build(rng, nodes, depth - 1, features);
            nodes[idx] = Node::Split {
                feature,
                threshold,
                left,
                right,
            };
            idx as u32
        }
        build(rng, &mut nodes, depth, features);
        Tree { nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes (never true for generated trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A boosted ensemble: the sum of its trees' scores.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    trees: Vec<Tree>,
    features: u16,
}

impl Ensemble {
    /// Generates a deterministic synthetic ensemble.
    ///
    /// # Panics
    ///
    /// Panics on zero trees/depth/features.
    pub fn generate(seed: u64, trees: usize, depth: u32, features: u16) -> Self {
        assert!(trees >= 1, "empty ensemble");
        let mut rng = SimRng::seed_from(seed);
        Ensemble {
            trees: (0..trees)
                .map(|_| Tree::generate(&mut rng, depth, features))
                .collect(),
            features,
        }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Features each tuple must carry.
    pub fn num_features(&self) -> u16 {
        self.features
    }

    /// Software reference inference for one tuple.
    pub fn score(&self, tuple: &[f32]) -> f32 {
        assert_eq!(
            tuple.len(),
            usize::from(self.features),
            "tuple feature count mismatch"
        );
        self.trees.iter().map(|t| t.score(tuple)).sum()
    }

    /// Software inference over a batch.
    pub fn score_batch(&self, tuples: &[Tuple]) -> Vec<f32> {
        tuples.iter().map(|t| self.score(t)).collect()
    }

    /// Generates a deterministic tuple batch for this ensemble.
    pub fn generate_tuples(&self, seed: u64, count: usize) -> Vec<Tuple> {
        let mut rng = SimRng::seed_from(seed);
        (0..count)
            .map(|_| {
                (0..self.features)
                    .map(|_| (rng.next_f64() as f32) * 2.0 - 1.0)
                    .collect()
            })
            .collect()
    }
}

/// Platform-specific accelerator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Achieved fabric clock for this design on this platform.
    pub clock_hz: u64,
    /// Parallel scoring engines instantiated (1 or 2 in Fig. 9).
    pub engines: u32,
    /// Initiation interval: cycles between tuple issues per engine (the
    /// design accepts one tuple per 6 cycles: 96 trees on 16 tree
    /// processors).
    pub initiation_interval: u32,
    /// Pipeline fill depth in cycles.
    pub pipeline_depth: u32,
    /// Host link bandwidth available for tuple/result movement,
    /// bytes/sec (the workload needs no more than 4 GB/s, §5.3).
    pub link_bytes_per_sec: f64,
}

impl AcceleratorConfig {
    /// Throughput of the scoring pipeline alone, tuples/sec.
    pub fn pipeline_tuples_per_sec(&self) -> f64 {
        self.clock_hz as f64 * f64::from(self.engines) / f64::from(self.initiation_interval)
    }
}

/// Result of one accelerated batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// The scores, bit-identical to software inference.
    pub scores: Vec<f32>,
    /// Completion time.
    pub done: Time,
}

/// The offload engine: functional scoring plus pipeline/transfer timing
/// with double buffering.
#[derive(Debug, Clone)]
pub struct GbdtAccelerator {
    ensemble: Ensemble,
    config: AcceleratorConfig,
    tuples_scored: u64,
}

impl GbdtAccelerator {
    /// Loads `ensemble` into an accelerator with `config` (the model
    /// offload step, not part of the measured time).
    pub fn new(ensemble: Ensemble, config: AcceleratorConfig) -> Self {
        assert!(config.engines >= 1 && config.initiation_interval >= 1);
        GbdtAccelerator {
            ensemble,
            config,
            tuples_scored: 0,
        }
    }

    /// The loaded ensemble.
    pub fn ensemble(&self) -> &Ensemble {
        &self.ensemble
    }

    /// The platform configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Total tuples scored.
    pub fn tuples_scored(&self) -> u64 {
        self.tuples_scored
    }

    /// Streams a batch through the engine(s) starting at `now`: tuples
    /// are fetched from host memory, scored in the pipeline, and results
    /// written back, with transfers double-buffered against compute.
    pub fn score_batch(&mut self, now: Time, tuples: &[Tuple]) -> BatchResult {
        assert!(!tuples.is_empty(), "empty batch");
        let scores = self.ensemble.score_batch(tuples);
        self.tuples_scored += tuples.len() as u64;

        let n = tuples.len() as f64;
        let tuple_bytes = 4.0 * f64::from(self.ensemble.features);
        let result_bytes = 4.0;
        // Double buffering: steady state is limited by the slower of
        // compute and transfer; the pipeline fill and the first/last
        // chunk transfers appear once.
        let compute = n / self.config.pipeline_tuples_per_sec();
        let transfer = n * (tuple_bytes + result_bytes) / self.config.link_bytes_per_sec;
        let steady = compute.max(transfer);
        let fill = f64::from(self.config.pipeline_depth) / self.config.clock_hz as f64;
        let done = now + Duration::from_secs_f64(steady + fill);
        BatchResult { scores, done }
    }

    /// Measured throughput in tuples/sec for a batch scored at `now`.
    pub fn measure_throughput(&mut self, now: Time, tuples: &[Tuple]) -> f64 {
        let r = self.score_batch(now, tuples);
        tuples.len() as f64 / r.done.since(now).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ensemble() -> Ensemble {
        Ensemble::generate(7, 32, 6, 16)
    }

    fn enzian_config() -> AcceleratorConfig {
        AcceleratorConfig {
            clock_hz: 288_000_000,
            engines: 1,
            initiation_interval: 6,
            pipeline_depth: 120,
            link_bytes_per_sec: 9e9,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Ensemble::generate(1, 8, 5, 10);
        let b = Ensemble::generate(1, 8, 5, 10);
        assert_eq!(a, b);
        let c = Ensemble::generate(2, 8, 5, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn tree_depth_and_size() {
        let e = Ensemble::generate(3, 4, 6, 8);
        for t in &e.trees {
            // A full binary tree of depth 6: 2^7 - 1 nodes.
            assert_eq!(t.len(), 127);
        }
    }

    #[test]
    fn accelerator_matches_software_bit_for_bit() {
        let e = ensemble();
        let tuples = e.generate_tuples(9, 1000);
        let expected = e.score_batch(&tuples);
        let mut acc = GbdtAccelerator::new(e, enzian_config());
        let result = acc.score_batch(Time::ZERO, &tuples);
        assert_eq!(result.scores, expected);
        assert_eq!(acc.tuples_scored(), 1000);
    }

    #[test]
    fn throughput_tracks_clock() {
        let e = ensemble();
        let tuples = e.generate_tuples(9, 100_000);
        let mut enzian = GbdtAccelerator::new(e.clone(), enzian_config());
        let mut f1 = GbdtAccelerator::new(
            e,
            AcceleratorConfig {
                clock_hz: 144_000_000,
                ..enzian_config()
            },
        );
        let t_enzian = enzian.measure_throughput(Time::ZERO, &tuples);
        let t_f1 = f1.measure_throughput(Time::ZERO, &tuples);
        let ratio = t_enzian / t_f1;
        assert!(
            (1.9..2.1).contains(&ratio),
            "clock scaling ratio {ratio:.2}"
        );
        // Enzian lands at ~48 Mtuples/s (Fig. 9).
        assert!(
            (45e6..50e6).contains(&t_enzian),
            "Enzian throughput {:.1} Mt/s",
            t_enzian / 1e6
        );
    }

    #[test]
    fn two_engines_double_throughput() {
        let e = ensemble();
        let tuples = e.generate_tuples(9, 100_000);
        let mut one = GbdtAccelerator::new(e.clone(), enzian_config());
        let mut two = GbdtAccelerator::new(
            e,
            AcceleratorConfig {
                engines: 2,
                ..enzian_config()
            },
        );
        let r = two.measure_throughput(Time::ZERO, &tuples)
            / one.measure_throughput(Time::ZERO, &tuples);
        assert!((1.9..2.1).contains(&r), "engine scaling {r:.2}");
    }

    #[test]
    fn transfer_bound_when_link_is_slow() {
        let e = ensemble();
        let tuples = e.generate_tuples(9, 50_000);
        let mut starved = GbdtAccelerator::new(
            e,
            AcceleratorConfig {
                link_bytes_per_sec: 0.5e9, // 0.5 GB/s
                ..enzian_config()
            },
        );
        let tput = starved.measure_throughput(Time::ZERO, &tuples);
        // 68 B/tuple at 0.5 GB/s: ~7.3 Mt/s, far below the pipeline's 48.
        assert!(
            tput < 10e6,
            "transfer-starved throughput {:.1} Mt/s",
            tput / 1e6
        );
    }

    #[test]
    fn workload_stays_under_4_gbytes_per_sec() {
        // §5.3: "uses no more than 4 GB/s of bandwidth between the FPGA
        // and host memory."
        let cfg = enzian_config();
        let bytes_per_tuple = 4.0 * 16.0 + 4.0;
        let demand = cfg.pipeline_tuples_per_sec() * bytes_per_tuple;
        assert!(demand < 4e9, "demand {demand:.2e} B/s");
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_feature_count_panics() {
        let e = ensemble();
        e.score(&[0.0; 3]);
    }
}
