//! The replicated key-value service: shard/replica/client state machines.
//!
//! This module is the *logic* of `enzian-apps::service` — the sharded,
//! primary-backup replicated KV store that `enzian-platform::service`
//! runs across a multi-board cluster. Everything transport-shaped
//! (channels, bridge frames, timers, the parallel engine) lives in the
//! platform crate; here live the pieces that must be correct and
//! deterministic regardless of how messages move:
//!
//! * [`ShardMap`] — which boards host a shard and who is primary at a
//!   given epoch (epoch parity alternates between the two hosts, so a
//!   promotion is always `epoch + 1`);
//! * [`SvcPayload`] — the service wire payloads (requests, responses,
//!   replication, heartbeats, catch-up) carried inside bridge frames;
//! * [`Replica`] — one shard replica: a [`KvStore`] plus the applied-op
//!   log, the per-client dedup table (exactly-once retries), and the
//!   catch-up/rebuild path;
//! * [`ClientState`] — a seeded client issuing mixed get/put/delete
//!   traffic with timeouts, bounded exponential backoff, retry budgets
//!   and stale-read degradation, every failure surfacing a typed
//!   [`SvcError`];
//! * [`SloRecorder`] — per-op-class latency histograms, availability
//!   inside/outside the fault window, and the failover-recovery
//!   histogram, exported through the shared
//!   [`enzian_sim::Instrumented`] histogram helper;
//! * [`verify_log`] — the linearizability shadow check: replay a
//!   shard's committed-op log against a fresh sequential [`KvStore`]
//!   and demand identical results.

use std::collections::BTreeMap;

use enzian_mem::{MemoryController, MemoryControllerConfig};
use enzian_sim::stats::LatencyHistogram;
use enzian_sim::{Duration, Instrumented, MetricsRegistry, SimRng, Time};

use crate::kvs::{KvStore, KvStoreConfig, MAX_VALUE_BYTES};

// -------------------------------------------------------------------
// Shard placement
// -------------------------------------------------------------------

/// Static placement of shards onto boards, and the epoch → primary rule.
///
/// Shard `s` is hosted by boards `s % n` and `(s + 1) % n`; at epoch `e`
/// the primary is the first host when `e` is even and the second when
/// odd. A failover is therefore always "bump the epoch by one", and a
/// board can check `primary_at(shard, epoch) == me` locally — no
/// configuration service in the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    /// Number of shards.
    pub shards: u16,
    /// Number of boards.
    pub boards: u8,
}

impl ShardMap {
    /// Creates the map.
    ///
    /// # Panics
    ///
    /// Panics with fewer than 2 boards or zero shards (a shard needs a
    /// primary and a backup on distinct boards).
    pub fn new(shards: u16, boards: u8) -> Self {
        assert!(boards >= 2, "replication needs at least two boards");
        assert!(shards > 0, "a service needs at least one shard");
        ShardMap { shards, boards }
    }

    /// The two boards hosting `shard`: `[first, second]`, distinct.
    pub fn hosts(&self, shard: u16) -> [u8; 2] {
        let n = u16::from(self.boards);
        [(shard % n) as u8, ((shard + 1) % n) as u8]
    }

    /// The primary board of `shard` at `epoch`.
    pub fn primary_at(&self, shard: u16, epoch: u32) -> u8 {
        self.hosts(shard)[(epoch % 2) as usize]
    }

    /// The non-primary host of `shard` at `epoch`.
    pub fn backup_at(&self, shard: u16, epoch: u32) -> u8 {
        self.hosts(shard)[((epoch + 1) % 2) as usize]
    }

    /// `true` when `board` hosts `shard` (as primary or backup).
    pub fn is_host(&self, board: u8, shard: u16) -> bool {
        self.hosts(shard).contains(&board)
    }

    /// The shards `board` hosts, in ascending order.
    pub fn shards_of(&self, board: u8) -> Vec<u16> {
        (0..self.shards)
            .filter(|&s| self.is_host(board, s))
            .collect()
    }

    /// The shard owning `key` (the salted splitmix64 finaliser, so
    /// shards load-balance even for sequential or structured keys —
    /// one multiply round leaves `uid<<32 | small` keys clustered on a
    /// few residues).
    pub fn shard_of(&self, key: u64) -> u16 {
        let mut z = key ^ 0xA076_1D64_78BD_642F;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % u64::from(self.shards)) as u16
    }
}

// -------------------------------------------------------------------
// Operations, results, errors
// -------------------------------------------------------------------

/// One client operation against the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Read `key`.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Insert or overwrite `key`.
    Put {
        /// Key to write.
        key: u64,
        /// Value, at most [`MAX_VALUE_BYTES`] bytes.
        value: Vec<u8>,
    },
    /// Remove `key`.
    Delete {
        /// Key to remove.
        key: u64,
    },
}

impl KvOp {
    /// The key the operation addresses.
    pub fn key(&self) -> u64 {
        match self {
            KvOp::Get { key } | KvOp::Put { key, .. } | KvOp::Delete { key } => *key,
        }
    }

    /// The operation's class, for SLO accounting.
    pub fn class(&self) -> OpClass {
        match self {
            KvOp::Get { .. } => OpClass::Get,
            KvOp::Put { .. } => OpClass::Put,
            KvOp::Delete { .. } => OpClass::Delete,
        }
    }

    /// `true` for operations that change the store.
    pub fn is_mutation(&self) -> bool {
        !matches!(self, KvOp::Get { .. })
    }
}

/// Operation classes the SLO telemetry distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Reads.
    Get,
    /// Inserts/overwrites.
    Put,
    /// Deletions.
    Delete,
}

/// The functional result of a committed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResult {
    /// GET found the value.
    Found(Vec<u8>),
    /// GET missed.
    Missing,
    /// PUT committed.
    PutOk,
    /// DELETE outcome: `true` when the key was present.
    Deleted(bool),
    /// The store rejected the operation (see [`store_err_code`]).
    StoreErr(u8),
}

/// Wire code for a [`crate::kvs::KvError`] inside [`KvResult::StoreErr`].
pub fn store_err_code(e: &crate::kvs::KvError) -> u8 {
    match e {
        crate::kvs::KvError::ValueTooLarge { .. } => 1,
        crate::kvs::KvError::TableFull => 2,
        crate::kvs::KvError::ReservedKey => 3,
    }
}

/// Typed failures a client observes. Server-side rejections (the first
/// three) travel on the wire and are retried; the rest are terminal
/// client-side outcomes — a request **always** ends in a [`KvResult`]
/// or one of these within its retry budget, never a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcError {
    /// The addressed replica is not the primary at its current epoch.
    NotPrimary {
        /// The responder's current epoch for the shard.
        epoch: u32,
        /// The board the responder believes is primary.
        primary: u8,
    },
    /// The responder cannot see a board majority and refuses to serve.
    NoQuorum,
    /// The replica is rebuilding its state (crash rejoin / fencing).
    Recovering,
    /// No response arrived within the per-attempt timeout.
    Timeout {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The retry budget (including any stale-read fallback) is spent.
    Unavailable {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The client's own board crashed while the request was in flight.
    ClientCrashed,
}

impl std::fmt::Display for SvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcError::NotPrimary { epoch, primary } => {
                write!(f, "not primary (epoch {epoch}, primary board {primary})")
            }
            SvcError::NoQuorum => write!(f, "no board majority visible"),
            SvcError::Recovering => write!(f, "replica recovering"),
            SvcError::Timeout { attempts } => {
                write!(f, "request timed out after {attempts} attempts")
            }
            SvcError::Unavailable { attempts } => {
                write!(f, "shard unavailable after {attempts} attempts")
            }
            SvcError::ClientCrashed => write!(f, "client board crashed mid-request"),
        }
    }
}

impl std::error::Error for SvcError {}

// -------------------------------------------------------------------
// Wire payloads
// -------------------------------------------------------------------

/// A service message, carried as the payload of a bridge `Svc*` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcPayload {
    /// Client → replica: execute `op` on `shard`.
    Request {
        /// Issuing client uid (globally unique).
        client: u32,
        /// Per-attempt id; the matching response echoes it.
        req_id: u32,
        /// Per-client operation sequence number (dedup key).
        op_seq: u32,
        /// Target shard.
        shard: u16,
        /// The epoch the client believes current (fencing hint).
        epoch: u32,
        /// Allow any replica to answer from possibly-stale state.
        stale_ok: bool,
        /// The operation.
        op: KvOp,
    },
    /// Replica → client: the outcome.
    Response {
        /// Echoed client uid.
        client: u32,
        /// Echoed request id.
        req_id: u32,
        /// Shard concerned.
        shard: u16,
        /// Responder's current epoch for the shard.
        epoch: u32,
        /// Result or server-side rejection.
        body: Result<RespOk, RespErr>,
    },
    /// Primary → backup: apply log entry `index`.
    Replicate {
        /// Shard concerned.
        shard: u16,
        /// Primary's epoch (backup fences lower epochs).
        epoch: u32,
        /// Log index of the entry.
        index: u32,
        /// Originating client uid (rebuilds the dedup table).
        client: u32,
        /// Originating per-client sequence number.
        op_seq: u32,
        /// The operation.
        op: KvOp,
    },
    /// Backup → primary: entry `index` applied.
    RepAck {
        /// Shard concerned.
        shard: u16,
        /// Acker's epoch.
        epoch: u32,
        /// Acked log index.
        index: u32,
    },
    /// Backup → primary: your epoch is stale — stop serving.
    RepNack {
        /// Shard concerned.
        shard: u16,
        /// The responder's (higher) epoch.
        epoch: u32,
    },
    /// Board → board: liveness beacon plus per-hosted-shard epochs, so
    /// a healed stale primary learns it was fenced within one interval.
    Heartbeat {
        /// Per-sender heartbeat sequence number.
        seq: u32,
        /// `(shard, epoch)` for every shard the sender hosts.
        epochs: Vec<(u16, u32)>,
    },
    /// Rejoining replica → peer host: send me your full log.
    CatchupReq {
        /// Shard to rebuild.
        shard: u16,
    },
    /// Peer → rejoining replica: snapshot header; `len` [`SvcPayload::Replicate`]
    /// entries (indices `0..len`) follow on the same in-order flow.
    CatchupStart {
        /// Shard being rebuilt.
        shard: u16,
        /// Responder's epoch.
        epoch: u32,
        /// Entries in the snapshot.
        len: u32,
    },
}

/// Successful response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespOk {
    /// The committed result.
    pub result: KvResult,
    /// `true` when served from possibly-stale (non-primary) state.
    pub stale: bool,
}

/// Server-side rejection body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespErr {
    /// The rejection (only the server-side [`SvcError`] variants).
    pub error: SvcError,
}

/// Decoding failures for service payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcWireError {
    /// Fewer bytes than the field being read requires.
    Truncated,
    /// Unknown tag/kind byte at the given offset.
    BadTag(u8),
    /// Trailing bytes after a complete payload.
    TrailingBytes(usize),
}

impl std::fmt::Display for SvcWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcWireError::Truncated => write!(f, "truncated service payload"),
            SvcWireError::BadTag(t) => write!(f, "unknown service payload tag {t}"),
            SvcWireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for SvcWireError {}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, SvcWireError> {
        let b = *self.buf.get(self.at).ok_or(SvcWireError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, SvcWireError> {
        Ok(u16::from_le_bytes([self.u8()?, self.u8()?]))
    }

    fn u32(&mut self) -> Result<u32, SvcWireError> {
        Ok(u32::from_le_bytes([
            self.u8()?,
            self.u8()?,
            self.u8()?,
            self.u8()?,
        ]))
    }

    fn u64(&mut self) -> Result<u64, SvcWireError> {
        let lo = self.u32()?;
        let hi = self.u32()?;
        Ok(u64::from(lo) | (u64::from(hi) << 32))
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, SvcWireError> {
        let end = self.at.checked_add(n).ok_or(SvcWireError::Truncated)?;
        let s = self.buf.get(self.at..end).ok_or(SvcWireError::Truncated)?;
        self.at = end;
        Ok(s.to_vec())
    }
}

fn put_op(out: &mut Vec<u8>, op: &KvOp) {
    match op {
        KvOp::Get { key } => {
            out.push(1);
            out.extend_from_slice(&key.to_le_bytes());
        }
        KvOp::Put { key, value } => {
            out.push(2);
            out.extend_from_slice(&key.to_le_bytes());
            out.push(value.len() as u8);
            out.extend_from_slice(value);
        }
        KvOp::Delete { key } => {
            out.push(3);
            out.extend_from_slice(&key.to_le_bytes());
        }
    }
}

fn get_op(r: &mut Reader<'_>) -> Result<KvOp, SvcWireError> {
    match r.u8()? {
        1 => Ok(KvOp::Get { key: r.u64()? }),
        2 => {
            let key = r.u64()?;
            let len = r.u8()? as usize;
            Ok(KvOp::Put {
                key,
                value: r.bytes(len)?,
            })
        }
        3 => Ok(KvOp::Delete { key: r.u64()? }),
        t => Err(SvcWireError::BadTag(t)),
    }
}

fn put_result(out: &mut Vec<u8>, res: &KvResult) {
    match res {
        KvResult::Found(v) => {
            out.push(1);
            out.push(v.len() as u8);
            out.extend_from_slice(v);
        }
        KvResult::Missing => out.push(2),
        KvResult::PutOk => out.push(3),
        KvResult::Deleted(found) => {
            out.push(4);
            out.push(u8::from(*found));
        }
        KvResult::StoreErr(code) => {
            out.push(5);
            out.push(*code);
        }
    }
}

fn get_result(r: &mut Reader<'_>) -> Result<KvResult, SvcWireError> {
    match r.u8()? {
        1 => {
            let len = r.u8()? as usize;
            Ok(KvResult::Found(r.bytes(len)?))
        }
        2 => Ok(KvResult::Missing),
        3 => Ok(KvResult::PutOk),
        4 => Ok(KvResult::Deleted(r.u8()? != 0)),
        5 => Ok(KvResult::StoreErr(r.u8()?)),
        t => Err(SvcWireError::BadTag(t)),
    }
}

/// Encodes a service payload to bytes (the bridge frame's payload).
pub fn encode_svc(p: &SvcPayload) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match p {
        SvcPayload::Request {
            client,
            req_id,
            op_seq,
            shard,
            epoch,
            stale_ok,
            op,
        } => {
            out.push(1);
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&req_id.to_le_bytes());
            out.extend_from_slice(&op_seq.to_le_bytes());
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            out.push(u8::from(*stale_ok));
            put_op(&mut out, op);
        }
        SvcPayload::Response {
            client,
            req_id,
            shard,
            epoch,
            body,
        } => {
            out.push(2);
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&req_id.to_le_bytes());
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            match body {
                Ok(ok) => {
                    out.push(1);
                    out.push(u8::from(ok.stale));
                    put_result(&mut out, &ok.result);
                }
                Err(e) => {
                    out.push(2);
                    match e.error {
                        SvcError::NotPrimary { epoch, primary } => {
                            out.push(1);
                            out.extend_from_slice(&epoch.to_le_bytes());
                            out.push(primary);
                        }
                        SvcError::NoQuorum => out.push(2),
                        SvcError::Recovering => out.push(3),
                        // Client-terminal variants never travel.
                        _ => unreachable!("client-side error on the wire"),
                    }
                }
            }
        }
        SvcPayload::Replicate {
            shard,
            epoch,
            index,
            client,
            op_seq,
            op,
        } => {
            out.push(3);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&client.to_le_bytes());
            out.extend_from_slice(&op_seq.to_le_bytes());
            put_op(&mut out, op);
        }
        SvcPayload::RepAck {
            shard,
            epoch,
            index,
        } => {
            out.push(4);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&index.to_le_bytes());
        }
        SvcPayload::RepNack { shard, epoch } => {
            out.push(5);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
        }
        SvcPayload::Heartbeat { seq, epochs } => {
            out.push(6);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&(epochs.len() as u16).to_le_bytes());
            for (shard, epoch) in epochs {
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
            }
        }
        SvcPayload::CatchupReq { shard } => {
            out.push(7);
            out.extend_from_slice(&shard.to_le_bytes());
        }
        SvcPayload::CatchupStart { shard, epoch, len } => {
            out.push(8);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
    }
    out
}

/// Decodes one service payload.
///
/// # Errors
///
/// Returns a [`SvcWireError`] on truncation, unknown tags, or trailing
/// bytes.
pub fn decode_svc(buf: &[u8]) -> Result<SvcPayload, SvcWireError> {
    let mut r = Reader { buf, at: 0 };
    let payload = match r.u8()? {
        1 => {
            let client = r.u32()?;
            let req_id = r.u32()?;
            let op_seq = r.u32()?;
            let shard = r.u16()?;
            let epoch = r.u32()?;
            let stale_ok = r.u8()? != 0;
            SvcPayload::Request {
                client,
                req_id,
                op_seq,
                shard,
                epoch,
                stale_ok,
                op: get_op(&mut r)?,
            }
        }
        2 => {
            let client = r.u32()?;
            let req_id = r.u32()?;
            let shard = r.u16()?;
            let epoch = r.u32()?;
            let body = match r.u8()? {
                1 => {
                    let stale = r.u8()? != 0;
                    Ok(RespOk {
                        result: get_result(&mut r)?,
                        stale,
                    })
                }
                2 => {
                    let error = match r.u8()? {
                        1 => SvcError::NotPrimary {
                            epoch: r.u32()?,
                            primary: r.u8()?,
                        },
                        2 => SvcError::NoQuorum,
                        3 => SvcError::Recovering,
                        t => return Err(SvcWireError::BadTag(t)),
                    };
                    Err(RespErr { error })
                }
                t => return Err(SvcWireError::BadTag(t)),
            };
            SvcPayload::Response {
                client,
                req_id,
                shard,
                epoch,
                body,
            }
        }
        3 => {
            let shard = r.u16()?;
            let epoch = r.u32()?;
            let index = r.u32()?;
            let client = r.u32()?;
            let op_seq = r.u32()?;
            SvcPayload::Replicate {
                shard,
                epoch,
                index,
                client,
                op_seq,
                op: get_op(&mut r)?,
            }
        }
        4 => SvcPayload::RepAck {
            shard: r.u16()?,
            epoch: r.u32()?,
            index: r.u32()?,
        },
        5 => SvcPayload::RepNack {
            shard: r.u16()?,
            epoch: r.u32()?,
        },
        6 => {
            let seq = r.u32()?;
            let n = r.u16()? as usize;
            let mut epochs = Vec::with_capacity(n);
            for _ in 0..n {
                let shard = r.u16()?;
                let epoch = r.u32()?;
                epochs.push((shard, epoch));
            }
            SvcPayload::Heartbeat { seq, epochs }
        }
        7 => SvcPayload::CatchupReq { shard: r.u16()? },
        8 => SvcPayload::CatchupStart {
            shard: r.u16()?,
            epoch: r.u32()?,
            len: r.u32()?,
        },
        t => return Err(SvcWireError::BadTag(t)),
    };
    if r.at != buf.len() {
        return Err(SvcWireError::TrailingBytes(buf.len() - r.at));
    }
    Ok(payload)
}

// -------------------------------------------------------------------
// Replica
// -------------------------------------------------------------------

/// A replica's role for its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Serves client operations and replicates to the backup.
    Primary,
    /// Applies the primary's replication stream.
    Backup,
    /// State discarded (crash rejoin or epoch fencing); rebuilding via
    /// catch-up, serving nothing.
    Recovering,
}

/// One committed log entry: the operation as executed, in order, with
/// the result the store returned. The per-shard log is the service's
/// ground truth — [`verify_log`] replays it against a fresh sequential
/// store, and catch-up streams it to rebuild a rejoined replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Issuing client uid.
    pub client: u32,
    /// The client's operation sequence number (dedup key).
    pub op_seq: u32,
    /// The operation.
    pub op: KvOp,
    /// What the store returned when the entry was applied.
    pub result: KvResult,
}

/// Outcome of applying one replicated entry at a backup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applied {
    /// Entry was fresh and is now applied; carries the recomputed
    /// result and the store completion time.
    Fresh(KvResult, Time),
    /// Entry index already applied (duplicate delivery) — ack again.
    Duplicate,
    /// Entry index is beyond the log tail: deliveries were lost (e.g.
    /// a partition) and the replica must re-replicate via catch-up.
    Gap {
        /// The replica's current log length.
        have: u32,
    },
}

/// One shard replica: the store, the applied-op log, and the dedup
/// table mapping each client to its latest `(op_seq, log index)` so
/// retried requests are answered exactly once.
#[derive(Debug)]
pub struct Replica {
    /// The shard this replica holds.
    pub shard: u16,
    /// Current epoch (fences all lower epochs).
    pub epoch: u32,
    /// Current role.
    pub role: Role,
    /// The store.
    pub store: KvStore,
    /// Applied operations, in order.
    pub log: Vec<LogEntry>,
    /// client uid → (latest op_seq, its log index).
    pub dedup: BTreeMap<u32, (u32, u32)>,
    store_config: KvStoreConfig,
}

/// Builds the per-shard store: FPGA-DRAM timing, enough buckets for the
/// workloads the service experiments run.
fn shard_store(cfg: KvStoreConfig) -> KvStore {
    KvStore::new(
        cfg,
        MemoryController::new(MemoryControllerConfig::enzian_fpga()),
    )
}

impl Replica {
    /// A fresh replica in `role` at epoch 0.
    pub fn new(shard: u16, role: Role, store_config: KvStoreConfig) -> Self {
        Replica {
            shard,
            epoch: 0,
            role,
            store: shard_store(store_config),
            log: Vec::new(),
            dedup: BTreeMap::new(),
            store_config,
        }
    }

    /// Executes `op` against the store at `now` without logging —
    /// the stale-read path and the replay helper.
    pub fn execute(&mut self, now: Time, op: &KvOp) -> (KvResult, Time) {
        match op {
            KvOp::Get { key } => {
                let out = self.store.get(now, *key);
                let res = match out.value {
                    Some(v) => KvResult::Found(v),
                    None => KvResult::Missing,
                };
                (res, out.done)
            }
            KvOp::Put { key, value } => match self.store.put(now, *key, value) {
                Ok(out) => (KvResult::PutOk, out.done),
                Err(e) => (KvResult::StoreErr(store_err_code(&e)), now),
            },
            KvOp::Delete { key } => {
                let out = self.store.delete(now, *key);
                (KvResult::Deleted(out.value), out.done)
            }
        }
    }

    /// Looks up a retried request: `Some((index, result))` when
    /// `(client, op_seq)` is already in the log.
    pub fn dedup_lookup(&self, client: u32, op_seq: u32) -> Option<(u32, KvResult)> {
        let &(seq, index) = self.dedup.get(&client)?;
        (seq == op_seq).then(|| (index, self.log[index as usize].result.clone()))
    }

    /// Primary path: executes a fresh client operation, appends it to
    /// the log, and records it in the dedup table. Returns the new
    /// entry's index, the result, and the store completion time.
    pub fn apply_fresh(
        &mut self,
        now: Time,
        client: u32,
        op_seq: u32,
        op: KvOp,
    ) -> (u32, KvResult, Time) {
        let (result, done) = self.execute(now, &op);
        let index = self.log.len() as u32;
        self.log.push(LogEntry {
            client,
            op_seq,
            op,
            result: result.clone(),
        });
        self.dedup.insert(client, (op_seq, index));
        (index, result, done)
    }

    /// Backup path: applies replicated entry `index` idempotently.
    pub fn apply_replicated(
        &mut self,
        now: Time,
        index: u32,
        client: u32,
        op_seq: u32,
        op: KvOp,
    ) -> Applied {
        let have = self.log.len() as u32;
        if index < have {
            return Applied::Duplicate;
        }
        if index > have {
            return Applied::Gap { have };
        }
        let (_, result, done) = self.apply_fresh(now, client, op_seq, op);
        let _ = result;
        let entry = self.log.last().expect("just pushed");
        Applied::Fresh(entry.result.clone(), done)
    }

    /// Discards all volatile state (crash rejoin or fencing) and enters
    /// [`Role::Recovering`]; the epoch is kept as a floor for fencing.
    pub fn reset_for_recovery(&mut self) {
        self.store = shard_store(self.store_config);
        self.log.clear();
        self.dedup.clear();
        self.role = Role::Recovering;
    }

    /// Folds the replica's externally observable state into an FNV
    /// digest (used by the cross-thread determinism battery).
    pub fn digest_into(&self, fold: &mut impl FnMut(u64)) {
        fold(u64::from(self.shard));
        fold(u64::from(self.epoch));
        fold(match self.role {
            Role::Primary => 1,
            Role::Backup => 2,
            Role::Recovering => 3,
        });
        fold(self.log.len() as u64);
        for e in &self.log {
            fold(u64::from(e.client));
            fold(u64::from(e.op_seq));
            fold(e.op.key());
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in encode_svc(&SvcPayload::Replicate {
                shard: self.shard,
                epoch: 0,
                index: 0,
                client: e.client,
                op_seq: e.op_seq,
                op: e.op.clone(),
            }) {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            fold(h);
        }
    }
}

/// Replays `log` against a fresh sequential [`KvStore`] and demands the
/// recorded result of every entry — the linearizability shadow check.
/// Acknowledged operations committed through failovers, catch-ups and
/// retries must read exactly like one sequential history.
///
/// # Errors
///
/// Returns a description of the first diverging entry.
pub fn verify_log(log: &[LogEntry], store_config: KvStoreConfig) -> Result<(), String> {
    let mut shadow = Replica::new(0, Role::Primary, store_config);
    for (i, entry) in log.iter().enumerate() {
        let (result, _) = shadow.execute(Time::ZERO, &entry.op);
        if result != entry.result {
            return Err(format!(
                "log entry {i} (client {} op_seq {}) diverged: service returned {:?}, \
                 sequential shadow returned {result:?}",
                entry.client, entry.op_seq, entry.result
            ));
        }
    }
    Ok(())
}

// -------------------------------------------------------------------
// Clients
// -------------------------------------------------------------------

/// Client workload/robustness parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientPlan {
    /// Distinct keys per client (its private working set).
    pub keys_per_client: u64,
    /// Operations to complete before retiring.
    pub ops: u64,
    /// Basis points (of 10 000) of GETs.
    pub get_bp: u64,
    /// Basis points of PUTs (the rest are DELETEs).
    pub put_bp: u64,
    /// Think time between completed operations.
    pub think: Duration,
    /// Per-attempt response timeout.
    pub timeout: Duration,
    /// First-retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff cap.
    pub backoff_max: Duration,
    /// Attempts before declaring the op failed (≥ 1).
    pub retry_budget: u32,
    /// Degrade timed-out GETs to a one-shot stale read before failing.
    pub stale_reads: bool,
}

impl ClientPlan {
    /// Defaults tuned for the service experiment's timescales.
    pub fn standard() -> Self {
        ClientPlan {
            keys_per_client: 8,
            ops: 40,
            get_bp: 5_000,
            put_bp: 4_000,
            think: Duration::from_us(2),
            backoff_base: Duration::from_us(5),
            backoff_max: Duration::from_us(40),
            timeout: Duration::from_us(25),
            retry_budget: 4,
            stale_reads: true,
        }
    }
}

/// What the client wants done after a timeout fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryDecision {
    /// Resend (possibly as a stale read) after `backoff`.
    Retry {
        /// Delay before the next attempt.
        backoff: Duration,
        /// The next attempt is a stale read.
        stale: bool,
    },
    /// Budget exhausted: give up with this terminal error.
    Fail(SvcError),
}

/// A request in flight (one logical op, possibly several attempts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingReq {
    /// Current attempt's request id.
    pub req_id: u32,
    /// The op's dedup sequence number (stable across attempts).
    pub op_seq: u32,
    /// The operation.
    pub op: KvOp,
    /// Target shard.
    pub shard: u16,
    /// First-attempt issue time (client-observed latency base).
    pub issued: Time,
    /// Attempts made so far (≥ 1).
    pub attempts: u32,
    /// Currently in the stale-read fallback phase.
    pub stale_phase: bool,
}

/// Last acknowledged mutation per key: `None` = outcome indeterminate
/// (a mutation attempt failed mid-flight), `Some(None)` = deleted,
/// `Some(Some(v))` = value `v`.
pub type AckState = Option<Option<Vec<u8>>>;

/// One seeded client: issues mixed traffic against its private key set,
/// tracks the request in flight, and remembers the last acknowledged
/// mutation per key for the end-of-run durability audit.
#[derive(Debug)]
pub struct ClientState {
    /// Globally unique client id (dedup key at the replicas).
    pub uid: u32,
    /// Operations left to complete.
    pub remaining: u64,
    /// The request in flight, if any.
    pub pending: Option<PendingReq>,
    /// key → last acknowledged mutation (see [`AckState`]).
    pub acked: BTreeMap<u64, AckState>,
    rng: SimRng,
    plan: ClientPlan,
    op_seq: u32,
    next_req_id: u32,
}

impl ClientState {
    /// Creates the client; its op stream derives from `seed` and `uid`.
    pub fn new(uid: u32, seed: u64, plan: ClientPlan) -> Self {
        ClientState {
            uid,
            remaining: plan.ops,
            pending: None,
            acked: BTreeMap::new(),
            rng: SimRng::seed_from(seed ^ (u64::from(uid) + 1).wrapping_mul(0x2545_F491_4F6C_DD1D)),
            plan,
            op_seq: 0,
            next_req_id: 0,
        }
    }

    /// The client's plan.
    pub fn plan(&self) -> &ClientPlan {
        &self.plan
    }

    /// One of the client's private keys (nonzero, disjoint between
    /// clients: the uid occupies the high bits).
    fn draw_key(&mut self) -> u64 {
        let k = self.rng.next_below(self.plan.keys_per_client);
        (u64::from(self.uid) + 1) << 32 | (k + 1)
    }

    /// Draws and registers the next operation; `None` when the client
    /// has retired. The caller routes it and schedules the timeout.
    pub fn start_op(&mut self, map: &ShardMap, now: Time) -> Option<PendingReq> {
        if self.remaining == 0 || self.pending.is_some() {
            return None;
        }
        let key = self.draw_key();
        let class = self.rng.next_below(10_000);
        let op = if class < self.plan.get_bp {
            KvOp::Get { key }
        } else if class < self.plan.get_bp + self.plan.put_bp {
            let len = 1 + self.rng.next_below(MAX_VALUE_BYTES as u64 - 1) as usize;
            let mut value = vec![0u8; len];
            self.rng.fill_bytes(&mut value);
            KvOp::Put { key, value }
        } else {
            KvOp::Delete { key }
        };
        self.op_seq += 1;
        self.next_req_id += 1;
        let pending = PendingReq {
            req_id: self.next_req_id,
            op_seq: self.op_seq,
            op,
            shard: map.shard_of(key),
            issued: now,
            attempts: 1,
            stale_phase: false,
        };
        self.pending = Some(pending.clone());
        Some(pending)
    }

    /// Re-arms the pending request for its next attempt (fresh req_id,
    /// same op_seq) and returns the refreshed copy.
    ///
    /// # Panics
    ///
    /// Panics when no request is pending.
    pub fn rearm(&mut self, stale: bool) -> PendingReq {
        self.next_req_id += 1;
        let p = self.pending.as_mut().expect("rearm without a pending op");
        p.req_id = self.next_req_id;
        p.attempts += 1;
        p.stale_phase = stale;
        p.clone()
    }

    /// Decides what to do after the pending attempt timed out or was
    /// rejected: retry with bounded exponential backoff, degrade a GET
    /// to one stale read, or fail with a typed error. Never unbounded.
    pub fn on_attempt_failed(&self) -> RetryDecision {
        let p = self.pending.as_ref().expect("no pending op");
        if p.stale_phase {
            // The stale fallback was the last resort.
            return RetryDecision::Fail(SvcError::Unavailable {
                attempts: p.attempts,
            });
        }
        if p.attempts >= self.plan.retry_budget {
            if self.plan.stale_reads && matches!(p.op, KvOp::Get { .. }) {
                return RetryDecision::Retry {
                    backoff: self.backoff_after(p.attempts),
                    stale: true,
                };
            }
            return RetryDecision::Fail(SvcError::Timeout {
                attempts: p.attempts,
            });
        }
        RetryDecision::Retry {
            backoff: self.backoff_after(p.attempts),
            stale: false,
        }
    }

    /// Bounded exponential backoff after `attempts` tries.
    pub fn backoff_after(&self, attempts: u32) -> Duration {
        let factor = 1u64 << (attempts - 1).min(16);
        self.plan
            .backoff_max
            .min(self.plan.backoff_base.saturating_mul(factor))
    }

    /// Completes the pending op with a definitive response: updates the
    /// acked map (mutations only) and retires the op. `effective` is
    /// `false` when the store rejected the op ([`KvResult::StoreErr`]) —
    /// a definitive *no-op*, so the previous acked state stays valid —
    /// and for stale-read serves, which never touch the acked map.
    ///
    /// # Panics
    ///
    /// Panics when no request is pending.
    pub fn complete_ok(&mut self, stale: bool, effective: bool) {
        let p = self.pending.take().expect("no pending op");
        if !stale && effective {
            match &p.op {
                KvOp::Put { key, value } => {
                    self.acked.insert(*key, Some(Some(value.clone())));
                }
                KvOp::Delete { key } => {
                    self.acked.insert(*key, Some(None));
                }
                KvOp::Get { .. } => {}
            }
        }
        self.remaining -= 1;
    }

    /// Completes the pending op with a terminal failure: a mutation's
    /// outcome is now indeterminate, so its key is poisoned for the
    /// durability audit.
    ///
    /// # Panics
    ///
    /// Panics when no request is pending.
    pub fn complete_failed(&mut self) {
        let p = self.pending.take().expect("no pending op");
        if p.op.is_mutation() {
            self.acked.insert(p.op.key(), None);
        }
        self.remaining -= 1;
    }

    /// `true` when the client has finished its workload.
    pub fn done(&self) -> bool {
        self.remaining == 0 && self.pending.is_none()
    }
}

// -------------------------------------------------------------------
// SLO telemetry
// -------------------------------------------------------------------

/// Collects the service-level objectives: client-observed latency per
/// op class, availability inside vs outside the configured fault
/// window, stale/degraded serves, and failover recovery latency.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRecorder {
    /// GET latency (first issue → final response, retries included).
    pub get: LatencyHistogram,
    /// PUT latency.
    pub put: LatencyHistogram,
    /// DELETE latency.
    pub delete: LatencyHistogram,
    /// Failover recovery latency (last heartbeat from the failed
    /// primary → promotion of its backup).
    pub failover: LatencyHistogram,
    /// GETs answered from possibly-stale state (degraded successes).
    pub stale_served: u64,
    /// Ops that ended in a terminal typed error.
    pub failures: u64,
    /// Retransmitted attempts.
    pub retries: u64,
    /// Attempt timeouts fired.
    pub timeouts: u64,
    /// Successful ops issued inside the fault window.
    pub ok_in_window: u64,
    /// Ops issued inside the fault window.
    pub total_in_window: u64,
    /// Successful ops issued outside the fault window.
    pub ok_out_window: u64,
    /// Ops issued outside the fault window.
    pub total_out_window: u64,
    window: Option<(Time, Time)>,
}

impl Default for SloRecorder {
    fn default() -> Self {
        SloRecorder::new(None)
    }
}

impl SloRecorder {
    /// Creates the recorder; ops issued in `[from, until)` of `window`
    /// count as "inside the fault window".
    pub fn new(window: Option<(Time, Time)>) -> Self {
        SloRecorder {
            get: LatencyHistogram::new(),
            put: LatencyHistogram::new(),
            delete: LatencyHistogram::new(),
            failover: LatencyHistogram::new(),
            stale_served: 0,
            failures: 0,
            retries: 0,
            timeouts: 0,
            ok_in_window: 0,
            total_in_window: 0,
            ok_out_window: 0,
            total_out_window: 0,
            window,
        }
    }

    fn in_window(&self, at: Time) -> bool {
        self.window
            .is_some_and(|(from, until)| at >= from && at < until)
    }

    /// Records one completed operation.
    pub fn record_op(
        &mut self,
        class: OpClass,
        issued: Time,
        finished: Time,
        ok: bool,
        stale: bool,
    ) {
        if ok {
            let latency = finished.since(issued);
            match class {
                OpClass::Get => self.get.record(latency),
                OpClass::Put => self.put.record(latency),
                OpClass::Delete => self.delete.record(latency),
            }
            if stale {
                self.stale_served += 1;
            }
        } else {
            self.failures += 1;
        }
        if self.in_window(issued) {
            self.total_in_window += 1;
            self.ok_in_window += u64::from(ok);
        } else {
            self.total_out_window += 1;
            self.ok_out_window += u64::from(ok);
        }
    }

    /// Records a completed failover.
    pub fn record_failover(&mut self, latency: Duration) {
        self.failover.record(latency);
    }

    /// Availability fraction for ops issued inside the fault window
    /// (`1.0` when no op was issued there).
    pub fn availability_in_window(&self) -> f64 {
        if self.total_in_window == 0 {
            1.0
        } else {
            self.ok_in_window as f64 / self.total_in_window as f64
        }
    }

    /// Availability fraction for ops issued outside the fault window.
    pub fn availability_out_window(&self) -> f64 {
        if self.total_out_window == 0 {
            1.0
        } else {
            self.ok_out_window as f64 / self.total_out_window as f64
        }
    }

    /// Total completed client operations recorded.
    pub fn completed(&self) -> u64 {
        self.total_in_window + self.total_out_window
    }

    /// Merges another recorder (per-board recorders fold into one).
    pub fn merge(&mut self, other: &SloRecorder) {
        self.get.merge(&other.get);
        self.put.merge(&other.put);
        self.delete.merge(&other.delete);
        self.failover.merge(&other.failover);
        self.stale_served += other.stale_served;
        self.failures += other.failures;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.ok_in_window += other.ok_in_window;
        self.total_in_window += other.total_in_window;
        self.ok_out_window += other.ok_out_window;
        self.total_out_window += other.total_out_window;
    }
}

/// Publishes the SLO tree: `{prefix}.latency.{get,put,delete}.*` and
/// `{prefix}.failover_recovery.*` through the shared histogram gauges,
/// plus availability fractions and the degradation counters.
impl Instrumented for SloRecorder {
    fn export_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        self.get
            .export_metrics(&format!("{prefix}.latency.get"), registry);
        self.put
            .export_metrics(&format!("{prefix}.latency.put"), registry);
        self.delete
            .export_metrics(&format!("{prefix}.latency.delete"), registry);
        self.failover
            .export_metrics(&format!("{prefix}.failover_recovery"), registry);
        registry.gauge_set(
            &format!("{prefix}.availability.in_window"),
            self.availability_in_window(),
        );
        registry.gauge_set(
            &format!("{prefix}.availability.out_window"),
            self.availability_out_window(),
        );
        registry.counter_set(&format!("{prefix}.ops.in_window"), self.total_in_window);
        registry.counter_set(&format!("{prefix}.ops.out_window"), self.total_out_window);
        registry.counter_set(&format!("{prefix}.stale_served"), self.stale_served);
        registry.counter_set(&format!("{prefix}.failures"), self.failures);
        registry.counter_set(&format!("{prefix}.retries"), self.retries);
        registry.counter_set(&format!("{prefix}.timeouts"), self.timeouts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> KvStoreConfig {
        KvStoreConfig {
            buckets: 64,
            ..KvStoreConfig::tiny()
        }
    }

    #[test]
    fn shard_map_places_and_alternates() {
        let m = ShardMap::new(16, 8);
        for s in 0..16 {
            let [a, b] = m.hosts(s);
            assert_ne!(a, b);
            assert_eq!(m.primary_at(s, 0), a);
            assert_eq!(m.primary_at(s, 1), b);
            assert_eq!(m.primary_at(s, 2), a);
            assert_eq!(m.backup_at(s, 1), a);
            assert!(m.is_host(a, s) && m.is_host(b, s));
        }
        // Every board hosts some shards; keys spread over all shards.
        for b in 0..8 {
            assert!(!m.shards_of(b).is_empty());
        }
        let mut hit = [false; 16];
        for k in 1..2000u64 {
            hit[m.shard_of(k) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "keys must reach every shard");
    }

    #[test]
    fn payloads_round_trip() {
        let corpus = vec![
            SvcPayload::Request {
                client: 7,
                req_id: 42,
                op_seq: 3,
                shard: 5,
                epoch: 2,
                stale_ok: false,
                op: KvOp::Put {
                    key: 0xDEAD_BEEF,
                    value: b"enzian".to_vec(),
                },
            },
            SvcPayload::Request {
                client: 1,
                req_id: 1,
                op_seq: 1,
                shard: 0,
                epoch: 0,
                stale_ok: true,
                op: KvOp::Get { key: 9 },
            },
            SvcPayload::Response {
                client: 7,
                req_id: 42,
                shard: 5,
                epoch: 2,
                body: Ok(RespOk {
                    result: KvResult::Found(b"xyz".to_vec()),
                    stale: true,
                }),
            },
            SvcPayload::Response {
                client: 7,
                req_id: 43,
                shard: 5,
                epoch: 3,
                body: Err(RespErr {
                    error: SvcError::NotPrimary {
                        epoch: 3,
                        primary: 6,
                    },
                }),
            },
            SvcPayload::Response {
                client: 2,
                req_id: 9,
                shard: 1,
                epoch: 0,
                body: Err(RespErr {
                    error: SvcError::NoQuorum,
                }),
            },
            SvcPayload::Replicate {
                shard: 5,
                epoch: 2,
                index: 17,
                client: 7,
                op_seq: 3,
                op: KvOp::Delete { key: 11 },
            },
            SvcPayload::RepAck {
                shard: 5,
                epoch: 2,
                index: 17,
            },
            SvcPayload::RepNack { shard: 5, epoch: 4 },
            SvcPayload::Heartbeat {
                seq: 99,
                epochs: vec![(0, 1), (7, 4)],
            },
            SvcPayload::CatchupReq { shard: 3 },
            SvcPayload::CatchupStart {
                shard: 3,
                epoch: 4,
                len: 120,
            },
        ];
        for p in corpus {
            let bytes = encode_svc(&p);
            assert_eq!(decode_svc(&bytes).unwrap(), p, "round trip failed");
            // Truncations are always detected.
            for cut in 0..bytes.len() {
                assert!(decode_svc(&bytes[..cut]).is_err(), "cut {cut} accepted");
            }
            // Trailing garbage is rejected.
            let mut long = bytes.clone();
            long.push(0);
            assert!(matches!(
                decode_svc(&long),
                Err(SvcWireError::TrailingBytes(1))
            ));
        }
    }

    #[test]
    fn replica_dedups_retries_exactly_once() {
        let mut r = Replica::new(0, Role::Primary, tiny_cfg());
        let op = KvOp::Put {
            key: 5,
            value: b"v1".to_vec(),
        };
        let (i0, res0, _) = r.apply_fresh(Time::ZERO, 1, 1, op.clone());
        assert_eq!(res0, KvResult::PutOk);
        // A retried delete executes once; the retry returns the cache.
        let del = KvOp::Delete { key: 5 };
        let (i1, res1, _) = r.apply_fresh(Time::ZERO, 1, 2, del);
        assert_eq!(res1, KvResult::Deleted(true));
        assert_eq!(r.dedup_lookup(1, 2), Some((i1, KvResult::Deleted(true))));
        assert_eq!(r.dedup_lookup(1, 1), None, "only the latest op is cached");
        assert_eq!(r.log.len(), 2);
        assert_eq!(i0, 0);
        assert_eq!(i1, 1);
    }

    #[test]
    fn backup_applies_in_order_and_reports_gaps() {
        let mut b = Replica::new(0, Role::Backup, tiny_cfg());
        let op = KvOp::Put {
            key: 3,
            value: b"x".to_vec(),
        };
        match b.apply_replicated(Time::ZERO, 0, 9, 1, op.clone()) {
            Applied::Fresh(KvResult::PutOk, _) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            b.apply_replicated(Time::ZERO, 0, 9, 1, op.clone()),
            Applied::Duplicate
        );
        assert_eq!(
            b.apply_replicated(Time::ZERO, 5, 9, 6, op),
            Applied::Gap { have: 1 }
        );
    }

    #[test]
    fn recovery_reset_drops_state_but_keeps_epoch() {
        let mut r = Replica::new(2, Role::Primary, tiny_cfg());
        r.epoch = 3;
        r.apply_fresh(
            Time::ZERO,
            1,
            1,
            KvOp::Put {
                key: 1,
                value: b"a".to_vec(),
            },
        );
        r.reset_for_recovery();
        assert_eq!(r.role, Role::Recovering);
        assert_eq!(r.epoch, 3);
        assert!(r.log.is_empty() && r.dedup.is_empty());
        assert!(r.store.is_empty());
    }

    #[test]
    fn shadow_replay_accepts_real_logs_and_catches_tampering() {
        let mut r = Replica::new(0, Role::Primary, tiny_cfg());
        let mut rng = SimRng::seed_from(11);
        for seq in 1..=200u32 {
            let key = 1 + rng.next_below(20);
            let op = match rng.next_below(3) {
                0 => KvOp::Get { key },
                1 => {
                    let mut v = vec![0u8; 1 + rng.next_below(16) as usize];
                    rng.fill_bytes(&mut v);
                    KvOp::Put { key, value: v }
                }
                _ => KvOp::Delete { key },
            };
            r.apply_fresh(Time::ZERO, 1, seq, op);
        }
        verify_log(&r.log, tiny_cfg()).expect("honest log must replay");
        // Losing an acknowledged write is caught.
        let mut tampered = r.log.clone();
        let put_at = tampered
            .iter()
            .position(|e| matches!(e.op, KvOp::Put { .. }))
            .unwrap();
        tampered.remove(put_at);
        assert!(
            verify_log(&tampered, tiny_cfg()).is_err()
                || tampered
                    .iter()
                    .all(|e| e.op.key() != r.log[put_at].op.key()),
            "dropping a write must eventually diverge"
        );
        // Flipping a recorded result is caught immediately.
        let mut flipped = r.log.clone();
        flipped[0].result = KvResult::StoreErr(9);
        assert!(verify_log(&flipped, tiny_cfg()).is_err());
    }

    #[test]
    fn client_draws_bounded_ops_and_tracks_acks() {
        let map = ShardMap::new(8, 4);
        let mut c = ClientState::new(3, 42, ClientPlan::standard());
        let p = c.start_op(&map, Time::ZERO).expect("first op");
        assert_eq!(p.attempts, 1);
        assert!(c.start_op(&map, Time::ZERO).is_none(), "one op at a time");
        // Key is private to the client and nonzero.
        assert_eq!(p.op.key() >> 32, u64::from(c.uid) + 1);
        match c.pending.as_ref().unwrap().op.clone() {
            KvOp::Put { key, value } => {
                c.complete_ok(false, true);
                assert_eq!(c.acked.get(&key), Some(&Some(Some(value))));
            }
            KvOp::Delete { key } => {
                c.complete_ok(false, true);
                assert_eq!(c.acked.get(&key), Some(&Some(None)));
            }
            KvOp::Get { .. } => {
                c.complete_ok(false, true);
                assert!(c.acked.is_empty());
            }
        }
        assert_eq!(c.remaining, c.plan().ops - 1);
    }

    #[test]
    fn retry_decisions_are_bounded_and_degrade_gets() {
        let map = ShardMap::new(8, 4);
        let mut c = ClientState::new(0, 7, ClientPlan::standard());
        // Find a GET op.
        loop {
            let p = c.start_op(&map, Time::ZERO).expect("ops left");
            if matches!(p.op, KvOp::Get { .. }) {
                break;
            }
            c.complete_ok(false, true);
        }
        // Exhaust the budget: backoffs double then cap.
        let mut last = Duration::from_ns(0);
        for _ in 1..c.plan().retry_budget {
            match c.on_attempt_failed() {
                RetryDecision::Retry { backoff, stale } => {
                    assert!(!stale);
                    assert!(backoff >= last);
                    assert!(backoff <= c.plan().backoff_max);
                    last = backoff;
                    c.rearm(false);
                }
                RetryDecision::Fail(_) => panic!("failed inside budget"),
            }
        }
        // Budget spent: a GET degrades to one stale attempt...
        match c.on_attempt_failed() {
            RetryDecision::Retry { stale, .. } => assert!(stale),
            RetryDecision::Fail(_) => panic!("GET must degrade first"),
        }
        c.rearm(true);
        // ...and the stale attempt failing is terminal and typed.
        match c.on_attempt_failed() {
            RetryDecision::Fail(SvcError::Unavailable { attempts }) => {
                assert_eq!(attempts, c.plan().retry_budget + 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        c.complete_failed();
        assert!(c.acked.is_empty(), "failed GET poisons nothing");
    }

    #[test]
    fn failed_mutations_poison_their_key() {
        let map = ShardMap::new(8, 4);
        let mut c = ClientState::new(1, 9, ClientPlan::standard());
        loop {
            let p = c.start_op(&map, Time::ZERO).expect("ops left");
            if p.op.is_mutation() {
                let key = p.op.key();
                c.complete_failed();
                assert_eq!(c.acked.get(&key), Some(&None), "indeterminate outcome");
                break;
            }
            c.complete_ok(false, true);
        }
    }

    #[test]
    fn slo_recorder_buckets_by_window_and_exports() {
        let w = Some((Time::from_ns(1_000), Time::from_ns(2_000)));
        let mut slo = SloRecorder::new(w);
        slo.record_op(
            OpClass::Get,
            Time::from_ns(500),
            Time::from_ns(600),
            true,
            false,
        );
        slo.record_op(
            OpClass::Put,
            Time::from_ns(1_500),
            Time::from_ns(1_900),
            false,
            false,
        );
        slo.record_op(
            OpClass::Get,
            Time::from_ns(1_600),
            Time::from_ns(1_700),
            true,
            true,
        );
        assert_eq!(slo.availability_out_window(), 1.0);
        assert_eq!(slo.availability_in_window(), 0.5);
        assert_eq!(slo.stale_served, 1);
        assert_eq!(slo.failures, 1);
        assert_eq!(slo.completed(), 3);
        let mut reg = MetricsRegistry::new();
        slo.export_metrics("svc", &mut reg);
        assert_eq!(reg.counter("svc.latency.get.count"), 2);
        assert_eq!(reg.gauge("svc.availability.in_window"), Some(0.5));
        assert_eq!(reg.counter("svc.failures"), 1);
        // Merge matches bulk.
        let mut a = SloRecorder::new(w);
        let mut b = SloRecorder::new(w);
        a.record_op(
            OpClass::Get,
            Time::from_ns(500),
            Time::from_ns(600),
            true,
            false,
        );
        b.record_op(
            OpClass::Put,
            Time::from_ns(1_500),
            Time::from_ns(1_900),
            false,
            false,
        );
        b.record_op(
            OpClass::Get,
            Time::from_ns(1_600),
            Time::from_ns(1_700),
            true,
            true,
        );
        a.merge(&b);
        assert_eq!(a, slo);
    }
}
