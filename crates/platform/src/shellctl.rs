//! CPU control of the FPGA shell over ECI I/O registers (§4.5).
//!
//! *"Our default environment is a port of the open-source Coyote shell.
//! This allows the rest of the FPGA to be dynamically reconfigured by
//! the CPU over ECI."* This module is that control path: the CPU writes
//! a small command block into the shell's uncached I/O register window
//! (carried by ECI's I/O virtual channel), and the shell executes slot
//! loads and service grants, reporting status back through a readable
//! register.
//!
//! Register map (8-byte registers in the FPGA's I/O window):
//!
//! ```text
//! 0x00  CMD      command opcode (1 = load app, 2 = grant service)
//! 0x08  ARG0     slot id
//! 0x10  ARG1     bitstream bytes (load) / service id (grant)
//! 0x18  DOORBELL writing 1 executes the command block
//! 0x20  STATUS   0 = idle, 1 = busy, 2 = ok, 3 = error
//! ```

use enzian_eci::EciSystem;
use enzian_mem::{Addr, NodeId};
use enzian_shell::{AppImage, Service, Shell, SlotId};
use enzian_sim::Time;

/// The shell's register window base in the FPGA I/O space.
pub const SHELL_REG_BASE: u64 = 0xF000_0000;

const REG_CMD: u64 = SHELL_REG_BASE;
const REG_ARG0: u64 = SHELL_REG_BASE + 0x08;
const REG_ARG1: u64 = SHELL_REG_BASE + 0x10;
const REG_DOORBELL: u64 = SHELL_REG_BASE + 0x18;
const REG_STATUS: u64 = SHELL_REG_BASE + 0x20;

/// STATUS register values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum ShellStatus {
    /// No command executed yet.
    Idle = 0,
    /// A load is in progress.
    Busy = 1,
    /// Last command succeeded.
    Ok = 2,
    /// Last command failed.
    Error = 3,
}

/// Commands the CPU can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShellCommand {
    /// Load a partial bitstream of the given size into a slot.
    LoadApp {
        /// Target slot.
        slot: SlotId,
        /// Partial bitstream size, bytes.
        bitstream_bytes: u64,
    },
    /// Grant a service to a slot's running application.
    Grant {
        /// Target slot.
        slot: SlotId,
        /// Service to grant.
        service: Service,
    },
}

fn service_id(s: Service) -> u64 {
    match s {
        Service::DramController => 1,
        Service::TcpStack => 2,
        Service::RdmaStack => 3,
        Service::EciBridge => 4,
    }
}

fn service_from_id(id: u64) -> Option<Service> {
    Some(match id {
        1 => Service::DramController,
        2 => Service::TcpStack,
        3 => Service::RdmaStack,
        4 => Service::EciBridge,
        _ => return None,
    })
}

/// The FPGA-side controller: applies doorbell'd command blocks from the
/// I/O window to a [`Shell`].
#[derive(Debug)]
pub struct ShellController {
    shell: Shell,
    /// Pending load completion, if a load is in flight.
    load_ready: Option<Time>,
    commands: u64,
}

impl ShellController {
    /// Wraps a shell.
    pub fn new(shell: Shell) -> Self {
        ShellController {
            shell,
            load_ready: None,
            commands: 0,
        }
    }

    /// The wrapped shell.
    pub fn shell_mut(&mut self) -> &mut Shell {
        &mut self.shell
    }

    /// Commands executed.
    pub fn commands_executed(&self) -> u64 {
        self.commands
    }

    /// CPU-side helper: writes the command block and rings the doorbell
    /// over ECI, then services it FPGA-side. Returns the final status
    /// and the completion time at the CPU.
    pub fn issue(
        &mut self,
        sys: &mut EciSystem,
        now: Time,
        cmd: ShellCommand,
    ) -> (ShellStatus, Time) {
        // CPU writes the block through uncached I/O over ECI.
        let (op, arg0, arg1) = match cmd {
            ShellCommand::LoadApp {
                slot,
                bitstream_bytes,
            } => (1u64, u64::from(slot.0), bitstream_bytes),
            ShellCommand::Grant { slot, service } => (2, u64::from(slot.0), service_id(service)),
        };
        let t = sys.io_write(now, NodeId::Cpu, Addr(REG_CMD), 8, op);
        let t = sys.io_write(t, NodeId::Cpu, Addr(REG_ARG0), 8, arg0);
        let t = sys.io_write(t, NodeId::Cpu, Addr(REG_ARG1), 8, arg1);
        let t = sys.io_write(t, NodeId::Cpu, Addr(REG_DOORBELL), 8, 1);

        // FPGA side executes the block at doorbell time and posts the
        // status into its own register window for the CPU to poll.
        self.commands += 1;
        let status = self.execute(sys, t);
        sys.io_write_local(NodeId::Fpga, Addr(REG_STATUS), status as u64);

        // CPU polls STATUS (one I/O read round trip).
        let (raw, done) = sys.io_read(t, NodeId::Cpu, Addr(REG_STATUS), 8);
        let final_status = match raw {
            0 => ShellStatus::Idle,
            1 => ShellStatus::Busy,
            2 => ShellStatus::Ok,
            _ => ShellStatus::Error,
        };
        (final_status, done)
    }

    fn execute(&mut self, sys: &mut EciSystem, now: Time) -> ShellStatus {
        let op = sys.io_read_local(NodeId::Fpga, Addr(REG_CMD));
        let arg0 = sys.io_read_local(NodeId::Fpga, Addr(REG_ARG0));
        let arg1 = sys.io_read_local(NodeId::Fpga, Addr(REG_ARG1));
        match op {
            1 => {
                let slot = SlotId(arg0 as u8);
                let name = format!("app-slot{}", arg0);
                match self.shell.load_app(now, slot, AppImage::new(name, arg1)) {
                    Ok(ready) => {
                        self.load_ready = Some(ready);
                        ShellStatus::Ok
                    }
                    Err(_) => ShellStatus::Error,
                }
            }
            2 => {
                let slot = SlotId(arg0 as u8);
                let Some(service) = service_from_id(arg1) else {
                    return ShellStatus::Error;
                };
                // Grants require the app to be running: settle any
                // pending load first.
                let at = self.load_ready.unwrap_or(now).max(now);
                match self.shell.grant(at, slot, service) {
                    Ok(()) => ShellStatus::Ok,
                    Err(_) => ShellStatus::Error,
                }
            }
            _ => ShellStatus::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enzian_eci::EciSystemConfig;

    fn setup() -> (ShellController, EciSystem) {
        (
            ShellController::new(Shell::new(2)),
            EciSystem::new(EciSystemConfig::enzian()),
        )
    }

    #[test]
    fn cpu_loads_an_app_over_eci() {
        let (mut ctl, mut sys) = setup();
        let (status, t) = ctl.issue(
            &mut sys,
            Time::ZERO,
            ShellCommand::LoadApp {
                slot: SlotId(0),
                bitstream_bytes: 8_000_000,
            },
        );
        assert_eq!(status, ShellStatus::Ok);
        assert!(t > Time::ZERO);
        // The load takes configuration time; after it, the app runs.
        let later = t + enzian_sim::Duration::from_ms(100);
        assert!(ctl.shell_mut().is_running(later, SlotId(0)));
        sys.checker().assert_clean();
    }

    #[test]
    fn grant_after_load_through_registers() {
        let (mut ctl, mut sys) = setup();
        let (_, t) = ctl.issue(
            &mut sys,
            Time::ZERO,
            ShellCommand::LoadApp {
                slot: SlotId(1),
                bitstream_bytes: 4_000_000,
            },
        );
        let (status, _) = ctl.issue(
            &mut sys,
            t + enzian_sim::Duration::from_ms(50),
            ShellCommand::Grant {
                slot: SlotId(1),
                service: Service::EciBridge,
            },
        );
        assert_eq!(status, ShellStatus::Ok);
        assert!(ctl
            .shell_mut()
            .check_service(SlotId(1), Service::EciBridge)
            .is_ok());
    }

    #[test]
    fn bad_slot_reports_error_status() {
        let (mut ctl, mut sys) = setup();
        let (status, _) = ctl.issue(
            &mut sys,
            Time::ZERO,
            ShellCommand::LoadApp {
                slot: SlotId(9),
                bitstream_bytes: 1,
            },
        );
        assert_eq!(status, ShellStatus::Error);
    }

    #[test]
    fn grant_without_running_app_errors() {
        let (mut ctl, mut sys) = setup();
        let (status, _) = ctl.issue(
            &mut sys,
            Time::ZERO,
            ShellCommand::Grant {
                slot: SlotId(0),
                service: Service::TcpStack,
            },
        );
        assert_eq!(status, ShellStatus::Error);
    }

    #[test]
    fn commands_travel_on_the_io_vc() {
        let (mut ctl, mut sys) = setup();
        let before = sys.stats().io_ops;
        ctl.issue(
            &mut sys,
            Time::ZERO,
            ShellCommand::LoadApp {
                slot: SlotId(0),
                bitstream_bytes: 1_000,
            },
        );
        // 4 writes + 1 status read from the CPU.
        assert_eq!(sys.stats().io_ops, before + 5);
    }
}
