//! Enzian machine assembly and the paper's evaluation drivers.
//!
//! This crate is the top of the stack: it assembles the complete machine
//! model ([`machine`]), captures the commercial platforms Enzian is
//! compared against ([`presets`]), and provides one driver per table and
//! figure of the paper's evaluation section ([`experiments`]). Each
//! driver returns structured rows and renders the same series the paper
//! plots, so `EXPERIMENTS.md` can record paper-vs-measured values.

pub mod bdk;
pub mod catapult;
pub mod cluster;
pub mod devicetree;
pub mod experiments;
pub mod machine;
pub mod presets;
pub mod service;
pub mod shellctl;
pub mod traffic;

pub use bdk::BdkConsole;
pub use catapult::BumpInTheWire;
pub use cluster::{
    BoardId, ClusterRunReport, ClusterWorkload, EnzianCluster, FlowStats, BRIDGE_HEADER,
};
pub use devicetree::{render_dts, DeviceTreeOptions};
pub use machine::{EnzianMachine, MachineConfig};
pub use presets::PlatformPreset;
pub use service::{FaultScenario, ServiceConfig, ServiceRunReport};
pub use shellctl::{ShellCommand, ShellController, ShellStatus};
pub use traffic::{TrafficRunReport, TrafficStack, TrafficWorkload};
