//! Multi-board Enzian clusters with a coherence bridge (§6).
//!
//! *"One reason that Enzian has such large network bandwidth (480 Gb/s)
//! is to enable, e.g., many boards to be connected together into a
//! single, large multiprocessor (with or without cache coherence)"* and
//! *"on Enzian [remote memory is accessible] by extending the cache
//! coherency protocol via a 'bridge' implemented on the FPGA."*
//!
//! [`EnzianCluster`] connects N boards through their FPGA-side 100 Gb/s
//! links. A *global* physical address space is striped across boards;
//! each board's FPGA runs a bridge that forwards line requests for
//! remote-board addresses over the fabric to the owning board, where
//! they are served through that board's own coherent ECI system. Remote
//! lines are not cached by the bridge (the safe baseline the paper's
//! follow-on work starts from), so there is no cross-board coherence
//! state to maintain — every access observes the owner's current value.

use enzian_eci::{EciSystem, EciSystemConfig};
use enzian_mem::Addr;
use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_sim::{Duration, Time};

/// Identifies a board in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoardId(pub u8);

/// A cluster of Enzian boards behind a full-mesh of 100G links.
pub struct EnzianCluster {
    boards: Vec<EciSystem>,
    /// links[i][j] for i < j: the full-duplex link between boards i, j.
    links: Vec<Vec<Option<EthLink>>>,
    /// Bytes of CPU-homed memory each board contributes to the global
    /// space.
    slice_bytes: u64,
    /// Bridge processing per forwarded request (FPGA pipeline).
    bridge_latency: Duration,
    remote_reads: u64,
    remote_writes: u64,
}

impl std::fmt::Debug for EnzianCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnzianCluster")
            .field("boards", &self.boards.len())
            .field("slice_bytes", &self.slice_bytes)
            .finish()
    }
}

/// Header bytes of a bridge message on the fabric.
const BRIDGE_HEADER: u64 = 24;

impl EnzianCluster {
    /// Builds an `n`-board cluster, each contributing `slice_bytes` of
    /// CPU memory to the global space (board `i` owns global addresses
    /// `[i * slice, (i+1) * slice)`).
    ///
    /// # Panics
    ///
    /// Panics for fewer than 2 boards or a slice exceeding a board's
    /// CPU memory.
    pub fn new(n: usize, slice_bytes: u64) -> Self {
        assert!(n >= 2, "a cluster needs at least two boards");
        let cfg = EciSystemConfig::enzian();
        assert!(
            slice_bytes <= cfg.map.cpu_bytes(),
            "slice exceeds a board's CPU memory"
        );
        let boards = (0..n).map(|_| EciSystem::new(cfg)).collect();
        let mut links = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::with_capacity(n);
            for j in 0..n {
                row.push((j > i).then(|| EthLink::new(EthLinkConfig::hundred_gig())));
            }
            links.push(row);
        }
        EnzianCluster {
            boards,
            links,
            slice_bytes,
            bridge_latency: Duration::from_ns(150),
            remote_reads: 0,
            remote_writes: 0,
        }
    }

    /// Number of boards.
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// `true` when the cluster has no boards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }

    /// Total global memory exposed, bytes.
    pub fn global_bytes(&self) -> u64 {
        self.slice_bytes * self.boards.len() as u64
    }

    /// The board owning a global address, and the local address there.
    ///
    /// # Panics
    ///
    /// Panics on addresses beyond the global space.
    pub fn owner_of(&self, global: u64) -> (BoardId, Addr) {
        assert!(global < self.global_bytes(), "address beyond global space");
        let board = (global / self.slice_bytes) as u8;
        (BoardId(board), Addr(global % self.slice_bytes))
    }

    /// Direct access to one board's coherent system (e.g. to run local
    /// workloads or inspect checkers).
    pub fn board(&mut self, id: BoardId) -> &mut EciSystem {
        &mut self.boards[usize::from(id.0)]
    }

    /// `(remote reads, remote writes)` bridged so far.
    pub fn bridge_stats(&self) -> (u64, u64) {
        (self.remote_reads, self.remote_writes)
    }

    fn fabric_send(&mut self, from: BoardId, to: BoardId, now: Time, payload: u64) -> Time {
        let (a, b) = (usize::from(from.0.min(to.0)), usize::from(from.0.max(to.0)));
        let link = self.links[a][b].as_mut().expect("mesh link exists");
        if usize::from(from.0) == a {
            link.send_a_to_b(now, payload + BRIDGE_HEADER)
        } else {
            link.send_b_to_a(now, payload + BRIDGE_HEADER)
        }
    }

    /// Reads one 128-byte line of the global space from `requester`'s
    /// CPU. Local slices go through the board's own L2/ECI; remote
    /// slices are bridged over the fabric and served coherently at the
    /// owner.
    pub fn read_line(&mut self, requester: BoardId, now: Time, global: u64) -> ([u8; 128], Time) {
        let (owner, local) = self.owner_of(global);
        if owner == requester {
            return self.boards[usize::from(owner.0)].cpu_read_line(now, local);
        }
        self.remote_reads += 1;
        // Request crosses the fabric (header only)...
        let arrived = self.fabric_send(requester, owner, now, 0) + self.bridge_latency;
        // ...the owner's FPGA serves it through its own coherent system
        // (so it observes any dirty data in the owner's L2)...
        let (data, served) = self.boards[usize::from(owner.0)].fpga_read_line(arrived, local);
        // ...and the line returns.
        let done = self.fabric_send(owner, requester, served, 128) + self.bridge_latency;
        (data, done)
    }

    /// Writes one line of the global space from `requester`'s CPU, with
    /// the same local/remote split.
    pub fn write_line(
        &mut self,
        requester: BoardId,
        now: Time,
        global: u64,
        data: &[u8; 128],
    ) -> Time {
        let (owner, local) = self.owner_of(global);
        if owner == requester {
            return self.boards[usize::from(owner.0)].cpu_write_line(now, local, data);
        }
        self.remote_writes += 1;
        let arrived = self.fabric_send(requester, owner, now, 128) + self.bridge_latency;
        let committed = self.boards[usize::from(owner.0)].fpga_write_line(arrived, local, data);
        // Ack back to the requester.
        self.fabric_send(owner, requester, committed, 0) + self.bridge_latency
    }

    /// Asserts every board's protocol checker is clean.
    ///
    /// # Panics
    ///
    /// Panics with the first violation found.
    pub fn assert_all_clean(&self) {
        for (i, b) in self.boards.iter().enumerate() {
            assert!(
                b.checker().violations().is_empty(),
                "board {i}: {:?}",
                b.checker().violations()
            );
        }
    }
}

/// Publishes bridge counters (`prefix.bridge.*`) plus every board's full
/// metric tree under `prefix.board<i>.*`.
impl enzian_sim::Instrumented for EnzianCluster {
    fn export_metrics(&self, prefix: &str, registry: &mut enzian_sim::MetricsRegistry) {
        registry.counter_set(&format!("{prefix}.bridge.remote_reads"), self.remote_reads);
        registry.counter_set(
            &format!("{prefix}.bridge.remote_writes"),
            self.remote_writes,
        );
        for (i, b) in self.boards.iter().enumerate() {
            b.export_metrics(&format!("{prefix}.board{i}"), registry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    fn cluster() -> EnzianCluster {
        EnzianCluster::new(3, 64 * MIB)
    }

    #[test]
    fn global_space_is_striped_across_boards() {
        let c = cluster();
        assert_eq!(c.global_bytes(), 192 * MIB);
        assert_eq!(c.owner_of(0), (BoardId(0), Addr(0)));
        assert_eq!(c.owner_of(64 * MIB), (BoardId(1), Addr(0)));
        assert_eq!(c.owner_of(130 * MIB), (BoardId(2), Addr(2 * MIB)));
    }

    #[test]
    fn remote_write_read_roundtrip() {
        let mut c = cluster();
        let mut line = [0u8; 128];
        line[..7].copy_from_slice(b"bridged");
        // Board 0 writes into board 2's slice; board 1 reads it.
        let g = 2 * 64 * MIB + 4096;
        let t = c.write_line(BoardId(0), Time::ZERO, g, &line);
        let (read, _) = c.read_line(BoardId(1), t, g);
        assert_eq!(read, line);
        assert_eq!(c.bridge_stats(), (1, 1));
        c.assert_all_clean();
    }

    #[test]
    fn remote_reads_observe_owner_cached_dirty_data() {
        // The owner's CPU dirties a line in its L2; a bridged read from
        // another board must see it (served through the owner's ECI).
        let mut c = cluster();
        let g = 64 * MIB + 128; // board 1's slice
        let mut line = [0u8; 128];
        line[0] = 0xEE;
        let t = {
            let owner = c.board(BoardId(1));
            owner.cpu_write_line(Time::ZERO, Addr(128), &line)
        };
        let (read, _) = c.read_line(BoardId(0), t, g);
        assert_eq!(read[0], 0xEE);
        c.assert_all_clean();
    }

    #[test]
    fn local_access_is_much_faster_than_bridged() {
        let mut c = cluster();
        let t0 = Time::ZERO;
        let (_, t_local) = c.read_line(BoardId(0), t0, 4096);
        let local = t_local.since(t0);
        let (_, t_remote) = c.read_line(BoardId(0), t_local, 64 * MIB + 4096);
        let remote = t_remote.since(t_local);
        assert!(
            remote > local * 2,
            "bridged read ({remote}) should cost well over a local one ({local})"
        );
        // But still microseconds, not milliseconds: this is the point of
        // a native fabric bridge vs an RPC stack.
        assert!(remote < Duration::from_us(10), "bridged read {remote}");
    }

    #[test]
    fn all_pairs_can_communicate() {
        let mut c = cluster();
        let mut t = Time::ZERO;
        for src in 0..3u8 {
            for dst in 0..3u8 {
                if src == dst {
                    continue;
                }
                let g = u64::from(dst) * 64 * MIB + u64::from(src) * 1024;
                let line = [src ^ dst; 128];
                t = c.write_line(BoardId(src), t, g, &line);
                let (read, t2) = c.read_line(BoardId(src), t, g);
                assert_eq!(read, line);
                t = t2;
            }
        }
        c.assert_all_clean();
    }

    #[test]
    #[should_panic(expected = "beyond global space")]
    fn out_of_space_address_panics() {
        let mut c = cluster();
        c.read_line(BoardId(0), Time::ZERO, 192 * MIB);
    }

    #[test]
    #[should_panic(expected = "at least two boards")]
    fn single_board_cluster_rejected() {
        let _ = EnzianCluster::new(1, MIB);
    }
}
