//! Multi-board Enzian clusters with a coherence bridge (§6).
//!
//! *"One reason that Enzian has such large network bandwidth (480 Gb/s)
//! is to enable, e.g., many boards to be connected together into a
//! single, large multiprocessor (with or without cache coherence)"* and
//! *"on Enzian [remote memory is accessible] by extending the cache
//! coherency protocol via a 'bridge' implemented on the FPGA."*
//!
//! [`EnzianCluster`] connects N boards through their FPGA-side 100 Gb/s
//! links. A *global* physical address space is striped across boards;
//! each board's FPGA runs a bridge that forwards line requests for
//! remote-board addresses over the fabric to the owning board, where
//! they are served through that board's own coherent ECI system. Remote
//! lines are not cached by the bridge (the safe baseline the paper's
//! follow-on work starts from), so there is no cross-board coherence
//! state to maintain — every access observes the owner's current value.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use enzian_eci::bridge::{
    decode_bridge, encode_bridge, BridgeMsg, BridgeOp, BRIDGE_OVERHEAD_BYTES,
};
use enzian_eci::link::fault_targets;
use enzian_eci::system::TXN_STALL_TARGET;
use enzian_eci::{EciSystem, EciSystemConfig};
use enzian_mem::Addr;
use enzian_net::eth::{EthLink, EthLinkConfig, FRAME_OVERHEAD_BYTES};
use enzian_sim::par::{run_conservative, Envelope, EpochWindow, ParConfig, Shard};
use enzian_sim::{
    Channel, ChannelConfig, Duration, FaultPlan, FaultSpec, MetricsRegistry, SimRng, Time,
};

/// Identifies a board in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoardId(pub u8);

/// A cluster of Enzian boards behind a full-mesh of 100G links.
pub struct EnzianCluster {
    boards: Vec<EciSystem>,
    /// links[i][j] for i < j: the full-duplex link between boards i, j.
    links: Vec<Vec<Option<EthLink>>>,
    /// Bytes of CPU-homed memory each board contributes to the global
    /// space.
    slice_bytes: u64,
    /// Bridge processing per forwarded request (FPGA pipeline).
    bridge_latency: Duration,
    /// Per-board system configuration (shards are rebuilt from it).
    board_config: EciSystemConfig,
    /// Fabric link parameters, shared by the mesh and the shard engine.
    link_config: EthLinkConfig,
    remote_reads: u64,
    remote_writes: u64,
}

impl std::fmt::Debug for EnzianCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnzianCluster")
            .field("boards", &self.boards.len())
            .field("slice_bytes", &self.slice_bytes)
            .finish()
    }
}

/// Header bytes of a bridge message on the fabric (the framed codec's
/// 20-byte header plus its CRC-32 trailer; see
/// [`enzian_eci::bridge::BRIDGE_OVERHEAD_BYTES`]).
pub const BRIDGE_HEADER: u64 = 24;
const _: () = assert!(BRIDGE_HEADER == BRIDGE_OVERHEAD_BYTES);

impl EnzianCluster {
    /// Builds an `n`-board cluster, each contributing `slice_bytes` of
    /// CPU memory to the global space (board `i` owns global addresses
    /// `[i * slice, (i+1) * slice)`).
    ///
    /// # Panics
    ///
    /// Panics for fewer than 2 boards or a slice exceeding a board's
    /// CPU memory.
    pub fn new(n: usize, slice_bytes: u64) -> Self {
        Self::with_board_config(n, slice_bytes, EciSystemConfig::enzian())
    }

    /// [`EnzianCluster::new`] with an explicit per-board configuration
    /// (e.g. [`EciSystemConfig::with_capture_trace`] for runs whose
    /// traces feed the determinism battery's digests).
    ///
    /// # Panics
    ///
    /// Panics for fewer than 2 boards or a slice exceeding a board's
    /// CPU memory.
    pub fn with_board_config(n: usize, slice_bytes: u64, cfg: EciSystemConfig) -> Self {
        assert!(n >= 2, "a cluster needs at least two boards");
        assert!(
            slice_bytes <= cfg.map.cpu_bytes(),
            "slice exceeds a board's CPU memory"
        );
        let link_config = EthLinkConfig::hundred_gig();
        let boards = (0..n).map(|_| EciSystem::new(cfg)).collect();
        let mut links = Vec::with_capacity(n);
        for i in 0..n {
            let mut row = Vec::with_capacity(n);
            for j in 0..n {
                row.push((j > i).then(|| EthLink::new(link_config)));
            }
            links.push(row);
        }
        EnzianCluster {
            boards,
            links,
            slice_bytes,
            bridge_latency: Duration::from_ns(150),
            board_config: cfg,
            link_config,
            remote_reads: 0,
            remote_writes: 0,
        }
    }

    /// Number of boards.
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// `true` when the cluster has no boards (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }

    /// Total global memory exposed, bytes.
    pub fn global_bytes(&self) -> u64 {
        self.slice_bytes * self.boards.len() as u64
    }

    /// The board owning a global address, and the local address there.
    ///
    /// # Panics
    ///
    /// Panics on addresses beyond the global space.
    pub fn owner_of(&self, global: u64) -> (BoardId, Addr) {
        assert!(global < self.global_bytes(), "address beyond global space");
        let board = (global / self.slice_bytes) as u8;
        (BoardId(board), Addr(global % self.slice_bytes))
    }

    /// Direct access to one board's coherent system (e.g. to run local
    /// workloads or inspect checkers).
    pub fn board(&mut self, id: BoardId) -> &mut EciSystem {
        &mut self.boards[usize::from(id.0)]
    }

    /// `(remote reads, remote writes)` bridged so far.
    pub fn bridge_stats(&self) -> (u64, u64) {
        (self.remote_reads, self.remote_writes)
    }

    /// The per-board configuration the cluster was built with.
    pub fn board_config(&self) -> EciSystemConfig {
        self.board_config
    }

    fn fabric_send(&mut self, from: BoardId, to: BoardId, now: Time, payload: u64) -> Time {
        let (a, b) = (usize::from(from.0.min(to.0)), usize::from(from.0.max(to.0)));
        let link = self.links[a][b].as_mut().expect("mesh link exists");
        if usize::from(from.0) == a {
            link.send_a_to_b(now, payload + BRIDGE_HEADER)
        } else {
            link.send_b_to_a(now, payload + BRIDGE_HEADER)
        }
    }

    /// Reads one 128-byte line of the global space from `requester`'s
    /// CPU. Local slices go through the board's own L2/ECI; remote
    /// slices are bridged over the fabric and served coherently at the
    /// owner.
    pub fn read_line(&mut self, requester: BoardId, now: Time, global: u64) -> ([u8; 128], Time) {
        let (owner, local) = self.owner_of(global);
        if owner == requester {
            return self.boards[usize::from(owner.0)].cpu_read_line(now, local);
        }
        self.remote_reads += 1;
        // Request crosses the fabric (header only)...
        let arrived = self.fabric_send(requester, owner, now, 0) + self.bridge_latency;
        // ...the owner's FPGA serves it through its own coherent system
        // (so it observes any dirty data in the owner's L2)...
        let (data, served) = self.boards[usize::from(owner.0)].fpga_read_line(arrived, local);
        // ...and the line returns.
        let done = self.fabric_send(owner, requester, served, 128) + self.bridge_latency;
        (data, done)
    }

    /// Writes one line of the global space from `requester`'s CPU, with
    /// the same local/remote split.
    pub fn write_line(
        &mut self,
        requester: BoardId,
        now: Time,
        global: u64,
        data: &[u8; 128],
    ) -> Time {
        let (owner, local) = self.owner_of(global);
        if owner == requester {
            return self.boards[usize::from(owner.0)].cpu_write_line(now, local, data);
        }
        self.remote_writes += 1;
        let arrived = self.fabric_send(requester, owner, now, 128) + self.bridge_latency;
        let committed = self.boards[usize::from(owner.0)].fpga_write_line(arrived, local, data);
        // Ack back to the requester.
        self.fabric_send(owner, requester, committed, 0) + self.bridge_latency
    }

    /// Asserts every board's protocol checker is clean.
    ///
    /// # Panics
    ///
    /// Panics with the first violation found.
    pub fn assert_all_clean(&self) {
        for (i, b) in self.boards.iter().enumerate() {
            assert!(
                b.checker().violations().is_empty(),
                "board {i}: {:?}",
                b.checker().violations()
            );
        }
    }
}

/// Publishes bridge counters (`prefix.bridge.*`) plus every board's full
/// metric tree under `prefix.board<i>.*`.
impl enzian_sim::Instrumented for EnzianCluster {
    fn export_metrics(&self, prefix: &str, registry: &mut enzian_sim::MetricsRegistry) {
        registry.counter_set(&format!("{prefix}.bridge.remote_reads"), self.remote_reads);
        registry.counter_set(
            &format!("{prefix}.bridge.remote_writes"),
            self.remote_writes,
        );
        for (i, b) in self.boards.iter().enumerate() {
            b.export_metrics(&format!("{prefix}.board{i}"), registry);
        }
    }
}

// -------------------------------------------------------------------
// Conservative-parallel cluster execution
// -------------------------------------------------------------------

/// Per-destination traffic accounting for one board's bridge, as seen
/// at the sender.
///
/// `wire_bytes` counts encoded frames exactly as the fabric carries
/// them, so for every flow `wire_bytes == payload_bytes + frames *`
/// [`BRIDGE_HEADER`] and equals the outgoing channel's
/// [`Channel::bytes_carried`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Bridge frames sent to this destination.
    pub frames: u64,
    /// Cache-line payload bytes carried by those frames.
    pub payload_bytes: u64,
    /// Total encoded bytes handed to the fabric.
    pub wire_bytes: u64,
}

/// A synthetic cluster workload: per-board request streams mixing
/// local coherent accesses with bridged remote reads/writes, all
/// derived from one seed so any two same-seed runs are identical.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct ClusterWorkload {
    /// Independent request streams per board.
    pub streams_per_board: usize,
    /// Operations each stream issues before retiring.
    pub ops_per_stream: u64,
    /// Private line slots each stream cycles through.
    pub slots_per_stream: u64,
    /// Basis points (of 10 000) of ops that target a remote slice.
    pub remote_bp: u64,
    /// Basis points of ops that are writes.
    pub write_bp: u64,
    /// Master seed; every stream RNG and fault plan derives from it.
    pub seed: u64,
    /// Basis points of frame-corrupt fault probability (drop and txn
    /// stall faults ride along at half and a quarter of it); zero
    /// disables fault injection.
    pub fault_rate_bp: u64,
}

impl ClusterWorkload {
    /// A small mixed workload, sized for unit tests.
    pub fn small() -> Self {
        ClusterWorkload {
            streams_per_board: 4,
            ops_per_stream: 48,
            slots_per_stream: 8,
            remote_bp: 2_500,
            write_bp: 5_000,
            seed: 0xC1A5_7E12,
            fault_rate_bp: 0,
        }
    }

    /// The `cluster_scale` experiment's workload: enough work per
    /// board that epoch synchronization is amortized.
    pub fn scale() -> Self {
        ClusterWorkload {
            streams_per_board: 8,
            ops_per_stream: 160,
            slots_per_stream: 16,
            remote_bp: 2_000,
            write_bp: 5_000,
            seed: 0xE21A_0BDE,
            fault_rate_bp: 0,
        }
    }

    /// Returns the workload with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the workload with `ops_per_stream` replaced.
    pub fn with_ops_per_stream(mut self, ops: u64) -> Self {
        self.ops_per_stream = ops;
        self
    }

    /// Returns the workload with `remote_bp` replaced.
    pub fn with_remote_bp(mut self, bp: u64) -> Self {
        assert!(bp <= 10_000, "basis points exceed 10_000");
        self.remote_bp = bp;
        self
    }

    /// Returns the workload with fault injection at `bp` basis points.
    pub fn with_fault_rate_bp(mut self, bp: u64) -> Self {
        assert!(bp <= 10_000, "basis points exceed 10_000");
        self.fault_rate_bp = bp;
        self
    }
}

/// What one cluster run did — a pure function of the cluster
/// configuration and [`ClusterWorkload`], never of the thread count.
///
/// The only engine-dependent field is `epochs` (zero for the
/// sequential reference driver); [`ClusterRunReport::assert_matches`]
/// compares everything else.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRunReport {
    /// Boards simulated.
    pub boards: usize,
    /// Operations issued (= boards × streams × ops_per_stream).
    pub total_ops: u64,
    /// Local coherent reads completed.
    pub local_reads: u64,
    /// Local coherent writes completed.
    pub local_writes: u64,
    /// Bridged reads completed (response received).
    pub remote_reads: u64,
    /// Bridged writes completed (ack received).
    pub remote_writes: u64,
    /// Nack frames received by requesters.
    pub nacks: u64,
    /// Operations that failed (local retry-budget exhaustion + nacks).
    pub failures: u64,
    /// Bridge frames carried by the fabric (requests and responses).
    pub bridge_frames: u64,
    /// Cache-line payload bytes carried by those frames.
    pub bridge_payload_bytes: u64,
    /// Encoded bytes handed to the fabric.
    pub bridge_wire_bytes: u64,
    /// Latest instant any board observed.
    pub sim_end: Time,
    /// Lock-step epochs executed (zero under the reference driver).
    pub epochs: u64,
    /// Quiet epochs the adaptive-lookahead engine jumped over instead
    /// of executing (zero under the reference driver).
    pub epochs_skipped: u64,
    /// Cross-board envelopes exchanged.
    pub messages: u64,
    /// FNV-1a digest over every board's final state: stream clocks,
    /// shadow memory, flow tables and captured wire traces.
    pub trace_digest: u64,
    /// `flows[src][dst]`: per-directed-pair traffic accounting.
    pub flows: Vec<Vec<FlowStats>>,
}

impl ClusterRunReport {
    /// Asserts this report equals `other` on every engine-independent
    /// field (everything but `epochs`).
    ///
    /// # Panics
    ///
    /// Panics on the first differing field.
    pub fn assert_matches(&self, other: &ClusterRunReport) {
        let mut a = self.clone();
        let mut b = other.clone();
        a.epochs = 0;
        b.epochs = 0;
        a.epochs_skipped = 0;
        b.epochs_skipped = 0;
        assert_eq!(a, b, "cluster run reports diverge");
    }

    /// Publishes the report under `prefix.*`. Every exported value is
    /// deterministic across thread counts, so two exports of same-seed
    /// runs are byte-identical.
    pub fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        let c = |reg: &mut MetricsRegistry, k: &str, v: u64| {
            reg.counter_set(&format!("{prefix}.{k}"), v);
        };
        c(reg, "boards", self.boards as u64);
        c(reg, "total_ops", self.total_ops);
        c(reg, "local_reads", self.local_reads);
        c(reg, "local_writes", self.local_writes);
        c(reg, "remote_reads", self.remote_reads);
        c(reg, "remote_writes", self.remote_writes);
        c(reg, "nacks", self.nacks);
        c(reg, "failures", self.failures);
        c(reg, "bridge_frames", self.bridge_frames);
        c(reg, "bridge_payload_bytes", self.bridge_payload_bytes);
        c(reg, "bridge_wire_bytes", self.bridge_wire_bytes);
        c(reg, "sim_end_ps", self.sim_end.as_ps());
        c(reg, "epochs", self.epochs);
        c(reg, "epochs_skipped", self.epochs_skipped);
        c(reg, "messages", self.messages);
        c(reg, "trace_digest", self.trace_digest);
    }
}

/// FNV-1a 64-bit, used for the run digest (stable, dependency-free).
/// Shared with the service runtime's digest (`crate::service`).
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// One stream's pending bridged operation, awaiting its response.
struct PendingOp {
    write: bool,
    global: u64,
    fill: u8,
}

/// One request stream on a board.
struct StreamState {
    rng: SimRng,
    /// When the stream can issue its next operation.
    at: Time,
    /// Operations left to complete.
    remaining: u64,
    /// Set while a bridged request is in flight.
    blocked: Option<PendingOp>,
    /// Expected line fill per global address this stream wrote;
    /// `None` marks a slot poisoned by a failed write. A `BTreeMap`
    /// so digests iterate in address order.
    shadow: BTreeMap<u64, Option<u8>>,
}

/// A board plus its private half of the fabric: one shard of the
/// conservative-parallel cluster.
struct BoardShard {
    id: usize,
    n: usize,
    slice_bytes: u64,
    streams_per_board: usize,
    slots_per_stream: u64,
    remote_bp: u64,
    write_bp: u64,
    bridge_latency: Duration,
    sys: EciSystem,
    /// Outgoing channel per destination board (`None` for self).
    out: Vec<Option<Channel>>,
    streams: Vec<StreamState>,
    inbox: BinaryHeap<Reverse<Envelope<Vec<u8>>>>,
    /// Envelope sequence counter — unique per (board, seq), so the
    /// merge order (time, src, seq) is total.
    seq: u32,
    flows: Vec<FlowStats>,
    last: Time,
    local_reads: u64,
    local_writes: u64,
    remote_reads: u64,
    remote_writes: u64,
    nacks: u64,
    failures: u64,
}

/// Key ordering per-board work: inbox deliveries run before stream
/// issues at the same instant, and both tie-break deterministically.
type WorkKey = (Time, u8, u64, u64);

impl BoardShard {
    /// Requester-private byte offset (valid within any board's slice)
    /// for `(owner-of-the-request board, stream, slot)`.
    fn slot_offset(&self, stream: usize, slot: u64) -> u64 {
        ((self.id * self.streams_per_board + stream) as u64 * self.slots_per_stream + slot) * 128
    }

    fn push_arrival(&mut self, env: Envelope<Vec<u8>>) {
        self.inbox.push(Reverse(env));
    }

    /// The next unit of work, or `None` when the board is quiescent.
    fn next_key(&self) -> Option<WorkKey> {
        let mut best: Option<WorkKey> = None;
        if let Some(Reverse(env)) = self.inbox.peek() {
            best = Some((env.at, 0, env.src as u64, env.seq));
        }
        for (i, s) in self.streams.iter().enumerate() {
            if s.remaining == 0 || s.blocked.is_some() {
                continue;
            }
            let k = (s.at, 1, i as u64, 0);
            if best.is_none_or(|b| k < b) {
                best = Some(k);
            }
        }
        best
    }

    fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Encodes `msg`, serializes it onto the channel towards `dst` at
    /// `at`, accounts the flow, and emits the timestamped envelope.
    fn send_frame(
        &mut self,
        dst: usize,
        at: Time,
        msg: &BridgeMsg,
        out: &mut Vec<(usize, Envelope<Vec<u8>>)>,
    ) {
        let bytes = encode_bridge(msg);
        let payload = match msg.op {
            BridgeOp::ReadResp(_) | BridgeOp::WriteReq(_) => 128,
            _ => 0,
        };
        let ch = self.out[dst].as_mut().expect("no channel to self");
        let xfer = ch.send(at, bytes.len() as u64);
        let flow = &mut self.flows[dst];
        flow.frames += 1;
        flow.payload_bytes += payload;
        flow.wire_bytes += bytes.len() as u64;
        let seq = u64::from(msg.seq);
        let env = Envelope {
            at: xfer.done + self.bridge_latency,
            src: self.id,
            seq,
            payload: bytes,
        };
        out.push((dst, env));
    }

    /// Serves or completes the next inbox delivery.
    fn process_envelope(&mut self, out: &mut Vec<(usize, Envelope<Vec<u8>>)>) {
        let Reverse(env) = self.inbox.pop().expect("inbox not empty");
        let msg = decode_bridge(&env.payload).expect("fabric frames survive transit");
        let src = usize::from(msg.src);
        match msg.op {
            BridgeOp::ReadReq => {
                let local = Addr(msg.addr % self.slice_bytes);
                let (op, at) = match self.sys.try_fpga_read_line(env.at, local) {
                    Ok((data, served)) => (BridgeOp::ReadResp(Box::new(data)), served),
                    Err(_) => (BridgeOp::Nack, env.at + Duration::from_us(1)),
                };
                self.last = self.last.max(at);
                let reply = BridgeMsg {
                    src: self.id as u8,
                    dst: msg.src,
                    token: msg.token,
                    addr: msg.addr,
                    seq: self.next_seq(),
                    op,
                };
                self.send_frame(src, at, &reply, out);
            }
            BridgeOp::WriteReq(data) => {
                let local = Addr(msg.addr % self.slice_bytes);
                let (op, at) = match self.sys.try_fpga_write_line(env.at, local, &data) {
                    Ok(committed) => (BridgeOp::WriteAck, committed),
                    Err(_) => (BridgeOp::Nack, env.at + Duration::from_us(1)),
                };
                self.last = self.last.max(at);
                let reply = BridgeMsg {
                    src: self.id as u8,
                    dst: msg.src,
                    token: msg.token,
                    addr: msg.addr,
                    seq: self.next_seq(),
                    op,
                };
                self.send_frame(src, at, &reply, out);
            }
            BridgeOp::ReadResp(data) => {
                let s = &mut self.streams[usize::from(msg.token)];
                let p = s.blocked.take().expect("response for an idle stream");
                if let Some(Some(fill)) = s.shadow.get(&p.global) {
                    assert_eq!(
                        data.as_ref(),
                        &[*fill; 128],
                        "bridged read returned stale data"
                    );
                }
                s.at = env.at;
                s.remaining -= 1;
                self.remote_reads += 1;
                self.last = self.last.max(env.at);
            }
            BridgeOp::WriteAck => {
                let s = &mut self.streams[usize::from(msg.token)];
                let p = s.blocked.take().expect("ack for an idle stream");
                s.shadow.insert(p.global, Some(p.fill));
                s.at = env.at;
                s.remaining -= 1;
                self.remote_writes += 1;
                self.last = self.last.max(env.at);
            }
            BridgeOp::Nack => {
                let s = &mut self.streams[usize::from(msg.token)];
                let p = s.blocked.take().expect("nack for an idle stream");
                if p.write {
                    s.shadow.insert(p.global, None);
                }
                s.at = env.at;
                s.remaining -= 1;
                self.nacks += 1;
                self.failures += 1;
                self.last = self.last.max(env.at);
            }
            BridgeOp::SvcClient(_)
            | BridgeOp::SvcRep(_)
            | BridgeOp::SvcCtl(_)
            | BridgeOp::Tcp(_) => {
                unreachable!("service/traffic frames never ride the memory-bridge workload")
            }
        }
    }

    /// Issues stream `si`'s next operation.
    fn process_stream(&mut self, si: usize, out: &mut Vec<(usize, Envelope<Vec<u8>>)>) {
        let (at, remote, write, slot, fill, dst) = {
            let s = &mut self.streams[si];
            let remote = self.n > 1 && s.rng.next_below(10_000) < self.remote_bp;
            let write = s.rng.next_below(10_000) < self.write_bp;
            let slot = s.rng.next_below(self.slots_per_stream);
            let fill = s.rng.next_u64() as u8;
            let dst = if remote {
                let r = s.rng.next_below(self.n as u64 - 1) as usize;
                if r >= self.id {
                    r + 1
                } else {
                    r
                }
            } else {
                self.id
            };
            (s.at, remote, write, slot, fill, dst)
        };
        let offset = self.slot_offset(si, slot);
        let global = dst as u64 * self.slice_bytes + offset;
        if !remote {
            let local = Addr(offset);
            if write {
                let line = [fill; 128];
                match self.sys.try_cpu_write_line(at, local, &line) {
                    Ok(done) => {
                        let s = &mut self.streams[si];
                        s.shadow.insert(global, Some(fill));
                        s.at = done;
                        s.remaining -= 1;
                        self.local_writes += 1;
                        self.last = self.last.max(done);
                    }
                    Err(_) => self.fail_local(si, at, Some(global)),
                }
            } else {
                match self.sys.try_cpu_read_line(at, local) {
                    Ok((data, done)) => {
                        let s = &mut self.streams[si];
                        if let Some(Some(expect)) = s.shadow.get(&global) {
                            assert_eq!(data, [*expect; 128], "local read returned stale data");
                        }
                        s.at = done;
                        s.remaining -= 1;
                        self.local_reads += 1;
                        self.last = self.last.max(done);
                    }
                    Err(_) => self.fail_local(si, at, None),
                }
            }
        } else {
            let op = if write {
                BridgeOp::WriteReq(Box::new([fill; 128]))
            } else {
                BridgeOp::ReadReq
            };
            let msg = BridgeMsg {
                src: self.id as u8,
                dst: dst as u8,
                token: si as u8,
                addr: global,
                seq: self.next_seq(),
                op,
            };
            self.streams[si].blocked = Some(PendingOp {
                write,
                global,
                fill,
            });
            self.send_frame(dst, at, &msg, out);
        }
    }

    /// A local operation exhausted its retry budget: charge a penalty,
    /// poison the written slot, and move on.
    fn fail_local(&mut self, si: usize, at: Time, poisoned: Option<u64>) {
        let s = &mut self.streams[si];
        if let Some(global) = poisoned {
            s.shadow.insert(global, None);
        }
        s.at = at + Duration::from_us(1);
        s.remaining -= 1;
        self.failures += 1;
        self.last = self.last.max(s.at);
    }

    /// Runs the single earliest unit of work on this board.
    fn process_next(&mut self, out: &mut Vec<(usize, Envelope<Vec<u8>>)>) {
        let key = self.next_key().expect("process_next on a quiescent board");
        if key.1 == 0 {
            self.process_envelope(out);
        } else {
            self.process_stream(key.2 as usize, out);
        }
    }

    /// Folds this board's externally observable final state into `d`.
    fn digest_into(&self, d: &mut Fnv) {
        d.u64(self.id as u64);
        for s in &self.streams {
            d.u64(s.at.as_ps());
            d.u64(s.remaining);
            for (addr, val) in &s.shadow {
                d.u64(*addr);
                match val {
                    Some(v) => {
                        d.u64(1);
                        d.u64(u64::from(*v));
                    }
                    None => d.u64(2),
                }
            }
        }
        for f in &self.flows {
            d.u64(f.frames);
            d.u64(f.payload_bytes);
            d.u64(f.wire_bytes);
        }
        d.u64(self.last.as_ps());
        d.u64(self.local_reads);
        d.u64(self.local_writes);
        d.u64(self.remote_reads);
        d.u64(self.remote_writes);
        d.u64(self.nacks);
        d.u64(self.failures);
        d.bytes(self.sys.trace().wire_bytes());
    }
}

impl Shard for BoardShard {
    type Msg = Vec<u8>;

    fn step(
        &mut self,
        window: EpochWindow,
        arrivals: Vec<Envelope<Vec<u8>>>,
        out: &mut Vec<(usize, Envelope<Vec<u8>>)>,
    ) {
        for env in arrivals {
            self.inbox.push(Reverse(env));
        }
        while let Some(key) = self.next_key() {
            if key.0 >= window.end {
                break;
            }
            self.process_next(out);
        }
    }

    fn idle(&self) -> bool {
        self.inbox.is_empty()
            && self
                .streams
                .iter()
                .all(|s| s.remaining == 0 && s.blocked.is_none())
    }

    fn next_activity(&self) -> Option<Time> {
        // The earliest held delivery or ready stream issue. A *blocked*
        // stream has no key, but its wake-up is a response envelope that
        // is either already in some inbox (covered here) or still in
        // flight this epoch (covered by the engine's send-time fold), so
        // the leader can never jump past it.
        self.next_key().map(|k| k.0)
    }
}

/// Sequential reference driver: a single global clock sweeping the
/// earliest work item across all boards, with immediate delivery. The
/// per-board processing order is identical to the epoch engine's, so
/// final states must match bit-for-bit — a genuinely different
/// execution engine validating the lookahead/epoch machinery.
fn run_shards_reference(shards: &mut [BoardShard]) -> u64 {
    let mut messages = 0;
    let mut out = Vec::new();
    loop {
        let mut best: Option<(WorkKey, usize)> = None;
        for (i, s) in shards.iter().enumerate() {
            if let Some(k) = s.next_key() {
                if best.is_none_or(|(bk, bi)| (k, i) < (bk, bi)) {
                    best = Some((k, i));
                }
            }
        }
        let Some((_, i)) = best else { break };
        shards[i].process_next(&mut out);
        messages += out.len() as u64;
        for (dst, env) in out.drain(..) {
            shards[dst].push_arrival(env);
        }
    }
    messages
}

impl EnzianCluster {
    /// The conservative engine's lookahead: no bridge frame sent at
    /// `t` can be processed remotely before `t + propagation +
    /// bridge_latency` (serialization only adds margin).
    pub fn lookahead(&self) -> Duration {
        self.link_config.propagation + self.bridge_latency
    }

    fn make_shards(&mut self, w: &ClusterWorkload) -> Vec<BoardShard> {
        let n = self.boards.len();
        assert!(w.streams_per_board > 0, "workload needs streams");
        assert!(
            w.streams_per_board * n <= 256,
            "stream tokens and board ids must fit a byte"
        );
        assert!(
            (n * w.streams_per_board) as u64 * w.slots_per_stream * 128 <= self.slice_bytes,
            "workload's private regions exceed a board slice"
        );
        let boards = std::mem::take(&mut self.boards);
        let chan_cfg = ChannelConfig {
            bits_per_sec: self.link_config.bits_per_sec,
            coding_efficiency: 1.0,
            propagation: self.link_config.propagation,
            frame_overhead_bytes: FRAME_OVERHEAD_BYTES,
        };
        boards
            .into_iter()
            .enumerate()
            .map(|(id, mut sys)| {
                if w.fault_rate_bp > 0 {
                    let p = w.fault_rate_bp as f64 / 10_000.0;
                    let seed = w
                        .seed
                        .wrapping_add((id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    sys.set_fault_plan(
                        FaultPlan::new(seed)
                            .with(FaultSpec::probability(fault_targets::FRAME_CORRUPT, p))
                            .with(FaultSpec::probability(fault_targets::FRAME_DROP, p / 2.0))
                            .with(FaultSpec::probability(TXN_STALL_TARGET, p / 4.0)),
                    );
                }
                let streams: Vec<StreamState> = (0..w.streams_per_board)
                    .map(|s| StreamState {
                        rng: SimRng::seed_from(
                            w.seed
                                ^ ((id * w.streams_per_board + s) as u64 + 1)
                                    .wrapping_mul(0x2545_F491_4F6C_DD1D),
                        ),
                        at: Time::ZERO + Duration::from_ns(50) * s as u64,
                        remaining: w.ops_per_stream,
                        blocked: None,
                        shadow: BTreeMap::new(),
                    })
                    .collect();
                BoardShard {
                    id,
                    n,
                    slice_bytes: self.slice_bytes,
                    streams_per_board: w.streams_per_board,
                    slots_per_stream: w.slots_per_stream,
                    remote_bp: w.remote_bp,
                    write_bp: w.write_bp,
                    bridge_latency: self.bridge_latency,
                    sys,
                    out: (0..n)
                        .map(|d| (d != id).then(|| Channel::new(chan_cfg)))
                        .collect(),
                    streams,
                    inbox: BinaryHeap::new(),
                    seq: 0,
                    flows: vec![FlowStats::default(); n],
                    last: Time::ZERO,
                    local_reads: 0,
                    local_writes: 0,
                    remote_reads: 0,
                    remote_writes: 0,
                    nacks: 0,
                    failures: 0,
                }
            })
            .collect()
    }

    /// Tears shards back down into the cluster and builds the report.
    fn finish_run(
        &mut self,
        shards: Vec<BoardShard>,
        w: &ClusterWorkload,
        epochs: u64,
        epochs_skipped: u64,
        messages: u64,
    ) -> ClusterRunReport {
        let n = shards.len();
        let mut report = ClusterRunReport {
            boards: n,
            total_ops: (n * w.streams_per_board) as u64 * w.ops_per_stream,
            local_reads: 0,
            local_writes: 0,
            remote_reads: 0,
            remote_writes: 0,
            nacks: 0,
            failures: 0,
            bridge_frames: 0,
            bridge_payload_bytes: 0,
            bridge_wire_bytes: 0,
            sim_end: Time::ZERO,
            epochs,
            epochs_skipped,
            messages,
            trace_digest: 0,
            flows: Vec::with_capacity(n),
        };
        let mut digest = Fnv::new();
        for shard in shards {
            assert!(shard.idle(), "run finished with live work on a board");
            shard.digest_into(&mut digest);
            report.local_reads += shard.local_reads;
            report.local_writes += shard.local_writes;
            report.remote_reads += shard.remote_reads;
            report.remote_writes += shard.remote_writes;
            report.nacks += shard.nacks;
            report.failures += shard.failures;
            report.sim_end = report.sim_end.max(shard.last);
            for (dst, (f, ch)) in shard.flows.iter().zip(&shard.out).enumerate() {
                report.bridge_frames += f.frames;
                report.bridge_payload_bytes += f.payload_bytes;
                report.bridge_wire_bytes += f.wire_bytes;
                if let Some(ch) = ch {
                    assert_eq!(
                        f.wire_bytes,
                        ch.bytes_carried(),
                        "flow accounting diverged from the channel ({} -> {dst})",
                        shard.id
                    );
                }
            }
            report.flows.push(shard.flows.clone());
            self.remote_reads += shard.remote_reads;
            self.remote_writes += shard.remote_writes;
            self.boards.push(shard.sys);
        }
        report.trace_digest = digest.0;
        let completed = report.local_reads
            + report.local_writes
            + report.remote_reads
            + report.remote_writes
            + report.failures;
        assert_eq!(completed, report.total_ops, "operations went missing");
        self.assert_all_clean();
        report
    }

    /// Runs `w` across all boards on the conservative-parallel engine
    /// with `threads` workers (clamped to the board count; `1` runs
    /// the same epoch protocol inline).
    ///
    /// The report — and any metrics or bench JSON derived from it — is
    /// bit-identical for every thread count: each board's work is a
    /// pure function of its own state plus a deterministically ordered
    /// inbox, and the merge order `(time, src, seq)` never observes
    /// the partitioning.
    pub fn run_parallel(&mut self, w: &ClusterWorkload, threads: usize) -> ClusterRunReport {
        assert!(threads >= 1, "need at least one worker thread");
        let mut shards = self.make_shards(w);
        let cfg = ParConfig::new(self.lookahead())
            .with_threads(threads)
            .with_channel_capacity(256);
        let par = run_conservative(&mut shards, &cfg);
        self.finish_run(shards, w, par.epochs, par.epochs_skipped, par.messages)
    }

    /// Runs `w` on the sequential reference driver (global
    /// earliest-work loop, immediate delivery). Exists to validate the
    /// parallel engine: [`ClusterRunReport::assert_matches`] against a
    /// [`EnzianCluster::run_parallel`] report must hold for any thread
    /// count.
    pub fn run_reference(&mut self, w: &ClusterWorkload) -> ClusterRunReport {
        let mut shards = self.make_shards(w);
        let messages = run_shards_reference(&mut shards);
        self.finish_run(shards, w, 0, 0, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1 << 20;

    fn cluster() -> EnzianCluster {
        EnzianCluster::new(3, 64 * MIB)
    }

    #[test]
    fn global_space_is_striped_across_boards() {
        let c = cluster();
        assert_eq!(c.global_bytes(), 192 * MIB);
        assert_eq!(c.owner_of(0), (BoardId(0), Addr(0)));
        assert_eq!(c.owner_of(64 * MIB), (BoardId(1), Addr(0)));
        assert_eq!(c.owner_of(130 * MIB), (BoardId(2), Addr(2 * MIB)));
    }

    #[test]
    fn remote_write_read_roundtrip() {
        let mut c = cluster();
        let mut line = [0u8; 128];
        line[..7].copy_from_slice(b"bridged");
        // Board 0 writes into board 2's slice; board 1 reads it.
        let g = 2 * 64 * MIB + 4096;
        let t = c.write_line(BoardId(0), Time::ZERO, g, &line);
        let (read, _) = c.read_line(BoardId(1), t, g);
        assert_eq!(read, line);
        assert_eq!(c.bridge_stats(), (1, 1));
        c.assert_all_clean();
    }

    #[test]
    fn remote_reads_observe_owner_cached_dirty_data() {
        // The owner's CPU dirties a line in its L2; a bridged read from
        // another board must see it (served through the owner's ECI).
        let mut c = cluster();
        let g = 64 * MIB + 128; // board 1's slice
        let mut line = [0u8; 128];
        line[0] = 0xEE;
        let t = {
            let owner = c.board(BoardId(1));
            owner.cpu_write_line(Time::ZERO, Addr(128), &line)
        };
        let (read, _) = c.read_line(BoardId(0), t, g);
        assert_eq!(read[0], 0xEE);
        c.assert_all_clean();
    }

    #[test]
    fn local_access_is_much_faster_than_bridged() {
        let mut c = cluster();
        let t0 = Time::ZERO;
        let (_, t_local) = c.read_line(BoardId(0), t0, 4096);
        let local = t_local.since(t0);
        let (_, t_remote) = c.read_line(BoardId(0), t_local, 64 * MIB + 4096);
        let remote = t_remote.since(t_local);
        assert!(
            remote > local * 2,
            "bridged read ({remote}) should cost well over a local one ({local})"
        );
        // But still microseconds, not milliseconds: this is the point of
        // a native fabric bridge vs an RPC stack.
        assert!(remote < Duration::from_us(10), "bridged read {remote}");
    }

    #[test]
    fn all_pairs_can_communicate() {
        let mut c = cluster();
        let mut t = Time::ZERO;
        for src in 0..3u8 {
            for dst in 0..3u8 {
                if src == dst {
                    continue;
                }
                let g = u64::from(dst) * 64 * MIB + u64::from(src) * 1024;
                let line = [src ^ dst; 128];
                t = c.write_line(BoardId(src), t, g, &line);
                let (read, t2) = c.read_line(BoardId(src), t, g);
                assert_eq!(read, line);
                t = t2;
            }
        }
        c.assert_all_clean();
    }

    #[test]
    #[should_panic(expected = "beyond global space")]
    fn out_of_space_address_panics() {
        let mut c = cluster();
        c.read_line(BoardId(0), Time::ZERO, 192 * MIB);
    }

    #[test]
    #[should_panic(expected = "at least two boards")]
    fn single_board_cluster_rejected() {
        let _ = EnzianCluster::new(1, MIB);
    }

    #[test]
    fn parallel_run_matches_reference_and_every_thread_count() {
        let w = ClusterWorkload::small();
        let reference = EnzianCluster::new(3, MIB).run_reference(&w);
        assert_eq!(reference.epochs, 0);
        assert!(reference.remote_reads + reference.remote_writes > 0);
        assert_eq!(reference.failures, 0);
        let mut parallel: Vec<ClusterRunReport> = [1usize, 2, 4]
            .iter()
            .map(|&t| EnzianCluster::new(3, MIB).run_parallel(&w, t))
            .collect();
        for p in &parallel {
            p.assert_matches(&reference);
        }
        // Including `epochs`, every parallel run is identical.
        let first = parallel.remove(0);
        assert!(first.epochs > 0);
        for p in &parallel {
            assert_eq!(*p, first);
        }
    }

    #[test]
    fn parallel_run_is_deterministic_under_faults() {
        let w = ClusterWorkload::small().with_fault_rate_bp(400);
        let reference = EnzianCluster::new(2, MIB).run_reference(&w);
        let par = EnzianCluster::new(2, MIB).run_parallel(&w, 2);
        par.assert_matches(&reference);
    }

    #[test]
    fn flow_accounting_matches_the_bridge_header() {
        let r = EnzianCluster::new(3, MIB).run_parallel(&ClusterWorkload::small(), 2);
        assert_eq!(
            r.bridge_wire_bytes,
            r.bridge_payload_bytes + r.bridge_frames * BRIDGE_HEADER
        );
        for row in &r.flows {
            for f in row {
                assert_eq!(f.wire_bytes, f.payload_bytes + f.frames * BRIDGE_HEADER);
            }
        }
    }

    #[test]
    fn run_parallel_restores_the_boards() {
        let mut c = EnzianCluster::new(2, MIB);
        let before = c.len();
        let r = c.run_parallel(&ClusterWorkload::small(), 1);
        assert_eq!(c.len(), before);
        assert_eq!(
            c.bridge_stats(),
            (r.remote_reads, r.remote_writes),
            "bridge counters absorb the run"
        );
        // The cluster remains usable through the sequential facade.
        let (_, t) = c.read_line(BoardId(0), r.sim_end, MIB + 4096);
        assert!(t > r.sim_end);
        c.assert_all_clean();
    }
}
