//! The million-flow connection-churn generator, run across the cluster.
//!
//! This module is the *transport plane* of `enzian-net::traffic`: it
//! places one [`SessionMux`] per board of a conservative-parallel
//! cluster (the same engine as [`crate::cluster`] and
//! [`crate::service`]), carries every TCP segment inside a bridge
//! [`BridgeOp::Tcp`] frame over seeded [`Channel`]s, and drives full
//! handshake / transfer / teardown sessions at TrafficEngine-style
//! churn rates:
//!
//! * **Shared-nothing sharding**: each board is one generator running
//!   client and server roles concurrently; segments are steered to the
//!   owning board by the [`PortMask`] encoded in every destination
//!   port, so no flow state is ever shared between shards.
//! * **Two topologies**: a full *mesh* (every board opens sessions
//!   round-robin against every other board) and a three-board
//!   *client → proxy → server* chain in which the middle board splices
//!   each accepted session into a fresh upstream one.
//! * **Loss under fault plans**: per-board [`LossPattern`]s built on
//!   the shared deterministic fault model drop first-transmission data
//!   segments; go-back-N retransmission and the RTO ledger make the
//!   goodput cost observable in the report.
//!
//! Everything is a pure function of the [`TrafficWorkload`] — reports
//! (and the metrics / bench JSON derived from them) are bit-identical
//! across thread counts and between the parallel engine and the
//! sequential reference driver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use enzian_eci::bridge::{decode_bridge, encode_bridge, BridgeMsg, BridgeOp};
use enzian_net::eth::{EthLinkConfig, FRAME_OVERHEAD_BYTES};
use enzian_net::tcp::{LossPattern, SessionMux, TcpStackConfig, WireSegment, SEGMENT_LOSS_TARGET};
use enzian_net::traffic::{decode_segment, encode_segment, PortMask};
use enzian_sim::par::{run_conservative, Envelope, EpochWindow, ParConfig, Shard};
use enzian_sim::stats::LatencyHistogram;
use enzian_sim::{Channel, ChannelConfig, Duration, FaultPlan, FaultSpec, MetricsRegistry, Time};

use crate::cluster::{FlowStats, Fnv};

/// Store-and-forward latency of the top-of-rack hop every inter-board
/// frame crosses (the same 1 µs as [`enzian_net::eth::Switch::tor`]).
const SWITCH_LATENCY: Duration = Duration::from_us(1);

// -------------------------------------------------------------------
// Configuration
// -------------------------------------------------------------------

/// Which TCP stack personality every board's mux runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficStack {
    /// The single-pipeline FPGA stack ([`TcpStackConfig::fpga_coyote`]).
    Fpga,
    /// The kernel software stack ([`TcpStackConfig::linux_kernel`]).
    Kernel,
    /// The hybrid split ([`TcpStackConfig::hybrid_offload`]).
    Hybrid,
}

impl TrafficStack {
    /// All stacks, in sweep order.
    pub fn all() -> [TrafficStack; 3] {
        [
            TrafficStack::Fpga,
            TrafficStack::Kernel,
            TrafficStack::Hybrid,
        ]
    }

    /// Stable label used in metrics and bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficStack::Fpga => "fpga_coyote",
            TrafficStack::Kernel => "linux_kernel",
            TrafficStack::Hybrid => "hybrid_offload",
        }
    }

    /// The stack configuration every mux is built from.
    pub fn config(&self) -> TcpStackConfig {
        match self {
            TrafficStack::Fpga => TcpStackConfig::fpga_coyote(),
            TrafficStack::Kernel => TcpStackConfig::linux_kernel(),
            TrafficStack::Hybrid => TcpStackConfig::hybrid_offload(),
        }
    }
}

/// Configuration of one traffic run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct TrafficWorkload {
    /// Boards in the cluster (≥ 2; exactly 3 for the proxy topology).
    pub boards: u8,
    /// Stack personality on every board.
    pub stack: TrafficStack,
    /// Client sessions each generator board opens.
    pub sessions_per_board: u64,
    /// Gap between consecutive opens on one board (the churn knob).
    pub open_gap: Duration,
    /// Payload bytes per session.
    pub bytes_per_session: u64,
    /// Delay between establishment and the payload start (the
    /// concurrency knob: held-open flows pile up in the flow tables).
    pub hold: Duration,
    /// Segment-loss probability in basis points (100 = 1 %), applied
    /// per board to first-transmission data segments.
    pub loss_bp: u32,
    /// Run the client → proxy → server chain instead of the mesh.
    pub proxy: bool,
    /// Master seed for the per-board loss plans.
    pub seed: u64,
}

impl TrafficWorkload {
    /// A small mesh sized for unit tests.
    pub fn small() -> Self {
        TrafficWorkload {
            boards: 2,
            stack: TrafficStack::Fpga,
            sessions_per_board: 48,
            open_gap: Duration::from_us(2),
            bytes_per_session: 8 * 1024,
            hold: Duration::from_us(100),
            loss_bp: 0,
            proxy: false,
            seed: 0x7AF1_C0DE,
        }
    }

    /// Returns the workload with a different board count.
    pub fn with_boards(mut self, boards: u8) -> Self {
        self.boards = boards;
        self
    }

    /// Returns the workload with a different stack personality.
    pub fn with_stack(mut self, stack: TrafficStack) -> Self {
        self.stack = stack;
        self
    }

    /// Returns the workload with a different per-board session count.
    pub fn with_sessions_per_board(mut self, sessions: u64) -> Self {
        self.sessions_per_board = sessions;
        self
    }

    /// Returns the workload with a different open gap.
    pub fn with_open_gap(mut self, gap: Duration) -> Self {
        self.open_gap = gap;
        self
    }

    /// Returns the workload with a different per-session payload.
    pub fn with_bytes_per_session(mut self, bytes: u64) -> Self {
        self.bytes_per_session = bytes;
        self
    }

    /// Returns the workload with a different hold time.
    pub fn with_hold(mut self, hold: Duration) -> Self {
        self.hold = hold;
        self
    }

    /// Returns the workload with segment loss injected.
    pub fn with_loss_bp(mut self, bp: u32) -> Self {
        self.loss_bp = bp;
        self
    }

    /// Returns the workload reshaped into the three-board
    /// client → proxy → server chain.
    pub fn with_proxy(mut self) -> Self {
        self.boards = 3;
        self.proxy = true;
        self
    }

    /// Returns the workload with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks the workload's internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant.
    pub fn validate(&self) {
        assert!(self.boards >= 2, "traffic needs at least two boards");
        assert!(self.sessions_per_board > 0, "traffic needs sessions");
        assert!(self.bytes_per_session > 0, "sessions carry payload");
        assert!(self.open_gap > Duration::ZERO, "opens need a gap");
        assert!(
            self.loss_bp <= 10_000,
            "loss probability cannot exceed 100%"
        );
        if self.proxy {
            assert_eq!(
                self.boards, 3,
                "the proxy chain is exactly client, proxy, server"
            );
        }
    }

    /// The conservative engine's lookahead: no segment sent at `t` is
    /// processed remotely before `t + propagation + switch latency`.
    pub fn lookahead(&self) -> Duration {
        EthLinkConfig::hundred_gig().propagation + SWITCH_LATENCY
    }

    /// Total client sessions the run must account for.
    pub fn total_sessions(&self) -> u64 {
        if self.proxy {
            self.sessions_per_board
        } else {
            u64::from(self.boards) * self.sessions_per_board
        }
    }

    /// Builds board `board`'s loss pattern (seeded per board, so
    /// probabilistic drops draw from private streams).
    fn loss_for(&self, board: u8) -> LossPattern {
        if self.loss_bp == 0 {
            return LossPattern::none();
        }
        let seed = self
            .seed
            .wrapping_add((u64::from(board) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut plan = FaultPlan::new(seed);
        plan.add(FaultSpec::probability(
            SEGMENT_LOSS_TARGET,
            f64::from(self.loss_bp) / 10_000.0,
        ));
        LossPattern::from_plan(plan)
    }
}

// -------------------------------------------------------------------
// The per-board shard
// -------------------------------------------------------------------

/// Key ordering per-board work: `(time, class, a, b)` where class 0 is
/// an inbox delivery `(src, seq)`, 1 the mux's earliest timer
/// `(timer seq, 0)`, and 2 the next scheduled open `(0, 0)`.
type WorkKey = (Time, u8, u64, u64);

type Out = Vec<(usize, Envelope<Vec<u8>>)>;

/// One board of the traffic cluster: its session mux, its open
/// schedule, and its half of the fabric.
struct TrafficBoard {
    id: usize,
    n: usize,
    w: TrafficWorkload,
    mux: SessionMux,
    /// Opens still to issue; `next_open` is armed while any remain.
    opens_left: u64,
    opens_issued: u64,
    next_open: Option<Time>,
    out: Vec<Option<Channel>>,
    inbox: BinaryHeap<Reverse<Envelope<Vec<u8>>>>,
    seq: u64,
    flows: Vec<FlowStats>,
    /// Scratch buffer the mux emits into; drained after every event.
    buf: Vec<WireSegment>,
    last: Time,
}

impl TrafficBoard {
    fn me(&self) -> u8 {
        self.id as u8
    }

    fn push_arrival(&mut self, env: Envelope<Vec<u8>>) {
        self.inbox.push(Reverse(env));
    }

    /// The destination of this board's `i`-th open: round-robin over
    /// the other boards in the mesh, always the proxy in the chain.
    fn open_dst(&self, i: u64) -> u8 {
        if self.w.proxy {
            return 1;
        }
        let others = self.n as u64 - 1;
        ((self.id as u64 + 1 + i % others) % self.n as u64) as u8
    }

    /// The next unit of work, or `None` when the board is quiescent.
    fn next_key(&self) -> Option<WorkKey> {
        let mut best: Option<WorkKey> = None;
        let consider = |k: WorkKey, best: &mut Option<WorkKey>| {
            if best.is_none_or(|b| k < b) {
                *best = Some(k);
            }
        };
        if let Some(Reverse(env)) = self.inbox.peek() {
            consider((env.at, 0, env.src as u64, env.seq), &mut best);
        }
        if let Some((t, seq)) = self.mux.next_timer() {
            consider((t, 1, seq, 0), &mut best);
        }
        if let Some(t) = self.next_open {
            consider((t, 2, 0, 0), &mut best);
        }
        best
    }

    /// Frames every segment the mux emitted and hands it to the fabric.
    /// The mux's transmit pipeline is serial, so the emission times are
    /// already monotone per board and the per-destination channels stay
    /// FIFO without a serialization floor.
    fn flush(&mut self, out: &mut Out) {
        let mut buf = std::mem::take(&mut self.buf);
        for ws in buf.drain(..) {
            let dst = usize::from(ws.seg.dst_board);
            debug_assert_ne!(dst, self.id, "the mux never emits to itself");
            let msg = BridgeMsg {
                src: self.me(),
                dst: ws.seg.dst_board,
                token: 0,
                addr: 0,
                seq: self.seq as u32,
                op: BridgeOp::Tcp(encode_segment(&ws.seg)),
            };
            let frame = encode_bridge(&msg);
            // The encoded frame carries the 28-byte segment header; the
            // session payload itself is synthetic, so the channel is
            // charged for both to occupy the wire realistically.
            let wire = frame.len() as u64 + u64::from(ws.seg.len);
            let ch = self.out[dst].as_mut().expect("no channel to self");
            let xfer = ch.send(ws.at, wire);
            let flow = &mut self.flows[dst];
            flow.frames += 1;
            flow.payload_bytes += u64::from(ws.seg.len);
            flow.wire_bytes += wire;
            out.push((
                dst,
                Envelope {
                    at: xfer.done + SWITCH_LATENCY,
                    src: self.id,
                    seq: self.seq,
                    payload: frame,
                },
            ));
            self.seq += 1;
        }
        self.buf = buf;
    }

    fn process_envelope(&mut self, out: &mut Out) {
        let Reverse(env) = self.inbox.pop().expect("inbox not empty");
        self.last = self.last.max(env.at);
        let msg = decode_bridge(&env.payload).expect("fabric frames survive transit");
        let BridgeOp::Tcp(bytes) = &msg.op else {
            unreachable!("non-traffic frame on the traffic fabric: {:?}", msg.op)
        };
        let seg = decode_segment(bytes).expect("segments survive transit");
        self.mux.on_segment(env.at, &seg, &mut self.buf);
        self.flush(out);
    }

    fn process_timer(&mut self, out: &mut Out) {
        if let Some(at) = self.mux.fire_next_timer(&mut self.buf) {
            self.last = self.last.max(at);
        }
        self.flush(out);
    }

    fn process_open(&mut self, now: Time, out: &mut Out) {
        self.last = self.last.max(now);
        let dst = self.open_dst(self.opens_issued);
        self.mux.open(
            now,
            dst,
            self.w.bytes_per_session,
            self.w.hold,
            &mut self.buf,
        );
        self.opens_issued += 1;
        self.opens_left -= 1;
        self.next_open = (self.opens_left > 0).then(|| now + self.w.open_gap);
        self.flush(out);
    }

    /// Runs the single earliest unit of work on this board.
    fn process_next(&mut self, out: &mut Out) {
        let key = self.next_key().expect("process_next on a quiescent board");
        match key.1 {
            0 => self.process_envelope(out),
            1 => self.process_timer(out),
            2 => self.process_open(key.0, out),
            _ => unreachable!("unknown work class"),
        }
    }

    /// Folds this board's externally observable final state into `d`.
    fn digest_into(&self, d: &mut Fnv) {
        d.u64(self.id as u64);
        d.u64(self.mux.state_digest());
        for f in &self.flows {
            d.u64(f.frames);
            d.u64(f.payload_bytes);
            d.u64(f.wire_bytes);
        }
        d.u64(self.last.as_ps());
    }
}

impl Shard for TrafficBoard {
    type Msg = Vec<u8>;

    fn step(&mut self, window: EpochWindow, arrivals: Vec<Envelope<Vec<u8>>>, out: &mut Out) {
        for env in arrivals {
            self.inbox.push(Reverse(env));
        }
        while let Some(key) = self.next_key() {
            if key.0 >= window.end {
                break;
            }
            self.process_next(out);
        }
    }

    fn idle(&self) -> bool {
        self.inbox.is_empty() && self.next_open.is_none() && self.mux.idle()
    }

    fn next_activity(&self) -> Option<Time> {
        self.next_key().map(|k| k.0)
    }
}

// -------------------------------------------------------------------
// Run drivers + report
// -------------------------------------------------------------------

/// Sequential reference driver: one global clock sweeping the earliest
/// work item across all boards with immediate delivery. The per-board
/// processing order is identical to the epoch engine's, so final states
/// must match bit-for-bit.
fn run_boards_reference(boards: &mut [TrafficBoard]) -> u64 {
    let mut messages = 0;
    let mut out = Vec::new();
    loop {
        let mut best: Option<(WorkKey, usize)> = None;
        for (i, b) in boards.iter().enumerate() {
            if let Some(k) = b.next_key() {
                if best.is_none_or(|(bk, bi)| (k, i) < (bk, bi)) {
                    best = Some((k, i));
                }
            }
        }
        let Some((_, i)) = best else { break };
        boards[i].process_next(&mut out);
        messages += out.len() as u64;
        for (dst, env) in out.drain(..) {
            boards[dst].push_arrival(env);
        }
    }
    messages
}

fn make_boards(w: &TrafficWorkload) -> Vec<TrafficBoard> {
    w.validate();
    let n = usize::from(w.boards);
    let mask = PortMask::for_boards(usize::from(w.boards));
    let link = EthLinkConfig::hundred_gig();
    let chan_cfg = ChannelConfig {
        bits_per_sec: link.bits_per_sec,
        coding_efficiency: 1.0,
        propagation: link.propagation,
        frame_overhead_bytes: FRAME_OVERHEAD_BYTES,
    };
    (0..n)
        .map(|id| {
            let mut mux =
                SessionMux::new(id as u8, w.stack.config(), mask).with_loss(w.loss_for(id as u8));
            if w.proxy && id == 1 {
                mux = mux.with_proxy_route(2);
            }
            let generates = !w.proxy || id == 0;
            let opens = if generates { w.sessions_per_board } else { 0 };
            TrafficBoard {
                id,
                n,
                w: *w,
                mux,
                opens_left: opens,
                opens_issued: 0,
                next_open: (opens > 0)
                    .then(|| Time::ZERO + Duration::from_ns(50) * (id as u64 + 1)),
                out: (0..n)
                    .map(|d| (d != id).then(|| Channel::new(chan_cfg)))
                    .collect(),
                inbox: BinaryHeap::new(),
                seq: 0,
                flows: vec![FlowStats::default(); n],
                buf: Vec::new(),
                last: Time::ZERO,
            }
        })
        .collect()
}

/// What one traffic run did — a pure function of the
/// [`TrafficWorkload`], never of the thread count. Only
/// `epochs`/`epochs_skipped` depend on the engine;
/// [`TrafficRunReport::assert_matches`] compares everything else.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRunReport {
    /// Boards simulated.
    pub boards: usize,
    /// Client sessions opened.
    pub opened: u64,
    /// Client sessions completed end to end.
    pub completed: u64,
    /// Passive opens accepted across all boards.
    pub accepted: u64,
    /// Passive flows fully closed.
    pub closed_server: u64,
    /// Proxy splices completed end to end.
    pub relayed_sessions: u64,
    /// Sum of every board's concurrent-flow high-water mark.
    pub peak_flows: u64,
    /// The single busiest board's high-water mark.
    pub peak_flows_board: u64,
    /// Flow-table slots ever allocated across all boards — the memory
    /// bound (equals `peak_flows` by slab construction).
    pub table_slots: u64,
    /// Segments emitted, including retransmissions and dropped copies.
    pub segments_tx: u64,
    /// Segments received and processed.
    pub segments_rx: u64,
    /// Data segments emitted.
    pub data_segments: u64,
    /// Zero-payload segments emitted.
    pub control_segments: u64,
    /// Duplicate acks received.
    pub dup_acks: u64,
    /// Payload bytes delivered in order to their receivers.
    pub payload_delivered: u64,
    /// Payload bytes spliced downstream→upstream by the proxy.
    pub relayed_bytes: u64,
    /// Data segments retransmitted.
    pub retransmissions: u64,
    /// RTO timers that fired a rewind.
    pub rto_fires: u64,
    /// Data segments discarded as out-of-order.
    pub out_of_order: u64,
    /// Segments dropped by the loss plans.
    pub losses_injected: u64,
    /// Drops recovered by retransmission.
    pub losses_recovered: u64,
    /// Bridge frames handed to the fabric.
    pub frames: u64,
    /// Encoded bytes handed to the fabric (synthetic payload included).
    pub wire_bytes: u64,
    /// Client handshake latency, merged across boards.
    pub handshake: LatencyHistogram,
    /// Client whole-session latency, merged across boards.
    pub session: LatencyHistogram,
    /// Latest instant any board observed.
    pub sim_end: Time,
    /// Lock-step epochs executed (zero under the reference driver).
    pub epochs: u64,
    /// Quiet epochs the engine jumped over (zero under the reference).
    pub epochs_skipped: u64,
    /// Cross-board envelopes exchanged.
    pub messages: u64,
    /// FNV-1a digest over every board's final state.
    pub digest: u64,
}

impl TrafficRunReport {
    /// Asserts this report equals `other` on every engine-independent
    /// field (everything but `epochs`/`epochs_skipped`).
    ///
    /// # Panics
    ///
    /// Panics on the first differing field.
    pub fn assert_matches(&self, other: &TrafficRunReport) {
        let mut a = self.clone();
        let mut b = other.clone();
        a.epochs = 0;
        b.epochs = 0;
        a.epochs_skipped = 0;
        b.epochs_skipped = 0;
        assert_eq!(a, b, "traffic run reports diverge");
    }

    /// Completed client sessions per second of simulated time.
    pub fn conns_per_sec(&self) -> f64 {
        let s = self.sim_end.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.completed as f64 / s
        }
    }

    /// Delivered payload bits per second of simulated time (the churn
    /// goodput; retransmitted copies excluded).
    pub fn goodput_bits(&self) -> f64 {
        let s = self.sim_end.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.payload_delivered as f64 * 8.0 / s
        }
    }

    /// Publishes the report under `prefix.*`. Every exported value is
    /// deterministic across thread counts, so two exports of same-seed
    /// runs are byte-identical.
    pub fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        let c = |reg: &mut MetricsRegistry, k: &str, v: u64| {
            reg.counter_set(&format!("{prefix}.{k}"), v);
        };
        c(reg, "boards", self.boards as u64);
        c(reg, "opened", self.opened);
        c(reg, "completed", self.completed);
        c(reg, "accepted", self.accepted);
        c(reg, "closed_server", self.closed_server);
        c(reg, "relayed_sessions", self.relayed_sessions);
        c(reg, "peak_flows", self.peak_flows);
        c(reg, "peak_flows_board", self.peak_flows_board);
        c(reg, "table_slots", self.table_slots);
        c(reg, "segments_tx", self.segments_tx);
        c(reg, "segments_rx", self.segments_rx);
        c(reg, "data_segments", self.data_segments);
        c(reg, "control_segments", self.control_segments);
        c(reg, "dup_acks", self.dup_acks);
        c(reg, "payload_delivered", self.payload_delivered);
        c(reg, "relayed_bytes", self.relayed_bytes);
        c(reg, "retransmissions", self.retransmissions);
        c(reg, "rto_fires", self.rto_fires);
        c(reg, "out_of_order", self.out_of_order);
        c(reg, "losses_injected", self.losses_injected);
        c(reg, "losses_recovered", self.losses_recovered);
        c(reg, "frames", self.frames);
        c(reg, "wire_bytes", self.wire_bytes);
        c(reg, "sim_end_ps", self.sim_end.as_ps());
        c(reg, "epochs", self.epochs);
        c(reg, "epochs_skipped", self.epochs_skipped);
        c(reg, "messages", self.messages);
        c(reg, "digest", self.digest);
    }
}

fn finish_run(
    w: &TrafficWorkload,
    boards: Vec<TrafficBoard>,
    epochs: u64,
    epochs_skipped: u64,
    messages: u64,
) -> TrafficRunReport {
    let mut digest = Fnv::new();
    let mut report = TrafficRunReport {
        boards: boards.len(),
        opened: 0,
        completed: 0,
        accepted: 0,
        closed_server: 0,
        relayed_sessions: 0,
        peak_flows: 0,
        peak_flows_board: 0,
        table_slots: 0,
        segments_tx: 0,
        segments_rx: 0,
        data_segments: 0,
        control_segments: 0,
        dup_acks: 0,
        payload_delivered: 0,
        relayed_bytes: 0,
        retransmissions: 0,
        rto_fires: 0,
        out_of_order: 0,
        losses_injected: 0,
        losses_recovered: 0,
        frames: 0,
        wire_bytes: 0,
        handshake: LatencyHistogram::new(),
        session: LatencyHistogram::new(),
        sim_end: Time::ZERO,
        epochs,
        epochs_skipped,
        messages,
        digest: 0,
    };
    for b in &boards {
        assert!(b.idle(), "run finished with live work on a board");
        assert_eq!(b.opens_left, 0, "a board retired with opens outstanding");
        assert_eq!(
            b.mux.table_slots(),
            b.mux.peak_flows(),
            "the slab grew past the concurrency high-water mark"
        );
    }
    for b in boards {
        b.digest_into(&mut digest);
        let s = b.mux.stats();
        report.opened += s.opened;
        report.completed += s.completed;
        report.accepted += s.accepted;
        report.closed_server += s.closed_server;
        report.relayed_sessions += s.relayed_sessions;
        report.peak_flows += u64::from(b.mux.peak_flows());
        report.peak_flows_board = report.peak_flows_board.max(u64::from(b.mux.peak_flows()));
        report.table_slots += u64::from(b.mux.table_slots());
        report.segments_tx += s.segments_tx;
        report.segments_rx += s.segments_rx;
        report.data_segments += s.data_segments;
        report.control_segments += s.control_segments;
        report.dup_acks += s.dup_acks;
        report.payload_delivered += s.payload_delivered;
        report.relayed_bytes += s.relayed_bytes;
        report.retransmissions += s.retransmissions;
        report.rto_fires += s.rto_fires;
        report.out_of_order += s.out_of_order;
        report.losses_injected += b.mux.loss().plan().injected(SEGMENT_LOSS_TARGET);
        report.losses_recovered += b.mux.loss().plan().recovered(SEGMENT_LOSS_TARGET);
        report.handshake.merge(&s.handshake);
        report.session.merge(&s.session);
        report.sim_end = report.sim_end.max(b.last);
        for (dst, (f, ch)) in b.flows.iter().zip(&b.out).enumerate() {
            report.frames += f.frames;
            report.wire_bytes += f.wire_bytes;
            if let Some(ch) = ch {
                assert_eq!(
                    f.wire_bytes,
                    ch.bytes_carried(),
                    "flow accounting diverged from the channel ({} -> {dst})",
                    b.id
                );
            }
        }
    }
    report.digest = digest.0;
    assert_eq!(report.opened, w.total_sessions(), "opens went missing");
    assert_eq!(
        report.completed, report.opened,
        "client sessions went missing"
    );
    assert_eq!(
        report.closed_server, report.accepted,
        "passive flows went missing"
    );
    if w.proxy {
        assert_eq!(
            report.relayed_sessions, report.opened,
            "splices went missing"
        );
        assert_eq!(
            report.payload_delivered,
            report.opened * w.bytes_per_session * 2,
            "proxied payload delivered once per hop"
        );
    } else {
        assert_eq!(report.relayed_sessions, 0);
        assert_eq!(
            report.payload_delivered,
            report.opened * w.bytes_per_session,
            "payload went missing"
        );
    }
    report
}

impl TrafficWorkload {
    /// Runs the workload on the conservative-parallel engine with
    /// `threads` workers. The report — and any metrics or bench JSON
    /// derived from it — is bit-identical for every thread count.
    pub fn run_parallel(&self, threads: usize) -> TrafficRunReport {
        assert!(threads >= 1, "need at least one worker thread");
        let mut boards = make_boards(self);
        let par_cfg = ParConfig::new(self.lookahead())
            .with_threads(threads)
            .with_channel_capacity(256);
        let par = run_conservative(&mut boards, &par_cfg);
        finish_run(self, boards, par.epochs, par.epochs_skipped, par.messages)
    }

    /// Runs the workload on the sequential reference driver. Exists to
    /// validate the parallel engine:
    /// [`TrafficRunReport::assert_matches`] against any
    /// [`TrafficWorkload::run_parallel`] report must hold.
    pub fn run_reference(&self) -> TrafficRunReport {
        let mut boards = make_boards(self);
        let messages = run_boards_reference(&mut boards);
        finish_run(self, boards, 0, 0, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mesh_completes_clean() {
        let w = TrafficWorkload::small();
        let r = w.run_reference();
        assert_eq!(r.opened, 2 * 48);
        assert_eq!(r.completed, 96);
        assert_eq!(r.accepted, 96);
        assert_eq!(r.closed_server, 96);
        assert_eq!(r.relayed_sessions, 0);
        assert_eq!(r.payload_delivered, 96 * 8 * 1024);
        assert_eq!(r.retransmissions, 0);
        assert_eq!(r.losses_injected, 0);
        assert!(r.peak_flows > 2, "held sessions must overlap");
        assert_eq!(r.table_slots, r.peak_flows);
        assert!(r.conns_per_sec() > 0.0);
        assert_eq!(r.handshake.count(), 96);
    }

    #[test]
    fn parallel_matches_reference_across_threads() {
        let w = TrafficWorkload::small();
        let reference = w.run_reference();
        assert_eq!(reference.epochs, 0);
        let mut parallel: Vec<TrafficRunReport> =
            [1usize, 2, 4].iter().map(|&t| w.run_parallel(t)).collect();
        for p in &parallel {
            p.assert_matches(&reference);
        }
        let first = parallel.remove(0);
        assert!(first.epochs > 0);
        for p in &parallel {
            assert_eq!(*p, first, "thread counts diverge even on epochs");
        }
    }

    #[test]
    fn four_board_mesh_spreads_the_load() {
        let w = TrafficWorkload::small()
            .with_boards(4)
            .with_sessions_per_board(24);
        let r = w.run_reference();
        assert_eq!(r.opened, 4 * 24);
        assert_eq!(r.completed, 96);
        // Round-robin targets: every board accepts from every other.
        assert_eq!(r.accepted, 96);
    }

    #[test]
    fn loss_costs_goodput_but_loses_nothing() {
        let clean = TrafficWorkload::small()
            .with_bytes_per_session(64 * 1024)
            .with_sessions_per_board(12);
        let lossy = clean.with_loss_bp(200);
        let a = clean.run_reference();
        let b = lossy.run_reference();
        assert_eq!(a.payload_delivered, b.payload_delivered);
        assert_eq!(a.retransmissions, 0);
        assert!(b.losses_injected > 0, "2% loss must bite");
        // One RTO rewind recovers every drop in its window, so the
        // recovery ledger counts fires, not individual drops.
        assert_eq!(b.losses_recovered, b.rto_fires);
        assert!(b.retransmissions >= b.rto_fires);
        assert!(b.sim_end > a.sim_end, "recovery costs time");
    }

    #[test]
    fn proxy_chain_relays_every_session() {
        let w = TrafficWorkload::small()
            .with_proxy()
            .with_sessions_per_board(16);
        let r = w.run_reference();
        assert_eq!(r.opened, 16);
        assert_eq!(r.relayed_sessions, 16);
        // The proxy accepts 16 downstream and the server 16 upstream.
        assert_eq!(r.accepted, 32);
        assert_eq!(r.payload_delivered, 2 * 16 * 8 * 1024);
        assert_eq!(r.relayed_bytes, 16 * 8 * 1024);
    }

    #[test]
    fn kernel_and_hybrid_stacks_complete() {
        for stack in [TrafficStack::Kernel, TrafficStack::Hybrid] {
            let w = TrafficWorkload::small()
                .with_stack(stack)
                .with_sessions_per_board(8)
                .with_open_gap(Duration::from_us(60));
            let r = w.run_reference();
            assert_eq!(r.completed, 16, "{} sessions complete", stack.label());
        }
    }

    #[test]
    fn hybrid_stack_recovers_injected_loss_too() {
        // The experiment's loss leg now runs on the hybrid offload
        // point as well as the all-FPGA stack; pin the combination in
        // debug so the release-only leg cannot be its first exercise.
        let clean = TrafficWorkload::small()
            .with_stack(TrafficStack::Hybrid)
            .with_bytes_per_session(64 * 1024)
            .with_sessions_per_board(12)
            .with_open_gap(Duration::from_us(60));
        let lossy = clean.with_loss_bp(200);
        let a = clean.run_reference();
        let b = lossy.run_reference();
        assert_eq!(a.payload_delivered, b.payload_delivered);
        assert_eq!(a.retransmissions, 0);
        assert!(b.losses_injected > 0, "2% loss must bite");
        assert_eq!(b.losses_recovered, b.rto_fires);
        assert!(b.sim_end > a.sim_end, "recovery costs time");
    }

    #[test]
    fn different_seeds_diverge_only_under_loss() {
        let w = TrafficWorkload::small().with_loss_bp(300);
        let a = w.run_reference();
        let b = w.with_seed(0x0D15_EA5E).run_reference();
        assert_ne!(a.digest, b.digest, "loss draws from the seed");
        let c = TrafficWorkload::small();
        let d = c.with_seed(0x0D15_EA5E);
        assert_eq!(
            c.run_reference().digest,
            d.run_reference().digest,
            "without loss the seed is inert"
        );
    }
}
