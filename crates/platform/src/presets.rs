//! Commercial-platform presets (the Fig. 2 topology survey).
//!
//! Each preset captures how a platform couples CPU and FPGA and provides
//! the engine(s) the experiments drive. Enzian's own numbers are
//! *measured* from the models in this workspace; platforms we cannot
//! simulate at protocol level (CAPI, the Intel HARP generations) carry
//! their published interconnect figures from Choi et al. [13, 14] as
//! documented constants, exactly as the paper's Fig. 3 reproduces them.

use enzian_eci::{EciSystem, EciSystemConfig, LinkPolicy};
use enzian_pcie::{DmaEngine, DmaEngineConfig};
use enzian_sim::Duration;

use enzian_apps::gbdt::AcceleratorConfig;

/// The platforms of Figs. 2/3/9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformPreset {
    /// Conventional PCIe card in a server (Alpha Data ADM-PCIE-7V3,
    /// PCIe x8 Gen3).
    AlphaData,
    /// Amazon EC2 F1 instance (XCVU9P behind PCIe x16 Gen3, shell-
    /// constrained clock).
    AmazonF1,
    /// Xilinx Alveo u250 (PCIe x16 Gen3) — the Fig. 6 comparison card.
    AlveoU250,
    /// IBM CAPI on POWER8 (PCIe-based with a coherence protocol layer).
    Capi,
    /// Intel Xeon+FPGA v1 (QPI-coherent).
    XeonFpgaV1,
    /// Intel Broadwell+Arria 10 / HARPv2 (UPI + PCIe).
    BroadwellArria,
    /// Microsoft Catapult (PCIe + bump-in-the-wire NIC).
    Catapult,
    /// Xilinx VCU118 evaluation board (same XCVU9P, mid speed grade).
    Vcu118,
    /// Enzian itself.
    Enzian,
    /// A commercial 2-socket ThunderX-1 server (the CCPI hardware
    /// reference in §5.1: 19 GiB/s, 150 ns).
    ThunderX2Socket,
}

impl PlatformPreset {
    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            PlatformPreset::AlphaData => "Alpha Data",
            PlatformPreset::AmazonF1 => "Amazon-F1",
            PlatformPreset::AlveoU250 => "Alveo u250",
            PlatformPreset::Capi => "CAPI",
            PlatformPreset::XeonFpgaV1 => "Xeon+FPGAv1",
            PlatformPreset::BroadwellArria => "Broadwell+Arria (HARPv2)",
            PlatformPreset::Catapult => "Catapult",
            PlatformPreset::Vcu118 => "VCU118",
            PlatformPreset::Enzian => "Enzian",
            PlatformPreset::ThunderX2Socket => "2-socket ThunderX-1",
        }
    }

    /// A fresh ECI system for Enzian-side experiments, restricted to one
    /// link or balanced over both.
    pub fn enzian_system(single_link: bool) -> EciSystem {
        let mut cfg = EciSystemConfig::enzian();
        cfg.policy = if single_link {
            LinkPolicy::Single(0)
        } else {
            LinkPolicy::RoundRobin
        };
        EciSystem::new(cfg)
    }

    /// A fresh PCIe DMA engine for the card platforms.
    pub fn dma_engine(self) -> DmaEngine {
        let cfg = match self {
            PlatformPreset::AlphaData => DmaEngineConfig {
                link: enzian_pcie::PcieLinkConfig {
                    lanes: 8,
                    ..enzian_pcie::PcieLinkConfig::x16_gen3()
                },
                // Older-generation card with a slower software path.
                doorbell: Duration::from_ns(400),
                descriptor_fetch: Duration::from_ns(600),
                writeback: Duration::from_ns(400),
                engine_occupancy: Duration::from_ns(900),
            },
            _ => DmaEngineConfig::alveo_u250(),
        };
        DmaEngine::new(cfg)
    }

    /// The Fig. 9 GBDT accelerator configuration of this platform, if it
    /// appears in that figure. The design is identical everywhere (one
    /// tuple per 6 cycles); only the achievable clock differs — F1's
    /// shell constrains placement, the VCU118 part is a mid speed grade,
    /// and Enzian uses the fastest XCVU9P grade (§5.3: "Enzian employs
    /// the part variant with the highest speed available").
    pub fn gbdt_config(self, engines: u32) -> Option<AcceleratorConfig> {
        let clock_hz = match self {
            PlatformPreset::BroadwellArria => 198_000_000,
            PlatformPreset::AmazonF1 => 144_000_000,
            PlatformPreset::Vcu118 => 245_000_000,
            PlatformPreset::Enzian => 288_000_000,
            _ => return None,
        };
        Some(AcceleratorConfig {
            clock_hz,
            engines,
            initiation_interval: 6,
            pipeline_depth: 120,
            link_bytes_per_sec: match self {
                // HARPv2 reaches host memory over UPI; the rest use PCIe
                // or ECI. None of these bind (the workload needs <4 GB/s).
                PlatformPreset::BroadwellArria => 6.5e9,
                PlatformPreset::Enzian => 9.8e9,
                _ => 11.0e9,
            },
        })
    }

    /// Published CPU↔FPGA interconnect figures from Choi et al. for the
    /// platforms we do not model at protocol level:
    /// `(read bandwidth GiB/s, small-transfer latency µs)`.
    pub fn published_interconnect(self) -> Option<(f64, f64)> {
        match self {
            // PCIe cards: bulk DMA bandwidth, but ~100 µs software
            // latency through the vendor driver stack (Fig. 3 annotates
            // Alpha Data at 100 µs and F1 at 160 µs).
            PlatformPreset::AlphaData => Some((3.3, 100.0)),
            PlatformPreset::AmazonF1 => Some((10.5, 160.0)),
            PlatformPreset::Capi => Some((3.3, 1.5)),
            PlatformPreset::XeonFpgaV1 => Some((6.0, 0.4)),
            PlatformPreset::BroadwellArria => Some((12.0, 0.5)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbdt_clocks_only_for_fig9_platforms() {
        assert!(PlatformPreset::Enzian.gbdt_config(1).is_some());
        assert!(PlatformPreset::Vcu118.gbdt_config(2).is_some());
        assert!(PlatformPreset::Capi.gbdt_config(1).is_none());
        assert!(PlatformPreset::Catapult.gbdt_config(1).is_none());
    }

    #[test]
    fn enzian_has_the_fastest_fig9_clock() {
        let clocks: Vec<u64> = [
            PlatformPreset::BroadwellArria,
            PlatformPreset::AmazonF1,
            PlatformPreset::Vcu118,
            PlatformPreset::Enzian,
        ]
        .iter()
        .map(|p| p.gbdt_config(1).unwrap().clock_hz)
        .collect();
        assert_eq!(clocks.iter().max(), Some(&clocks[3]));
    }

    #[test]
    fn published_points_cover_the_survey_platforms() {
        for p in [
            PlatformPreset::AlphaData,
            PlatformPreset::AmazonF1,
            PlatformPreset::Capi,
            PlatformPreset::XeonFpgaV1,
            PlatformPreset::BroadwellArria,
        ] {
            let (bw, lat) = p.published_interconnect().unwrap();
            assert!(bw > 0.0 && lat > 0.0);
        }
        assert!(PlatformPreset::Enzian.published_interconnect().is_none());
    }

    #[test]
    fn names_are_unique() {
        let names = [
            PlatformPreset::AlphaData,
            PlatformPreset::AmazonF1,
            PlatformPreset::AlveoU250,
            PlatformPreset::Capi,
            PlatformPreset::XeonFpgaV1,
            PlatformPreset::BroadwellArria,
            PlatformPreset::Catapult,
            PlatformPreset::Vcu118,
            PlatformPreset::Enzian,
            PlatformPreset::ThunderX2Socket,
        ]
        .map(|p| p.name());
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
