//! The Board Development Kit console (§4.4 / artifact A.5).
//!
//! *"The BDK is interesting in that it allows extensive configuration of
//! the CPU and associated hardware. For example, the BDK is responsible
//! for bringing up the ECI protocol, and can be used to limit bandwidth,
//! number of lanes, or clock frequency to many parts of the system …
//! This degree of control is also useful for 'scaling' the performance
//! of some parts of the system, in order to simulate a platform with
//! different performance characteristics."*
//!
//! [`BdkConsole`] is that command line: it operates on an [`EciSystem`]
//! and a memory controller exactly like the serial console the artifact
//! workflow drives (`eci lanes 4`, `memtest marching`, …), so the
//! bring-up procedure can be scripted and tested.

use enzian_eci::link::LinkState;
use enzian_eci::{EciSystem, EciSystemConfig, LinkPolicy};
use enzian_mem::memtest::{self, MemtestKind};
use enzian_mem::Addr;
use enzian_sim::{SimRng, Time};

/// Errors from console commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdkError {
    /// The command was not recognised.
    UnknownCommand(String),
    /// The command's arguments were malformed.
    BadArguments {
        /// The command.
        command: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A memtest failed verification.
    MemtestFailed(MemtestKind),
}

impl std::fmt::Display for BdkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BdkError::UnknownCommand(c) => write!(f, "unknown command: {c}"),
            BdkError::BadArguments { command, expected } => {
                write!(f, "{command}: expected {expected}")
            }
            BdkError::MemtestFailed(k) => write!(f, "memtest {k:?} FAILED"),
        }
    }
}

impl std::error::Error for BdkError {}

/// The BDK console attached to a system under bring-up.
pub struct BdkConsole {
    sys: EciSystem,
    now: Time,
    rng: SimRng,
    log: Vec<String>,
}

impl std::fmt::Debug for BdkConsole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BdkConsole")
            .field("now", &self.now)
            .field("log_lines", &self.log.len())
            .finish()
    }
}

impl BdkConsole {
    /// Attaches to a fresh system with both links still down (as at the
    /// BDK boot-menu break point of the artifact workflow).
    pub fn new() -> Self {
        let cfg = EciSystemConfig::enzian();
        let mut sys = EciSystem::new(cfg);
        // The system constructor trains the links; the BDK starts with
        // them down and brings them up explicitly.
        *sys.links_mut() = enzian_eci::EciLinks::new(cfg.link, cfg.policy);
        BdkConsole {
            sys,
            now: Time::ZERO,
            rng: SimRng::seed_from(0xBD1C),
            log: Vec::new(),
        }
    }

    /// The console transcript.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Current simulated time at the console.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The system under bring-up (e.g. to run traffic after `eci up`).
    pub fn system(&mut self) -> &mut EciSystem {
        &mut self.sys
    }

    fn say(&mut self, line: impl Into<String>) {
        self.log.push(line.into());
    }

    /// Executes one console command line. Supported commands:
    ///
    /// ```text
    /// eci up <lanes>        train both links at <lanes> lanes (1..=12)
    /// eci status            print link states
    /// eci policy <single0|single1|rr|addr>
    /// memtest <dram-check|data-bus|address-bus|marching|random> <MiB>
    /// peek <hex-addr>       read 8 bytes of CPU memory
    /// poke <hex-addr> <hex> write 8 bytes of CPU memory
    /// ```
    ///
    /// # Errors
    ///
    /// Unknown commands, malformed arguments, and failed memtests.
    pub fn exec(&mut self, line: &str) -> Result<(), BdkError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens.as_slice() {
            ["eci", "up", lanes] => {
                let lanes: u8 = lanes.parse().map_err(|_| BdkError::BadArguments {
                    command: "eci up".into(),
                    expected: "a lane count 1..=12",
                })?;
                if !(1..=12).contains(&lanes) {
                    return Err(BdkError::BadArguments {
                        command: "eci up".into(),
                        expected: "a lane count 1..=12",
                    });
                }
                self.sys.links_mut().train(0, self.now, lanes);
                self.sys.links_mut().train(1, self.now, lanes);
                self.now += enzian_sim::Duration::from_ms(3);
                self.sys.links_mut().poll(self.now);
                self.say(format!("ECI: both links up at {lanes} lanes"));
                Ok(())
            }
            ["eci", "status"] => {
                for i in 0..2u8 {
                    let state = self.sys.links().link_state(i);
                    let text = match state {
                        LinkState::Down => "DOWN".to_string(),
                        LinkState::Training { .. } => "TRAINING".to_string(),
                        LinkState::Up { lanes } => format!("UP ({lanes} lanes)"),
                    };
                    self.say(format!("link{i}: {text}"));
                }
                Ok(())
            }
            ["eci", "policy", p] => {
                let policy = match *p {
                    "single0" => LinkPolicy::Single(0),
                    "single1" => LinkPolicy::Single(1),
                    "rr" => LinkPolicy::RoundRobin,
                    "addr" => LinkPolicy::ByAddress,
                    _ => {
                        return Err(BdkError::BadArguments {
                            command: "eci policy".into(),
                            expected: "single0|single1|rr|addr",
                        })
                    }
                };
                self.sys.links_mut().set_policy(policy);
                self.say(format!("ECI: load-balancing policy {policy:?}"));
                Ok(())
            }
            ["memtest", kind, mib] => {
                let kind = match *kind {
                    "dram-check" => MemtestKind::DramCheck,
                    "data-bus" => MemtestKind::DataBus,
                    "address-bus" => MemtestKind::AddressBus,
                    "marching" => MemtestKind::MarchingRows,
                    "random" => MemtestKind::RandomData,
                    _ => {
                        return Err(BdkError::BadArguments {
                            command: "memtest".into(),
                            expected: "dram-check|data-bus|address-bus|marching|random",
                        })
                    }
                };
                let mib: u64 = mib.parse().map_err(|_| BdkError::BadArguments {
                    command: "memtest".into(),
                    expected: "a span in MiB",
                })?;
                let report = memtest::run(
                    kind,
                    self.sys.cpu_mem(),
                    self.now,
                    Addr(0),
                    mib.max(1) << 20,
                    &mut self.rng,
                );
                self.now = report.finished_at;
                if report.passed {
                    self.say(format!(
                        "memtest {kind:?}: PASS ({} accesses, t={})",
                        report.accesses, self.now
                    ));
                    Ok(())
                } else {
                    self.say(format!(
                        "memtest {kind:?}: FAIL at {:?}",
                        report.first_failure
                    ));
                    Err(BdkError::MemtestFailed(kind))
                }
            }
            ["peek", addr] => {
                let addr = parse_hex(addr).ok_or(BdkError::BadArguments {
                    command: "peek".into(),
                    expected: "a hex address",
                })?;
                let v = self.sys.cpu_mem().store().read_u64(Addr(addr));
                self.say(format!("{addr:#012x}: {v:#018x}"));
                Ok(())
            }
            ["poke", addr, value] => {
                let addr = parse_hex(addr).ok_or(BdkError::BadArguments {
                    command: "poke".into(),
                    expected: "a hex address",
                })?;
                let value = parse_hex(value).ok_or(BdkError::BadArguments {
                    command: "poke".into(),
                    expected: "a hex value",
                })?;
                self.sys.cpu_mem().store_mut().write_u64(Addr(addr), value);
                self.say(format!("{addr:#012x} <- {value:#018x}"));
                Ok(())
            }
            [] => Ok(()),
            other => Err(BdkError::UnknownCommand(other.join(" "))),
        }
    }

    /// Executes a script, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Returns the first failing command's error together with its line
    /// number.
    pub fn run_script(&mut self, script: &str) -> Result<(), (usize, BdkError)> {
        for (i, line) in script.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            self.exec(line).map_err(|e| (i + 1, e))?;
        }
        Ok(())
    }
}

impl Default for BdkConsole {
    fn default() -> Self {
        BdkConsole::new()
    }
}

fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use enzian_mem::NodeId;

    #[test]
    fn links_start_down_and_train_on_command() {
        let mut bdk = BdkConsole::new();
        bdk.exec("eci status").unwrap();
        assert!(bdk.log().iter().any(|l| l.contains("DOWN")));
        bdk.exec("eci up 12").unwrap();
        bdk.exec("eci status").unwrap();
        assert!(bdk.log().iter().any(|l| l.contains("UP (12 lanes)")));
        // Traffic works after bring-up.
        let now = bdk.now();
        let (_, t) = bdk.system().fpga_read_line(now, Addr(0));
        assert!(t > now);
    }

    #[test]
    fn four_lane_debug_configuration() {
        // "Early debugging of ECI was done with 4 lanes rather than the
        // full 24."
        let mut bdk = BdkConsole::new();
        bdk.exec("eci up 4").unwrap();
        assert!(matches!(
            bdk.system().links().link_state(0),
            LinkState::Up { lanes: 4 }
        ));
    }

    #[test]
    fn memtests_pass_and_advance_time() {
        let mut bdk = BdkConsole::new();
        let t0 = bdk.now();
        bdk.exec("memtest dram-check 64").unwrap();
        bdk.exec("memtest data-bus 1").unwrap();
        bdk.exec("memtest marching 1").unwrap();
        assert!(bdk.now() > t0);
        assert!(bdk.log().iter().filter(|l| l.contains("PASS")).count() == 3);
    }

    #[test]
    fn peek_poke_roundtrip() {
        let mut bdk = BdkConsole::new();
        bdk.exec("poke 0x1000 0xDEADBEEF").unwrap();
        bdk.exec("peek 0x1000").unwrap();
        assert!(bdk.log().last().unwrap().contains("0x00000000deadbeef"));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut bdk = BdkConsole::new();
        assert!(matches!(
            bdk.exec("eci up 24"),
            Err(BdkError::BadArguments { .. })
        ));
        assert!(matches!(
            bdk.exec("frobnicate"),
            Err(BdkError::UnknownCommand(_))
        ));
        assert!(matches!(
            bdk.exec("memtest sideways 1"),
            Err(BdkError::BadArguments { .. })
        ));
    }

    #[test]
    fn scripted_bringup_matches_artifact_workflow() {
        let mut bdk = BdkConsole::new();
        bdk.run_script(
            "# Enzian quickstart bring-up
             eci up 12
             eci policy single0
             memtest dram-check 16
             memtest random 1
             eci status",
        )
        .expect("script runs");
        // The system is usable and the policy took effect.
        assert_eq!(bdk.system().links().policy(), LinkPolicy::Single(0));
        let now = bdk.now();
        let t = bdk.system().io_write(now, NodeId::Cpu, Addr(0xF0), 4, 1);
        assert!(t > now);
    }

    #[test]
    fn script_errors_carry_line_numbers() {
        let mut bdk = BdkConsole::new();
        let err = bdk.run_script("eci up 12\nbogus command\n").unwrap_err();
        assert_eq!(err.0, 2);
    }
}
