//! Catapult subsumption: the "bump in the wire" (§5.2).
//!
//! *"Enzian can also subsume the use-case for Microsoft Catapult (with
//! equivalent performance) by connecting an additional networking cable
//! between one of the 100 Gb/s interfaces on the XCVU9P (clocked at
//! 10 GHz rather than 25 GHz) and one of the ThunderX-1's 40 Gb/s
//! NICs."* The FPGA then sits inline between the host NIC and the
//! datacenter network, transforming every frame at line rate.
//!
//! [`BumpInTheWire`] models exactly that wiring: host → FPGA → network
//! (and back), with a user-supplied per-frame transform running in the
//! FPGA — the structure Catapult used for crypto offload and Azure's
//! accelerated networking.

use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_sim::{Duration, Time};

/// A per-frame transform executed inline on the FPGA. Receives the frame
/// payload, returns the rewritten payload.
pub type FrameTransform = Box<dyn FnMut(&[u8]) -> Vec<u8>>;

/// One forwarded frame's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardedFrame {
    /// The transformed payload that reached the network.
    pub payload: Vec<u8>,
    /// Arrival at the network side.
    pub delivered: Time,
}

/// The inline FPGA hop between the host NIC and the network.
pub struct BumpInTheWire {
    /// Host NIC ↔ FPGA: the ThunderX-1 40G port cabled to the FPGA.
    host_link: EthLink,
    /// FPGA ↔ datacenter network: one 100G cage, down-clocked to match.
    net_link: EthLink,
    transform: FrameTransform,
    /// FPGA inline processing: fixed cycles plus per-64-byte beat.
    pipe_fixed: Duration,
    pipe_per_beat: Duration,
    frames: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl std::fmt::Debug for BumpInTheWire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BumpInTheWire")
            .field("frames", &self.frames)
            .field("bytes_in", &self.bytes_in)
            .field("bytes_out", &self.bytes_out)
            .finish()
    }
}

impl BumpInTheWire {
    /// Wires the bump with `transform` as the inline function. Both hops
    /// run at 40 Gb/s: the host side is the ThunderX NIC's native rate
    /// and the FPGA cage is down-clocked to match, as the paper notes.
    pub fn new(transform: FrameTransform) -> Self {
        BumpInTheWire {
            host_link: EthLink::new(EthLinkConfig::forty_gig()),
            net_link: EthLink::new(EthLinkConfig::forty_gig()),
            transform,
            pipe_fixed: Duration::from_ns(120),
            pipe_per_beat: Duration::from_ns(3),
            frames: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }

    /// `(frames, bytes in, bytes out)` forwarded.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.frames, self.bytes_in, self.bytes_out)
    }

    /// Forwards one outbound frame: host NIC → FPGA transform → network.
    ///
    /// # Panics
    ///
    /// Panics on an empty frame.
    pub fn send_outbound(&mut self, now: Time, payload: &[u8]) -> ForwardedFrame {
        assert!(!payload.is_empty(), "empty frame");
        self.frames += 1;
        self.bytes_in += payload.len() as u64;

        // Host NIC to FPGA.
        let at_fpga = self.host_link.send_a_to_b(now, payload.len() as u64);
        // Inline processing (cut-through after the pipeline fill).
        let beats = (payload.len() as u64).div_ceil(64);
        let processed = at_fpga + self.pipe_fixed + self.pipe_per_beat * beats;
        let out = (self.transform)(payload);
        self.bytes_out += out.len() as u64;
        // FPGA to the network.
        let delivered = self.net_link.send_a_to_b(processed, out.len() as u64);
        ForwardedFrame {
            payload: out,
            delivered,
        }
    }

    /// Forwards one inbound frame: network → FPGA transform → host NIC.
    ///
    /// # Panics
    ///
    /// Panics on an empty frame.
    pub fn recv_inbound(&mut self, now: Time, payload: &[u8]) -> ForwardedFrame {
        assert!(!payload.is_empty(), "empty frame");
        self.frames += 1;
        self.bytes_in += payload.len() as u64;
        let at_fpga = self.net_link.send_b_to_a(now, payload.len() as u64);
        let beats = (payload.len() as u64).div_ceil(64);
        let processed = at_fpga + self.pipe_fixed + self.pipe_per_beat * beats;
        let out = (self.transform)(payload);
        self.bytes_out += out.len() as u64;
        let delivered = self.host_link.send_b_to_a(processed, out.len() as u64);
        ForwardedFrame {
            payload: out,
            delivered,
        }
    }
}

/// A Catapult-style transform: XOR-encrypt the payload with a rolling
/// key (stand-in for the AES bump Catapult shipped).
pub fn xor_cipher(key: u64) -> FrameTransform {
    Box::new(move |frame: &[u8]| {
        frame
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ key.to_le_bytes()[i % 8])
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_is_applied_and_invertible() {
        let mut bump = BumpInTheWire::new(xor_cipher(0xDEAD_BEEF_0BAD_F00D));
        let frame = vec![7u8; 1500];
        let out = bump.send_outbound(Time::ZERO, &frame);
        assert_ne!(out.payload, frame, "cipher did nothing");
        // Receiving it back through the same cipher restores the frame.
        let back = bump.recv_inbound(out.delivered, &out.payload);
        assert_eq!(back.payload, frame);
    }

    #[test]
    fn inline_hop_adds_microsecond_scale_latency() {
        let mut bump = BumpInTheWire::new(xor_cipher(1));
        let out = bump.send_outbound(Time::ZERO, &[1u8; 1500]);
        let lat = out.delivered.since(Time::ZERO);
        assert!(
            lat > Duration::from_ns(500) && lat < Duration::from_us(5),
            "bump latency {lat}"
        );
    }

    #[test]
    fn sustains_the_40g_line_rate() {
        let mut bump = BumpInTheWire::new(xor_cipher(2));
        let n = 5_000u64;
        let mut last = Time::ZERO;
        for _ in 0..n {
            last = last.max(bump.send_outbound(Time::ZERO, &[0u8; 1500]).delivered);
        }
        let gbps = (n * 1500 * 8) as f64 / last.as_secs_f64() / 1e9;
        // Payload rate just under 40G after framing: the FPGA never
        // becomes the bottleneck.
        assert!(gbps > 35.0, "bump throughput {gbps:.1} Gb/s");
        let (frames, bin, bout) = bump.stats();
        assert_eq!(frames, n);
        assert_eq!(bin, bout);
    }

    #[test]
    fn transform_may_change_frame_size() {
        // A compressing bump: drop every second byte.
        let mut bump =
            BumpInTheWire::new(Box::new(|f: &[u8]| f.iter().step_by(2).copied().collect()));
        let out = bump.send_outbound(Time::ZERO, &[9u8; 1000]);
        assert_eq!(out.payload.len(), 500);
        let (_, bin, bout) = bump.stats();
        assert_eq!(bin, 1000);
        assert_eq!(bout, 500);
    }
}
