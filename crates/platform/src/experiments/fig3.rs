//! Figure 3: CPU–FPGA performance summary across platforms.
//!
//! The paper adapts Choi et al.'s survey scatter (interconnect bandwidth
//! vs latency) and adds Enzian's points. Enzian's entries here are
//! *measured* from the workspace models (one ECI link, full ECI, and
//! FPGA-local DRAM); the commercial platforms carry their published
//! figures as documented constants (see
//! [`PlatformPreset::published_interconnect`]).

use enzian_mem::{Addr, MemoryController, Op};
use enzian_sim::{Instrumented, MetricsRegistry, Time, TraceEvent};

use crate::presets::PlatformPreset;

/// One point in the summary scatter.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Point {
    /// Series label.
    pub label: String,
    /// Sustained read bandwidth, GiB/s.
    pub bandwidth_gib: f64,
    /// Small-transfer latency, µs.
    pub latency_us: f64,
    /// Whether the point was measured from our models (vs published).
    pub measured: bool,
}

/// Produces all points of the summary.
pub fn run() -> Vec<Fig3Point> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-point gauges, the measured systems' component
/// counters, and one trace event per point into `reg` under `fig3.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<Fig3Point> {
    let mut points = Vec::new();
    let mut sim_end = Time::ZERO;

    // Published survey platforms.
    for p in [
        PlatformPreset::AlphaData,
        PlatformPreset::AmazonF1,
        PlatformPreset::Capi,
        PlatformPreset::XeonFpgaV1,
        PlatformPreset::BroadwellArria,
    ] {
        let (bw, lat) = p.published_interconnect().expect("survey platform");
        points.push(Fig3Point {
            label: format!("{} ({})", p.name(), "published"),
            bandwidth_gib: bw,
            latency_us: lat,
            measured: false,
        });
    }

    // Enzian, one ECI link.
    let mut sys = PlatformPreset::enzian_system(true);
    let lines = 8192u64;
    let done = sys.fpga_read_burst(Time::ZERO, Addr(0), lines);
    let one_link_bw = (lines * 128) as f64 / done.as_secs_f64() / (1u64 << 30) as f64;
    sim_end = sim_end.max(done);
    let mut tmp = MetricsRegistry::new();
    sys.export_metrics("fig3.eci.one_link", &mut tmp);
    reg.merge(&tmp);
    let mut sys = PlatformPreset::enzian_system(true);
    let (_, t) = sys.fpga_read_line(Time::ZERO, Addr(0));
    let line_lat_us = t.as_micros_f64();
    sim_end = sim_end.max(t);
    points.push(Fig3Point {
        label: "Enzian (1 ECI link)".into(),
        bandwidth_gib: one_link_bw,
        latency_us: line_lat_us,
        measured: true,
    });

    // Enzian, full ECI (both links balanced).
    let mut sys = PlatformPreset::enzian_system(false);
    let done = sys.fpga_read_burst(Time::ZERO, Addr(0), lines);
    sim_end = sim_end.max(done);
    let mut tmp = MetricsRegistry::new();
    sys.export_metrics("fig3.eci.full", &mut tmp);
    reg.merge(&tmp);
    points.push(Fig3Point {
        label: "Enzian (full ECI)".into(),
        bandwidth_gib: (lines * 128) as f64 / done.as_secs_f64() / (1u64 << 30) as f64,
        latency_us: line_lat_us,
        measured: true,
    });

    // Enzian FPGA-side DRAM (what the FPGA reaches without any
    // interconnect at all).
    let mut mem = MemoryController::new(enzian_mem::MemoryControllerConfig::enzian_fpga());
    let total = 32u64 << 20;
    let mut last = Time::ZERO;
    let mut a = 0;
    let mut dram_requests = 0u64;
    while a < total {
        last = last.max(mem.request(Time::ZERO, Addr(a), 1024, Op::Read));
        a += 1024;
        dram_requests += 1;
    }
    sim_end = sim_end.max(last);
    points.push(Fig3Point {
        label: "Enzian DRAM".into(),
        bandwidth_gib: total as f64 / last.as_secs_f64() / (1u64 << 30) as f64,
        latency_us: 0.12,
        measured: true,
    });

    for p in &points {
        let slug = super::metric_slug(&p.label);
        reg.gauge_set(&format!("fig3.{slug}.bandwidth_gib"), p.bandwidth_gib);
        reg.gauge_set(&format!("fig3.{slug}.latency_us"), p.latency_us);
        reg.trace_event(
            TraceEvent::new(sim_end, "fig3", "point")
                .field("label", p.label.as_str())
                .field("bandwidth_gib", p.bandwidth_gib)
                .field("latency_us", p.latency_us)
                .field("measured", u64::from(p.measured)),
        );
    }
    reg.counter_set("fig3.points", points.len() as u64);
    reg.counter_set(
        "fig3.measured_points",
        points.iter().filter(|p| p.measured).count() as u64,
    );
    reg.counter_set("fig3.sim_time_ps", sim_end.as_ps());
    reg.counter_set(
        "fig3.events_executed",
        reg.counter("fig3.eci.one_link.link.messages")
            + reg.counter("fig3.eci.full.link.messages")
            + dram_requests,
    );

    points
}

/// Renders the scatter as a table.
pub fn render(points: &[Fig3Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.1}", p.bandwidth_gib),
                format!("{:.2}", p.latency_us),
                if p.measured { "measured" } else { "published" }.into(),
            ]
        })
        .collect();
    super::render_table(
        "Fig. 3 — CPU-FPGA performance summary",
        &["platform", "bw[GiB/s]", "latency[us]", "source"],
        &rows,
    )
}

/// Registry adapter: figure 3 through the [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let points = run_instrumented(ctx.reg);
        let rows = points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    p.bandwidth_gib.to_string(),
                    p.latency_us.to_string(),
                    p.measured.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            points,
            vec![super::Table {
                name: "fig3",
                header: &["platform", "bw_gib", "latency_us", "measured"],
                rows,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<Fig3Point>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enzian_extends_the_convex_hull() {
        let points = run();
        let get = |label: &str| {
            points
                .iter()
                .find(|p| p.label.contains(label))
                .unwrap_or_else(|| panic!("{label} missing"))
        };
        let one_link = get("1 ECI link");
        let full = get("full ECI");
        let dram = get("Enzian DRAM");
        let capi = get("CAPI");
        let harp = get("Broadwell");

        // One ECI link already beats CAPI and the QPI platform on
        // bandwidth; full ECI tops the survey.
        assert!(one_link.bandwidth_gib > capi.bandwidth_gib);
        assert!(full.bandwidth_gib > harp.bandwidth_gib);
        assert!(full.bandwidth_gib > 1.7 * one_link.bandwidth_gib * 0.9);
        // Local DRAM dwarfs every interconnect.
        assert!(dram.bandwidth_gib > full.bandwidth_gib * 2.0);
        // ECI latency is sub-microsecond, far below the PCIe cards'
        // software path.
        assert!(one_link.latency_us < 1.0);
        assert!(get("Alpha Data").latency_us > 50.0);
    }

    #[test]
    fn ten_points_with_sources() {
        let points = run();
        assert_eq!(points.len(), 8);
        assert_eq!(points.iter().filter(|p| p.measured).count(), 3);
        let s = render(&points);
        assert!(s.contains("Enzian DRAM") && s.contains("published"));
    }
}
