//! Replicated KV service under cluster faults.
//!
//! Not a paper figure — the robustness companion to the §6 cluster
//! bridge: the sharded primary-backup service of [`crate::service`]
//! swept across the fault scenarios (no faults, one board crash,
//! rolling crashes, partition-and-heal). For each scenario the driver
//! reports client-visible SLOs (latency percentiles per op class,
//! availability in and out of the fault window), the failover and
//! re-replication work the cluster did, and the engine accounting.
//!
//! Every run is audited before it is reported: the committed logs must
//! replay linearizably, and no acknowledged write may be lost. Every
//! number is a pure function of the scenario seed — the bench JSON is
//! byte-identical across `--threads` values, which `make service` and
//! the CI thread matrix assert.

use crate::service::{FaultScenario, ServiceConfig};
use enzian_sim::{MetricsRegistry, Time, TraceEvent};

/// One row of the sweep: the service under one fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRow {
    /// Scenario label (`none`, `crash_one_board`, ...).
    pub scenario: &'static str,
    /// Operations acknowledged with a result.
    pub ok_ops: u64,
    /// Operations that ended in a terminal typed error.
    pub failed_ops: u64,
    /// Operations voided by their own board crashing mid-flight.
    pub crashed_ops: u64,
    /// GETs served from possibly-stale state.
    pub stale_served: u64,
    /// Availability for ops issued inside the fault window, percent.
    pub avail_in_pct: f64,
    /// Availability for ops issued outside the fault window, percent.
    pub avail_out_pct: f64,
    /// GET latency p50, microseconds (`None` when no GET completed).
    pub get_p50_us: Option<f64>,
    /// GET latency p99, microseconds.
    pub get_p99_us: Option<f64>,
    /// PUT latency p99, microseconds.
    pub put_p99_us: Option<f64>,
    /// Backup promotions.
    pub failovers: u64,
    /// Failover recovery p99 (detection gap), microseconds.
    pub failover_p99_us: Option<f64>,
    /// Entries committed without a backup ack.
    pub solo_commits: u64,
    /// Replicas fenced by a higher epoch.
    pub fenced: u64,
    /// Catch-ups completed.
    pub catchups_completed: u64,
    /// Lock-step epochs executed.
    pub epochs: u64,
    /// Cross-board envelopes exchanged.
    pub messages: u64,
    /// FNV-1a digest of all final board states.
    pub digest: u64,
}

/// The cluster every scenario runs on (seed and sizes fixed).
pub fn config() -> ServiceConfig {
    ServiceConfig::standard()
}

/// Runs the sweep on `threads` workers and returns one row per
/// scenario.
pub fn run(threads: usize) -> Vec<ServiceRow> {
    run_instrumented(threads, &mut MetricsRegistry::new())
}

/// [`run`], publishing each scenario's report under
/// `service.<label>.*`. The export is deterministic across thread
/// counts and runs.
///
/// # Panics
///
/// Panics when a scenario fails its audits: non-linearizable committed
/// logs, a lost acknowledged write, or a parallel run diverging from
/// the sequential reference.
pub fn run_instrumented(threads: usize, reg: &mut MetricsRegistry) -> Vec<ServiceRow> {
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    let mut events = 0u64;
    for scenario in FaultScenario::all() {
        let cfg = config().with_scenario(scenario);
        let report = cfg.run_parallel(threads);
        if scenario == FaultScenario::CrashOneBoard {
            // Cross-engine validation on the scenario where the fault,
            // failover and catch-up machinery is all exercised.
            report.assert_matches(&cfg.run_reference());
        }
        report
            .verify_linearizable(cfg.store)
            .expect("committed logs must replay linearizably");
        report
            .audit_zero_lost_acks()
            .expect("no acknowledged write may be lost");
        let label = scenario.label();
        let row = ServiceRow {
            scenario: label,
            ok_ops: report.ok_ops,
            failed_ops: report.failed_ops,
            crashed_ops: report.crashed_ops,
            stale_served: report.stale_served,
            avail_in_pct: report.availability_in_window * 100.0,
            avail_out_pct: report.availability_out_window * 100.0,
            get_p50_us: report.slo.get.p50_micros(),
            get_p99_us: report.slo.get.p99_micros(),
            put_p99_us: report.slo.put.p99_micros(),
            failovers: report.failovers,
            failover_p99_us: report.slo.failover.p99_micros(),
            solo_commits: report.solo_commits,
            fenced: report.fenced,
            catchups_completed: report.catchups_completed,
            epochs: report.epochs,
            messages: report.messages,
            digest: report.digest,
        };
        let base = format!("service.{label}");
        report.export_metrics(&base, reg);
        reg.trace_event(
            TraceEvent::new(report.sim_end, "service", "scenario-done")
                .field("ok_ops", report.ok_ops)
                .field("failovers", report.failovers)
                .field("messages", report.messages),
        );
        sim_end = sim_end.max(report.sim_end);
        events += report.total_client_ops + report.messages;
        rows.push(row);
    }
    reg.counter_set("service.sim_time_ps", sim_end.as_ps());
    reg.counter_set("service.events_executed", events);
    rows
}

fn opt_us(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |x| format!("{x:.1}"))
}

/// Renders the sweep as a table.
pub fn render(rows: &[ServiceRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.ok_ops.to_string(),
                r.failed_ops.to_string(),
                r.crashed_ops.to_string(),
                format!("{:.1}", r.avail_in_pct),
                format!("{:.2}", r.avail_out_pct),
                opt_us(r.get_p50_us),
                opt_us(r.get_p99_us),
                opt_us(r.put_p99_us),
                r.failovers.to_string(),
                opt_us(r.failover_p99_us),
                r.solo_commits.to_string(),
                r.catchups_completed.to_string(),
            ]
        })
        .collect();
    super::render_table(
        "Replicated KV service — SLOs under cluster faults (parallel engine)",
        &[
            "scenario",
            "ok",
            "fail",
            "crash",
            "avail_in[%]",
            "avail_out[%]",
            "get_p50[us]",
            "get_p99[us]",
            "put_p99[us]",
            "failovers",
            "fo_p99[us]",
            "solo",
            "catchups",
        ],
        &table_rows,
    )
}

/// Registry adapter: the replicated service through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "service"
    }

    fn needs_threads(&self) -> bool {
        true
    }

    fn speedup_check(&self) -> bool {
        true
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.threads, ctx.reg);
        let opt_cell = |v: Option<f64>| v.map_or_else(String::new, |x| x.to_string());
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.to_string(),
                    r.ok_ops.to_string(),
                    r.failed_ops.to_string(),
                    r.crashed_ops.to_string(),
                    r.stale_served.to_string(),
                    r.avail_in_pct.to_string(),
                    r.avail_out_pct.to_string(),
                    opt_cell(r.get_p50_us),
                    opt_cell(r.get_p99_us),
                    opt_cell(r.put_p99_us),
                    r.failovers.to_string(),
                    opt_cell(r.failover_p99_us),
                    r.solo_commits.to_string(),
                    r.fenced.to_string(),
                    r.catchups_completed.to_string(),
                    r.epochs.to_string(),
                    r.messages.to_string(),
                    r.digest.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "service",
                header: &[
                    "scenario",
                    "ok_ops",
                    "failed_ops",
                    "crashed_ops",
                    "stale_served",
                    "avail_in_pct",
                    "avail_out_pct",
                    "get_p50_us",
                    "get_p99_us",
                    "put_p99_us",
                    "failovers",
                    "failover_p99_us",
                    "solo_commits",
                    "fenced",
                    "catchups_completed",
                    "epochs",
                    "messages",
                    "digest",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<ServiceRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_holds() {
        let rows = run(2);
        assert_eq!(rows.len(), 4);
        let base = &rows[0];
        assert_eq!(base.scenario, "none");
        assert_eq!(base.failed_ops, 0);
        assert_eq!(base.crashed_ops, 0);
        assert_eq!(base.failovers, 0);
        assert_eq!(base.avail_out_pct, 100.0);
        let crash = rows
            .iter()
            .find(|r| r.scenario == "crash_one_board")
            .expect("crash scenario present");
        assert!(crash.failovers >= 1);
        assert!(crash.failover_p99_us.is_some());
        assert!(crash.catchups_completed >= 1);
        assert!(
            crash.avail_out_pct >= 99.0,
            "out-of-window availability {} below the SLO",
            crash.avail_out_pct
        );
        let partition = rows
            .iter()
            .find(|r| r.scenario == "partition_heal")
            .expect("partition scenario present");
        assert!(partition.failovers >= 1);
        let s = render(&rows);
        assert!(s.contains("avail_out"));
    }

    #[test]
    fn rows_and_exports_are_thread_invariant() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let rows_a = run_instrumented(1, &mut a);
        let rows_b = run_instrumented(2, &mut b);
        assert_eq!(rows_a, rows_b);
        assert_eq!(a.export_text(), b.export_text());
        assert_eq!(a.export_json(), b.export_json());
    }

    #[test]
    fn instrumented_run_feeds_the_bench_contract() {
        let mut reg = MetricsRegistry::new();
        let rows = run_instrumented(1, &mut reg);
        assert!(reg.counter("service.sim_time_ps") > 0);
        assert!(reg.counter("service.events_executed") > 0);
        for r in &rows {
            let base = format!("service.{}", r.scenario);
            assert_eq!(reg.counter(&format!("{base}.ok_ops")), r.ok_ops);
            assert_eq!(reg.counter(&format!("{base}.digest")), r.digest);
        }
    }
}
