//! Figure 11 and Table 1: the custom memory controller experiment.
//!
//! The vision pipeline runs with three configurations — no reduction
//! (soft RGB2Y on the CPU), hardware RGB2Y at 8 bpp, and hardware RGB2Y
//! with 4-bit quantisation — while the active core count sweeps 1..48.
//! Fig. 11 plots pixel throughput and interconnect bandwidth; Table 1
//! reports the PMU counters at 48 threads.
//!
//! The functional half (the actual pixels) is validated in
//! `enzian-apps::reduction`; here the per-mode [`WorkloadProfile`](enzian_cache::WorkloadProfile)s feed
//! the in-order core model, with the interconnect budget set by the two
//! ECI links under CPU-initiated load balancing.

use enzian_apps::reduction::ReductionMode;
use enzian_cache::CoreTimingModel;
use enzian_sim::{Duration, Instrumented, MetricsRegistry, Time, TraceEvent};

/// Shared fetch bandwidth available to the cores across both ECI links,
/// bytes per second (CPU-initiated requests balance over both).
pub const INTERCONNECT_BYTES_PER_SEC: f64 = 21.5e9;

/// One sample of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Row {
    /// Reduction mode.
    pub mode: ReductionMode,
    /// Active cores.
    pub cores: u32,
    /// Aggregate pixel throughput, Gpixel/s.
    pub gpixels_per_sec: f64,
    /// Interconnect traffic, GiB/s.
    pub interconnect_gib: f64,
}

/// Table 1: PMU counts at 48 threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Reduction mode.
    pub mode: ReductionMode,
    /// Memory stalls per cycle.
    pub memory_stalls_per_cycle: f64,
    /// Cycles per L1 refill, in thousands.
    pub cycles_per_l1_refill_k: f64,
}

/// Runs the Fig. 11 sweep: all modes, cores 1..=48.
pub fn run() -> Vec<Fig11Row> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-mode gauges at 48 cores, each mode's PMU
/// window (`fig11.pmu.<mode>.*`), and one trace event per mode into
/// `reg` under `fig11.*`. The PMU counters cover a one-second
/// steady-state window, which is also the reported sim time.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<Fig11Row> {
    let cpu = CoreTimingModel::thunderx1();
    let window_end = Time::ZERO + Duration::from_secs(1);
    let mut rows = Vec::new();
    let mut total_cycles = 0u64;
    for mode in ReductionMode::ALL {
        let profile = mode.workload_profile();
        let slug = super::metric_slug(mode.label());
        for cores in 1..=48u32 {
            let s = cpu.steady_state(&profile, cores, INTERCONNECT_BYTES_PER_SEC);
            if cores == 48 {
                reg.gauge_set(
                    &format!("fig11.{slug}.gpixels_per_sec"),
                    s.units_per_sec / 1e9,
                );
                reg.gauge_set(
                    &format!("fig11.{slug}.interconnect_gib"),
                    s.interconnect_bytes_per_sec / (1u64 << 30) as f64,
                );
                s.pmu.export_metrics(&format!("fig11.pmu.{slug}"), reg);
                total_cycles += s.pmu.cycles();
                reg.trace_event(
                    TraceEvent::new(window_end, "fig11", "mode-done")
                        .field("mode", mode.label())
                        .field("cores", u64::from(cores))
                        .field("gpixels_per_sec", s.units_per_sec / 1e9),
                );
            }
            rows.push(Fig11Row {
                mode,
                cores,
                gpixels_per_sec: s.units_per_sec / 1e9,
                interconnect_gib: s.interconnect_bytes_per_sec / (1u64 << 30) as f64,
            });
        }
    }
    reg.counter_set("fig11.sim_time_ps", window_end.as_ps());
    reg.counter_set("fig11.events_executed", total_cycles);
    rows
}

/// Runs Table 1: the PMU counters at 48 threads.
pub fn run_table1() -> Vec<Table1Row> {
    let cpu = CoreTimingModel::thunderx1();
    ReductionMode::ALL
        .iter()
        .map(|&mode| {
            let s = cpu.steady_state(&mode.workload_profile(), 48, INTERCONNECT_BYTES_PER_SEC);
            Table1Row {
                mode,
                memory_stalls_per_cycle: s.pmu.memory_stalls_per_cycle(),
                cycles_per_l1_refill_k: s.pmu.cycles_per_l1_refill().unwrap_or(0.0) / 1e3,
            }
        })
        .collect()
}

/// The paper's Table 1 values: (mode, stalls/cycle, cycles/refill ×10³).
pub fn paper_table1() -> Vec<(ReductionMode, f64, f64)> {
    vec![
        (ReductionMode::None, 0.025, 1.84),
        (ReductionMode::Y8, 0.005, 5.16),
        (ReductionMode::Y4, 0.005, 10.50),
    ]
}

/// Renders Fig. 11 at selected core counts plus Table 1.
pub fn render(rows: &[Fig11Row], table1: &[Table1Row]) -> String {
    let picks = [1u32, 6, 12, 24, 36, 48];
    let mut table = Vec::new();
    for &cores in &picks {
        for r in rows.iter().filter(|r| r.cores == cores) {
            table.push(vec![
                r.cores.to_string(),
                r.mode.label().into(),
                format!("{:.3}", r.gpixels_per_sec),
                format!("{:.2}", r.interconnect_gib),
            ]);
        }
    }
    let mut out = super::render_table(
        "Fig. 11 — Vision pipeline throughput and interconnect bandwidth",
        &["cores", "mode", "Gpx/s", "IC[GiB/s]"],
        &table,
    );
    out.push('\n');
    let paper = paper_table1();
    let t1: Vec<Vec<String>> = table1
        .iter()
        .map(|r| {
            let (_, p_stall, p_refill) = paper
                .iter()
                .find(|(m, _, _)| *m == r.mode)
                .expect("mode present");
            vec![
                r.mode.label().into(),
                format!("{:.3}", r.memory_stalls_per_cycle),
                format!("{p_stall:.3}"),
                format!("{:.2}", r.cycles_per_l1_refill_k),
                format!("{p_refill:.2}"),
            ]
        })
        .collect();
    out.push_str(&super::render_table(
        "Table 1 — Pipeline PMU counts (48 threads)",
        &["mode", "stalls/cyc", "paper", "cyc/refill[k]", "paper"],
        &t1,
    ));
    out
}

/// Both figure-11 panels: the throughput figure and Table 1's PMU rows.
#[derive(Debug)]
pub struct Fig11Rows {
    /// Figure 11 proper.
    pub figure: Vec<Fig11Row>,
    /// Table 1 (PMU counters for the same modes).
    pub table1: Vec<Table1Row>,
}

/// Registry adapter: figure 11 + Table 1 through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let figure = run_instrumented(ctx.reg);
        let table1 = run_table1();
        let fig_csv = figure
            .iter()
            .map(|r| {
                vec![
                    r.mode.label().to_string(),
                    r.cores.to_string(),
                    r.gpixels_per_sec.to_string(),
                    r.interconnect_gib.to_string(),
                ]
            })
            .collect();
        let t1_csv = table1
            .iter()
            .map(|r| {
                vec![
                    r.mode.label().to_string(),
                    r.memory_stalls_per_cycle.to_string(),
                    r.cycles_per_l1_refill_k.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            Fig11Rows { figure, table1 },
            vec![
                super::Table {
                    name: "fig11",
                    header: &["mode", "cores", "gpixels_per_sec", "interconnect_gib"],
                    rows: fig_csv,
                },
                super::Table {
                    name: "table1",
                    header: &["mode", "stalls_per_cycle", "cycles_per_l1_refill_k"],
                    rows: t1_csv,
                },
            ],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        let r = rows.downcast::<Fig11Rows>();
        render(&r.figure, &r.table1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(rows: &[Fig11Row], mode: ReductionMode, cores: u32) -> &Fig11Row {
        rows.iter()
            .find(|r| r.mode == mode && r.cores == cores)
            .expect("row")
    }

    #[test]
    fn figure11_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), 3 * 48);

        // Baseline scales linearly to 48 cores at ~33 Mpx/s/core.
        let b1 = row(&rows, ReductionMode::None, 1);
        let b48 = row(&rows, ReductionMode::None, 48);
        assert!((31.0..35.0).contains(&(b1.gpixels_per_sec * 1e3)));
        let scaling = b48.gpixels_per_sec / b1.gpixels_per_sec;
        assert!((47.0..49.0).contains(&scaling), "scaling {scaling:.1}");

        // Hardware RGB2Y uplift at 48 cores: ~39% (8bpp), ~33% (4bpp).
        let y8 = row(&rows, ReductionMode::Y8, 48);
        let y4 = row(&rows, ReductionMode::Y4, 48);
        let up8 = (y8.gpixels_per_sec - b48.gpixels_per_sec) / b48.gpixels_per_sec;
        let up4 = (y4.gpixels_per_sec - b48.gpixels_per_sec) / b48.gpixels_per_sec;
        assert!(
            (0.33..0.45).contains(&up8),
            "8bpp uplift {:.0}%",
            up8 * 100.0
        );
        assert!(
            (0.27..0.39).contains(&up4),
            "4bpp uplift {:.0}%",
            up4 * 100.0
        );
        assert!(y4.gpixels_per_sec < y8.gpixels_per_sec);

        // Interconnect panel: baseline ~6.3 GiB/s at 48 cores; the 4x
        // data reduction yields ~3x lower interconnect traffic, the
        // further 2x another ~2x.
        assert!(
            (5.5..7.0).contains(&b48.interconnect_gib),
            "baseline IC {:.2}",
            b48.interconnect_gib
        );
        let r8 = b48.interconnect_gib / y8.interconnect_gib;
        assert!((2.6..3.2).contains(&r8), "8bpp IC reduction {r8:.2}");
        let r4 = y8.interconnect_gib / y4.interconnect_gib;
        assert!((1.8..2.2).contains(&r4), "4bpp further reduction {r4:.2}");
    }

    #[test]
    fn table1_matches_paper_within_tolerance() {
        let t1 = run_table1();
        for (mode, p_stall, p_refill_k) in paper_table1() {
            let r = t1.iter().find(|r| r.mode == mode).unwrap();
            let stall_err = (r.memory_stalls_per_cycle - p_stall).abs() / p_stall;
            let refill_err = (r.cycles_per_l1_refill_k - p_refill_k).abs() / p_refill_k;
            assert!(
                stall_err < 0.25,
                "{}: stalls {:.4} vs paper {p_stall}",
                mode.label(),
                r.memory_stalls_per_cycle
            );
            assert!(
                refill_err < 0.15,
                "{}: refill {:.2}k vs paper {p_refill_k}k",
                mode.label(),
                r.cycles_per_l1_refill_k
            );
        }
    }

    #[test]
    fn dram_utilisation_rises_with_offload() {
        // §5.4: "moving the RGB2Y step across the interconnect allows the
        // application to increase its DRAM utilisation from 6 to 8 GiB/s"
        // (FPGA-side DRAM reads 4 B per pixel in every mode).
        let rows = run();
        let dram = |mode| {
            let r = row(&rows, mode, 48);
            r.gpixels_per_sec * 4.0 * 1e9 / (1u64 << 30) as f64
        };
        let base = dram(ReductionMode::None);
        let offl = dram(ReductionMode::Y8);
        assert!((5.5..7.0).contains(&base), "baseline DRAM {base:.1} GiB/s");
        assert!((7.5..9.5).contains(&offl), "offloaded DRAM {offl:.1} GiB/s");
    }
}
