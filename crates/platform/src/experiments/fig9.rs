//! Figure 9: gradient-boosting decision-tree inference throughput.
//!
//! The same scoring design is deployed on HARPv2, Amazon F1, a VCU118 and
//! Enzian, as one or two engines; throughput is in million tuples/s. The
//! experiment streams 64 KB tuple batches through the double-buffered
//! offload pipeline (§5.3 / artifact A.6.3).

use enzian_apps::gbdt::{Ensemble, GbdtAccelerator};
use enzian_sim::{MetricsRegistry, Time, TraceEvent};

use crate::presets::PlatformPreset;

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Platform measured.
    pub platform: PlatformPreset,
    /// Engine count (1 or 2).
    pub engines: u32,
    /// Throughput in million tuples per second.
    pub mtuples_per_sec: f64,
}

/// The figure's platforms in bar order.
pub const PLATFORMS: [PlatformPreset; 4] = [
    PlatformPreset::BroadwellArria,
    PlatformPreset::AmazonF1,
    PlatformPreset::Vcu118,
    PlatformPreset::Enzian,
];

/// Runs the experiment: every platform, one and two engines.
pub fn run() -> Vec<Fig9Row> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing one throughput gauge and one trace event per bar
/// into `reg` under `fig9.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<Fig9Row> {
    // A realistic ensemble: 96 trees of depth 6 over 16 features. The
    // batch uses 64 KB of tuples to hit the saturation point (A.6.3):
    // 16 features x 4 B = 64 B/tuple -> 1024 tuples/batch; stream many
    // batches for a steady-state measurement.
    let ensemble = Ensemble::generate(42, 96, 6, 16);
    let tuples = ensemble.generate_tuples(43, 100_000);

    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    for platform in PLATFORMS {
        for engines in [1u32, 2] {
            let cfg = platform
                .gbdt_config(engines)
                .expect("fig9 platform has a config");
            let mut acc = GbdtAccelerator::new(ensemble.clone(), cfg);
            let tput = acc.measure_throughput(Time::ZERO, &tuples);
            let row = Fig9Row {
                platform,
                engines,
                mtuples_per_sec: tput / 1e6,
            };
            let slug = super::metric_slug(platform.name());
            reg.gauge_set(
                &format!("fig9.{slug}.x{engines}.mtuples_per_sec"),
                row.mtuples_per_sec,
            );
            reg.counter_add("fig9.tuples_scored", tuples.len() as u64);
            // The scoring pass is closed-form over the batch; anchor the
            // trace event at the batch's steady-state scoring time.
            let batch_time =
                Time::ZERO + enzian_sim::Duration::from_secs_f64(tuples.len() as f64 / tput);
            sim_end = sim_end.max(batch_time);
            reg.trace_event(
                TraceEvent::new(batch_time, "fig9", "bar")
                    .field("platform", platform.name())
                    .field("engines", u64::from(engines))
                    .field("mtuples_per_sec", row.mtuples_per_sec),
            );
            rows.push(row);
        }
    }
    reg.counter_set("fig9.sim_time_ps", sim_end.as_ps());
    reg.counter_set("fig9.events_executed", reg.counter("fig9.tuples_scored"));
    rows
}

/// The paper's reported values, for the EXPERIMENTS.md comparison.
pub fn paper_values() -> Vec<(PlatformPreset, u32, f64)> {
    vec![
        (PlatformPreset::BroadwellArria, 1, 33.0),
        (PlatformPreset::BroadwellArria, 2, 66.0),
        (PlatformPreset::AmazonF1, 1, 24.0),
        (PlatformPreset::AmazonF1, 2, 48.0),
        (PlatformPreset::Vcu118, 1, 41.0),
        (PlatformPreset::Vcu118, 2, 81.0),
        (PlatformPreset::Enzian, 1, 48.0),
        (PlatformPreset::Enzian, 2, 96.0),
    ]
}

/// Renders the bar chart as a table.
pub fn render(rows: &[Fig9Row]) -> String {
    let paper = paper_values();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let reference = paper
                .iter()
                .find(|(p, e, _)| *p == r.platform && *e == r.engines)
                .map(|(_, _, v)| format!("{v:.0}"))
                .unwrap_or_default();
            vec![
                r.platform.name().into(),
                r.engines.to_string(),
                format!("{:.1}", r.mtuples_per_sec),
                reference,
            ]
        })
        .collect();
    super::render_table(
        "Fig. 9 — GBDT inference throughput [Mtuples/s]",
        &["platform", "engines", "measured", "paper"],
        &table,
    )
}

/// Registry adapter: figure 9 through the [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.platform.name().to_string(),
                    r.engines.to_string(),
                    r.mtuples_per_sec.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "fig9",
                header: &["platform", "engines", "mtuples_per_sec"],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<Fig9Row>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_values_within_ten_percent_of_paper() {
        let rows = run();
        let paper = paper_values();
        assert_eq!(rows.len(), paper.len());
        for (p, engines, expect) in paper {
            let got = rows
                .iter()
                .find(|r| r.platform == p && r.engines == engines)
                .unwrap()
                .mtuples_per_sec;
            let err = (got - expect).abs() / expect;
            assert!(
                err < 0.10,
                "{} x{engines}: measured {got:.1}, paper {expect}, err {:.0}%",
                p.name(),
                err * 100.0
            );
        }
    }

    #[test]
    fn enzian_outperforms_all_platforms() {
        let rows = run();
        for engines in [1, 2] {
            let enzian = rows
                .iter()
                .find(|r| r.platform == PlatformPreset::Enzian && r.engines == engines)
                .unwrap()
                .mtuples_per_sec;
            for r in rows.iter().filter(|r| r.engines == engines) {
                assert!(
                    enzian >= r.mtuples_per_sec,
                    "{} beats Enzian",
                    r.platform.name()
                );
            }
        }
    }
}
