//! Fault sweep: goodput and recovery behaviour vs injected fault rate.
//!
//! Not a paper figure — this is the robustness companion to Fig. 6: the
//! same coherent FPGA↔CPU traffic, now driven through seeded fault
//! schedules of increasing severity (frame corruption, frame drops and
//! transaction stalls together). For each rate the sweep reports the
//! goodput the requesters still observe, how many frames the link-level
//! replay machinery retransmitted, how often the transaction layer timed
//! out and retried, and the distribution of recovery latencies. The
//! entire sweep is seeded, so two runs render byte-identical
//! `BENCH_fault_sweep.json` files — which `make chaos` and CI assert.

use enzian_eci::link::fault_targets;
use enzian_eci::system::TXN_STALL_TARGET;
use enzian_eci::{EciSystem, EciSystemConfig, TxnError};
use enzian_mem::Addr;
use enzian_sim::telemetry::FieldValue;
use enzian_sim::{Duration, FaultPlan, FaultSpec, Instrumented, MetricsRegistry, Time, TraceEvent};

/// One row of the sweep: a fault rate with everything observed under it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSweepRow {
    /// Per-opportunity fault probability, in basis points (1/100 %).
    pub rate_bp: u64,
    /// Payload the requesters completed, GiB/s of simulated time.
    pub goodput_gib: f64,
    /// Faults the plan injected across all targets.
    pub injected: u64,
    /// Frames the link replay machinery retransmitted.
    pub retransmissions: u64,
    /// Transaction-layer timeouts that retried and then succeeded.
    pub txn_retries: u64,
    /// Operations that spent the whole retry budget (surfaced as
    /// [`TxnError`], never as a hang).
    pub txn_failures: u64,
    /// Mean fault-to-recovery latency, nanoseconds.
    pub mean_recovery_ns: f64,
}

/// Base seed of the sweep; each rate derives its plan seed from it.
const SEED: u64 = 0xFA17_5EED;

/// Write/read pairs driven at each rate.
const OPS: u64 = 1024;

/// Distinct cache lines the workload cycles over.
const SLOTS: u64 = 32;

/// Swept fault rates, in basis points of per-opportunity probability.
pub const RATES_BP: [u64; 6] = [0, 50, 100, 200, 500, 1000];

/// The seeded schedule for one rate: frame corruption at the full rate,
/// drops at half, transaction stalls at a quarter.
fn plan_for(rate_bp: u64, index: u64) -> FaultPlan {
    let p = rate_bp as f64 / 10_000.0;
    FaultPlan::new(SEED ^ (index + 1))
        .with(FaultSpec::probability(fault_targets::FRAME_CORRUPT, p))
        .with(FaultSpec::probability(fault_targets::FRAME_DROP, p / 2.0))
        .with(FaultSpec::probability(TXN_STALL_TARGET, p / 4.0))
}

/// Runs the sweep and returns one row per fault rate.
pub fn run() -> Vec<FaultSweepRow> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-rate gauges, the recovery-latency histogram,
/// each system's component counters and the fault ledgers into `reg`
/// under `fault_sweep.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<FaultSweepRow> {
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    let mut events = 0u64;
    for (index, &rate_bp) in RATES_BP.iter().enumerate() {
        let mut sys = EciSystem::new(EciSystemConfig::enzian());
        sys.set_fault_plan(plan_for(rate_bp, index as u64));

        let mut t = Time::ZERO;
        let mut delivered_bytes = 0u64;
        let mut txn_failures = 0u64;
        for i in 0..OPS {
            let addr = Addr((i % SLOTS) * 128);
            let fill = (i % 251) as u8;
            match sys.try_fpga_write_line(t, addr, &[fill; 128]) {
                Ok(done) => {
                    t = done;
                    delivered_bytes += 128;
                }
                Err(TxnError::RetryBudgetExhausted { .. }) => {
                    txn_failures += 1;
                    // The op is abandoned; the requester moves on.
                    t += Duration::from_us(1);
                    continue;
                }
            }
            match sys.try_fpga_read_line(t, addr) {
                Ok((data, done)) => {
                    assert_eq!(data, [fill; 128], "payload damaged at {rate_bp} bp");
                    t = done;
                    delivered_bytes += 128;
                }
                Err(TxnError::RetryBudgetExhausted { .. }) => {
                    txn_failures += 1;
                    t += Duration::from_us(1);
                }
            }
        }
        assert!(
            sys.checker().violations().is_empty(),
            "rate {rate_bp} bp violated the protocol: {:?}",
            sys.checker().violations()
        );

        let plan = sys.fault_plan().expect("plan stays installed");
        let stats = *sys.stats();
        // Recovery latency histogram, harvested from the plan's ledger.
        let mut recovery_ps_sum = 0u64;
        let mut recoveries = 0u64;
        for ev in plan.trace().iter() {
            if ev.kind != "recover" {
                continue;
            }
            for (name, value) in &ev.fields {
                if name == "latency_ps" {
                    if let FieldValue::U64(ps) = value {
                        reg.record_latency("fault_sweep.recovery", Duration::from_ps(*ps));
                        recovery_ps_sum += ps;
                        recoveries += 1;
                    }
                }
            }
        }
        let mean_recovery_ns = if recoveries == 0 {
            0.0
        } else {
            recovery_ps_sum as f64 / recoveries as f64 / 1000.0
        };

        let row = FaultSweepRow {
            rate_bp,
            goodput_gib: delivered_bytes as f64
                / t.since(Time::ZERO).as_secs_f64()
                / (1u64 << 30) as f64,
            injected: plan.total_injected(),
            retransmissions: sys.links().retransmissions(),
            txn_retries: stats.txn_retries,
            txn_failures,
            mean_recovery_ns,
        };
        debug_assert_eq!(txn_failures, stats.txn_failures);

        let base = format!("fault_sweep.rate{rate_bp:04}");
        reg.gauge_set(&format!("{base}.goodput_gib"), row.goodput_gib);
        reg.counter_set(&format!("{base}.injected"), row.injected);
        reg.counter_set(&format!("{base}.retransmissions"), row.retransmissions);
        reg.counter_set(&format!("{base}.txn_retries"), row.txn_retries);
        reg.counter_set(&format!("{base}.txn_failures"), row.txn_failures);
        let mut tmp = MetricsRegistry::new();
        sys.export_metrics(&base, &mut tmp);
        reg.merge(&tmp);
        reg.trace_event(
            TraceEvent::new(t, "fault_sweep", "rate-done")
                .field("rate_bp", rate_bp)
                .field("goodput_gib", row.goodput_gib)
                .field("injected", row.injected),
        );

        sim_end = sim_end.max(t);
        events += sys.links().messages_sent() + row.retransmissions + row.injected;
        rows.push(row);
    }
    reg.counter_set("fault_sweep.sim_time_ps", sim_end.as_ps());
    reg.counter_set("fault_sweep.events_executed", events);
    rows
}

/// Renders the sweep as a table.
pub fn render(rows: &[FaultSweepRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.rate_bp as f64 / 100.0),
                format!("{:.2}", r.goodput_gib),
                r.injected.to_string(),
                r.retransmissions.to_string(),
                r.txn_retries.to_string(),
                r.txn_failures.to_string(),
                format!("{:.0}", r.mean_recovery_ns),
            ]
        })
        .collect();
    super::render_table(
        "Fault sweep — goodput and recovery vs injected fault rate",
        &[
            "fault[%]",
            "goodput[GiB/s]",
            "injected",
            "retransmits",
            "retries",
            "failures",
            "recovery[ns]",
        ],
        &table_rows,
    )
}

/// Registry adapter: the fault sweep through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "fault_sweep"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.rate_bp.to_string(),
                    r.goodput_gib.to_string(),
                    r.injected.to_string(),
                    r.retransmissions.to_string(),
                    r.txn_retries.to_string(),
                    r.txn_failures.to_string(),
                    r.mean_recovery_ns.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "fault_sweep",
                header: &[
                    "rate_bp",
                    "goodput_gib",
                    "injected",
                    "retransmissions",
                    "txn_retries",
                    "txn_failures",
                    "mean_recovery_ns",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<FaultSweepRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), RATES_BP.len());

        let clean = &rows[0];
        assert_eq!(clean.injected, 0, "rate 0 must inject nothing");
        assert_eq!(clean.retransmissions, 0);
        assert_eq!(clean.txn_failures, 0);

        let worst = rows.last().unwrap();
        assert!(worst.injected > 0, "10% must inject");
        assert!(worst.retransmissions > 0, "10% must retransmit");
        assert!(
            worst.goodput_gib < clean.goodput_gib,
            "faults must cost goodput: {:.2} vs {:.2}",
            worst.goodput_gib,
            clean.goodput_gib
        );
        assert!(worst.mean_recovery_ns > 0.0);
        // Goodput degrades gracefully, not catastrophically: even at 10%
        // per-frame faults the replay machinery keeps most of it.
        assert!(
            worst.goodput_gib > clean.goodput_gib * 0.4,
            "degradation not graceful: {:.2} vs {:.2}",
            worst.goodput_gib,
            clean.goodput_gib
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        assert_eq!(run_instrumented(&mut a), run_instrumented(&mut b));
        assert_eq!(a.export_text(), b.export_text());
        assert_eq!(a.export_json(), b.export_json());
    }

    #[test]
    fn instrumented_run_feeds_the_bench_contract() {
        let mut reg = MetricsRegistry::new();
        let rows = run_instrumented(&mut reg);
        assert!(reg.counter("fault_sweep.sim_time_ps") > 0);
        assert!(reg.counter("fault_sweep.events_executed") > 0);
        for r in &rows {
            let base = format!("fault_sweep.rate{:04}", r.rate_bp);
            assert_eq!(reg.counter(&format!("{base}.injected")), r.injected);
        }
        let s = render(&rows);
        assert!(s.contains("goodput"));
    }
}
