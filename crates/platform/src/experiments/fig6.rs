//! Figure 6: link performance — ECI (one link) vs PCIe x16 Gen3.
//!
//! *"We benchmark the FPGA reading and writing (using uncached, coherent,
//! cacheline-sized transactions) over ECI to host (CPU) memory. We
//! compare Enzian with a Xilinx Alveo u250 … using 16-lane PCIe Gen3 …
//! We measure achieved data throughput and latency for various transfer
//! sizes."* Transfer sizes are 2⁷..2¹⁴ bytes.

use enzian_mem::Addr;
use enzian_sim::{Instrumented, MetricsRegistry, Time, TraceEvent};

use crate::presets::PlatformPreset;

/// One row of the figure: a transfer size with all four series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Row {
    /// Transfer size in bytes.
    pub size: u64,
    /// ECI (one link) read latency, µs.
    pub eci_rd_lat_us: f64,
    /// ECI (one link) write latency, µs.
    pub eci_wr_lat_us: f64,
    /// PCIe read latency, µs.
    pub pcie_rd_lat_us: f64,
    /// PCIe write latency, µs.
    pub pcie_wr_lat_us: f64,
    /// ECI read throughput, GiB/s.
    pub eci_rd_gib: f64,
    /// ECI write throughput, GiB/s.
    pub eci_wr_gib: f64,
    /// PCIe read throughput, GiB/s.
    pub pcie_rd_gib: f64,
    /// PCIe write throughput, GiB/s.
    pub pcie_wr_gib: f64,
}

/// Repetitions per size for the throughput measurement (the paper
/// averages over 10 000 runs; a few hundred suffice at our determinism).
const REPS: u64 = 400;

fn gib(bytes: u64, start: Time, end: Time) -> f64 {
    bytes as f64 / end.since(start).as_secs_f64() / (1u64 << 30) as f64
}

/// Runs the experiment and returns one row per transfer size.
pub fn run() -> Vec<Fig6Row> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-size gauges, latency histograms, the ECI
/// throughput systems' accumulated component counters, and one trace
/// event per size into `reg` under `fig6.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<Fig6Row> {
    let sizes: Vec<u64> = (7..=14).map(|p| 1u64 << p).collect();
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    let mut pcie_transfers = 0u64;
    for &size in &sizes {
        let lines = size / 128;

        // --- ECI latency: a single isolated transfer on a fresh system.
        let mut sys = PlatformPreset::enzian_system(true);
        let done = sys.fpga_read_burst(Time::ZERO, Addr(0), lines);
        let eci_rd_lat_us = done.as_micros_f64();
        reg.record_latency("fig6.eci.rd_latency", done.since(Time::ZERO));
        let mut sys = PlatformPreset::enzian_system(true);
        let done = sys.fpga_write_burst(Time::ZERO, Addr(0), lines, 0xA5);
        let eci_wr_lat_us = done.as_micros_f64();
        reg.record_latency("fig6.eci.wr_latency", done.since(Time::ZERO));

        // --- ECI throughput: REPS back-to-back transfers.
        let mut sys = PlatformPreset::enzian_system(true);
        let mut last = Time::ZERO;
        for i in 0..REPS {
            last = last.max(sys.fpga_read_burst(last, Addr(i * size), lines));
        }
        let eci_rd_gib = gib(REPS * size, Time::ZERO, last);
        sim_end = sim_end.max(last);
        let mut tmp = MetricsRegistry::new();
        sys.export_metrics("fig6.eci.rd", &mut tmp);
        reg.merge(&tmp);
        let mut sys = PlatformPreset::enzian_system(true);
        let mut last = Time::ZERO;
        for i in 0..REPS {
            last = last.max(sys.fpga_write_burst(last, Addr(i * size), lines, 0x5A));
        }
        let eci_wr_gib = gib(REPS * size, Time::ZERO, last);
        sim_end = sim_end.max(last);
        let mut tmp = MetricsRegistry::new();
        sys.export_metrics("fig6.eci.wr", &mut tmp);
        reg.merge(&tmp);

        // --- PCIe (Alveo u250) latency and throughput.
        let mut dma = PlatformPreset::AlveoU250.dma_engine();
        let pcie_rd_lat_us = dma.host_to_card(Time::ZERO, size).completed.as_micros_f64();
        let mut dma = PlatformPreset::AlveoU250.dma_engine();
        let pcie_wr_lat_us = dma.card_to_host(Time::ZERO, size).completed.as_micros_f64();

        // Throughput is measured closed-loop (one outstanding transfer),
        // matching the software-visible completion the benchmark times.
        let mut dma = PlatformPreset::AlveoU250.dma_engine();
        let mut last = Time::ZERO;
        for _ in 0..REPS {
            last = dma.host_to_card(last, size).completed;
        }
        let pcie_rd_gib = gib(REPS * size, Time::ZERO, last);
        sim_end = sim_end.max(last);
        let mut dma = PlatformPreset::AlveoU250.dma_engine();
        let mut last = Time::ZERO;
        for _ in 0..REPS {
            last = dma.card_to_host(last, size).completed;
        }
        let pcie_wr_gib = gib(REPS * size, Time::ZERO, last);
        sim_end = sim_end.max(last);
        pcie_transfers += 2 * REPS + 2;

        let row = Fig6Row {
            size,
            eci_rd_lat_us,
            eci_wr_lat_us,
            pcie_rd_lat_us,
            pcie_wr_lat_us,
            eci_rd_gib,
            eci_wr_gib,
            pcie_rd_gib,
            pcie_wr_gib,
        };
        let base = format!("fig6.size{size:05}");
        reg.gauge_set(&format!("{base}.eci_rd_gib"), row.eci_rd_gib);
        reg.gauge_set(&format!("{base}.eci_wr_gib"), row.eci_wr_gib);
        reg.gauge_set(&format!("{base}.pcie_rd_gib"), row.pcie_rd_gib);
        reg.gauge_set(&format!("{base}.pcie_wr_gib"), row.pcie_wr_gib);
        reg.trace_event(
            TraceEvent::new(sim_end, "fig6", "size-done")
                .field("size", size)
                .field("eci_rd_gib", row.eci_rd_gib)
                .field("pcie_rd_gib", row.pcie_rd_gib),
        );
        rows.push(row);
    }
    reg.counter_set("fig6.sim_time_ps", sim_end.as_ps());
    reg.counter_set(
        "fig6.events_executed",
        reg.counter("fig6.eci.rd.link.messages")
            + reg.counter("fig6.eci.wr.link.messages")
            + pcie_transfers,
    );
    rows
}

/// The §5.1 hardware reference: a 2-socket ThunderX-1 over CCPI with
/// hardware balancing across both links. Returns `(GiB/s, latency ns)`.
pub fn ccpi_reference() -> (f64, f64) {
    // Both endpoints are silicon: CPU clock, shallow pipeline, deeper
    // hardware data buffers than the FPGA implementation.
    let mut sys = enzian_eci::EciSystem::new(enzian_eci::EciSystemConfig::thunderx_2socket());
    let lines = 16_384u64;
    let done = sys.fpga_read_burst(Time::ZERO, Addr(0), lines);
    let bw = gib(lines * 128, Time::ZERO, done);
    let mut sys = enzian_eci::EciSystem::new(enzian_eci::EciSystemConfig::thunderx_2socket());
    let (_, t) = sys.fpga_read_line(Time::ZERO, Addr(0));
    (bw, t.since(Time::ZERO).as_ns() as f64)
}

/// Renders the figure's two panels as a table.
pub fn render(rows: &[Fig6Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                format!("{:.2}", r.eci_rd_lat_us),
                format!("{:.2}", r.eci_wr_lat_us),
                format!("{:.2}", r.pcie_rd_lat_us),
                format!("{:.2}", r.pcie_wr_lat_us),
                format!("{:.2}", r.eci_rd_gib),
                format!("{:.2}", r.eci_wr_gib),
                format!("{:.2}", r.pcie_rd_gib),
                format!("{:.2}", r.pcie_wr_gib),
            ]
        })
        .collect();
    super::render_table(
        "Fig. 6 — Link performance: ECI (one link) vs PCIe x16 Gen3",
        &[
            "size[B]",
            "eci-rd[us]",
            "eci-wr[us]",
            "pcie-rd[us]",
            "pcie-wr[us]",
            "eci-rd[GiB/s]",
            "eci-wr[GiB/s]",
            "pcie-rd[GiB/s]",
            "pcie-wr[GiB/s]",
        ],
        &table_rows,
    )
}

/// Registry adapter: figure 6 through the [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.size.to_string(),
                    r.eci_rd_lat_us.to_string(),
                    r.eci_wr_lat_us.to_string(),
                    r.pcie_rd_lat_us.to_string(),
                    r.pcie_wr_lat_us.to_string(),
                    r.eci_rd_gib.to_string(),
                    r.eci_wr_gib.to_string(),
                    r.pcie_rd_gib.to_string(),
                    r.pcie_wr_gib.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "fig6",
                header: &[
                    "size_b",
                    "eci_rd_us",
                    "eci_wr_us",
                    "pcie_rd_us",
                    "pcie_wr_us",
                    "eci_rd_gib",
                    "eci_wr_gib",
                    "pcie_rd_gib",
                    "pcie_wr_gib",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        let (bw, lat) = ccpi_reference();
        let mut out = render(rows.downcast::<Vec<Fig6Row>>());
        out.push_str(&format!(
            "\nReference (2-socket ThunderX-1 CCPI, both links): {bw:.1} GiB/s, {lat:.0} ns\n"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), 8);
        let small = &rows[0]; // 128 B
        let at_2k = rows.iter().find(|r| r.size == 2048).unwrap();
        let large = rows.last().unwrap(); // 16 KiB

        // Latency: ECI is about half of PCIe (or better) below 8 KiB...
        assert!(
            small.eci_rd_lat_us < small.pcie_rd_lat_us / 2.0,
            "ECI {:.2} us vs PCIe {:.2} us at 128 B",
            small.eci_rd_lat_us,
            small.pcie_rd_lat_us
        );
        // ...but loses for large transfers over 8 KiB.
        assert!(
            large.eci_rd_lat_us > large.pcie_rd_lat_us,
            "ECI should lose latency at 16 KiB"
        );

        // Throughput: ECI significantly higher under 2 KiB.
        assert!(
            at_2k.eci_wr_gib > 1.8 * at_2k.pcie_wr_gib,
            "ECI {:.2} vs PCIe {:.2} GiB/s at 2 KiB",
            at_2k.eci_wr_gib,
            at_2k.pcie_wr_gib
        );
        assert!(small.eci_rd_gib > 1.5 * small.pcie_rd_gib);
        // At 16 KiB the two are comparable.
        let ratio = large.pcie_wr_gib / large.eci_wr_gib;
        assert!(
            (0.6..1.5).contains(&ratio),
            "large-transfer ratio {ratio:.2}"
        );

        // Writes outpace reads on ECI (the paper's L2/data-buffer effect).
        assert!(large.eci_wr_gib > large.eci_rd_gib);

        // Plateaus in the plot's range.
        assert!((7.0..13.0).contains(&large.eci_wr_gib));
        assert!((6.0..14.0).contains(&large.pcie_wr_gib));
    }

    #[test]
    fn ccpi_reference_near_19_gib() {
        let (bw, lat_ns) = ccpi_reference();
        assert!((17.0..23.0).contains(&bw), "CCPI bandwidth {bw:.1} GiB/s");
        assert!(
            (120.0..260.0).contains(&lat_ns),
            "CCPI latency {lat_ns:.0} ns"
        );
    }

    #[test]
    fn render_contains_all_sizes() {
        let rows = run();
        let s = render(&rows);
        for p in 7..=14 {
            assert!(s.contains(&(1u64 << p).to_string()));
        }
    }
}
