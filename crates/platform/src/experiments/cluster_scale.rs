//! Cluster scaling on the conservative-parallel engine.
//!
//! Not a paper figure — this is the scaling companion to §6's bridge:
//! the same N-board global address space, now executed one board per
//! shard on [`EnzianCluster::run_parallel`]. For each board count the
//! driver reports the bridged traffic, the goodput the fabric carried,
//! and the epoch/message accounting of the parallel engine.
//!
//! Every number here is a pure function of the workload seed: the
//! engine's merge order never observes the worker partitioning, so
//! `BENCH_cluster_scale.json` is byte-identical for every `--threads`
//! value — which `make par-cluster` and the CI thread matrix assert.
//! Wall-clock speedup, the one thing that *does* depend on the thread
//! count, is reported on stderr only.

use crate::cluster::{ClusterWorkload, EnzianCluster};
use enzian_sim::{Instrumented, MetricsRegistry, Time, TraceEvent};

/// One row of the sweep: a cluster size under the scale workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScaleRow {
    /// Boards in the cluster.
    pub boards: usize,
    /// Operations completed (local + bridged + failed).
    pub total_ops: u64,
    /// Percent of ops that crossed the bridge.
    pub remote_pct: f64,
    /// Bridge frames the fabric carried.
    pub bridge_frames: u64,
    /// Fabric goodput: line payload over the run, GiB/s of simulated
    /// time.
    pub goodput_gib: f64,
    /// Simulated completion time, microseconds.
    pub sim_end_us: f64,
    /// Lock-step epochs the conservative engine executed.
    pub epochs: u64,
    /// Quiet epochs the adaptive lookahead jumped over.
    pub epochs_skipped: u64,
    /// Cross-board envelopes exchanged.
    pub messages: u64,
    /// FNV-1a digest of all final board states.
    pub trace_digest: u64,
}

/// Swept cluster sizes.
pub const BOARD_COUNTS: [usize; 3] = [2, 4, 8];

/// Memory slice each board contributes to the global space.
pub const SLICE_BYTES: u64 = 1 << 20;

/// The workload every size runs (see [`ClusterWorkload::scale`]).
pub fn workload() -> ClusterWorkload {
    ClusterWorkload::scale()
}

/// Runs the sweep on `threads` workers and returns one row per size.
pub fn run(threads: usize) -> Vec<ClusterScaleRow> {
    run_instrumented(threads, &mut MetricsRegistry::new())
}

/// [`run`], publishing each size's report and board metric trees into
/// `reg` under `cluster_scale.*`. The export is deterministic across
/// thread counts and runs.
pub fn run_instrumented(threads: usize, reg: &mut MetricsRegistry) -> Vec<ClusterScaleRow> {
    let w = workload();
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    let mut events = 0u64;
    for &n in &BOARD_COUNTS {
        let mut cluster = EnzianCluster::new(n, SLICE_BYTES);
        let report = cluster.run_parallel(&w, threads);
        if n == BOARD_COUNTS[0] {
            // Cross-engine validation: the sequential reference driver
            // must reproduce the parallel run bit-for-bit.
            let reference = EnzianCluster::new(n, SLICE_BYTES).run_reference(&w);
            report.assert_matches(&reference);
        }
        let remote = report.remote_reads + report.remote_writes;
        let row = ClusterScaleRow {
            boards: n,
            total_ops: report.total_ops,
            remote_pct: remote as f64 / report.total_ops as f64 * 100.0,
            bridge_frames: report.bridge_frames,
            goodput_gib: report.bridge_payload_bytes as f64
                / report.sim_end.since(Time::ZERO).as_secs_f64()
                / (1u64 << 30) as f64,
            sim_end_us: report.sim_end.as_micros_f64(),
            epochs: report.epochs,
            epochs_skipped: report.epochs_skipped,
            messages: report.messages,
            trace_digest: report.trace_digest,
        };
        let base = format!("cluster_scale.b{n}");
        report.export_metrics(&base, reg);
        reg.gauge_set(&format!("{base}.goodput_gib"), row.goodput_gib);
        cluster.export_metrics(&base, reg);
        reg.trace_event(
            TraceEvent::new(report.sim_end, "cluster_scale", "size-done")
                .field("boards", n as u64)
                .field("bridge_frames", report.bridge_frames)
                .field("messages", report.messages),
        );
        sim_end = sim_end.max(report.sim_end);
        events += report.total_ops + report.messages;
        rows.push(row);
    }
    reg.counter_set("cluster_scale.sim_time_ps", sim_end.as_ps());
    reg.counter_set("cluster_scale.events_executed", events);
    rows
}

/// Renders the sweep as a table.
pub fn render(rows: &[ClusterScaleRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.boards.to_string(),
                r.total_ops.to_string(),
                format!("{:.1}", r.remote_pct),
                r.bridge_frames.to_string(),
                format!("{:.2}", r.goodput_gib),
                format!("{:.1}", r.sim_end_us),
                r.epochs.to_string(),
                r.epochs_skipped.to_string(),
                r.messages.to_string(),
            ]
        })
        .collect();
    super::render_table(
        "Cluster scaling — bridged traffic vs board count (parallel engine)",
        &[
            "boards",
            "ops",
            "remote[%]",
            "frames",
            "goodput[GiB/s]",
            "sim[us]",
            "epochs",
            "skipped",
            "msgs",
        ],
        &table_rows,
    )
}

/// Registry adapter: cluster scaling through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "cluster_scale"
    }

    fn needs_threads(&self) -> bool {
        true
    }

    fn speedup_check(&self) -> bool {
        true
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.threads, ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.boards.to_string(),
                    r.total_ops.to_string(),
                    r.remote_pct.to_string(),
                    r.bridge_frames.to_string(),
                    r.goodput_gib.to_string(),
                    r.sim_end_us.to_string(),
                    r.epochs.to_string(),
                    r.messages.to_string(),
                    r.trace_digest.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "cluster_scale",
                header: &[
                    "boards",
                    "total_ops",
                    "remote_pct",
                    "bridge_frames",
                    "goodput_gib",
                    "sim_end_us",
                    "epochs",
                    "messages",
                    "trace_digest",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<ClusterScaleRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_holds() {
        let rows = run(2);
        assert_eq!(rows.len(), BOARD_COUNTS.len());
        for (row, &n) in rows.iter().zip(&BOARD_COUNTS) {
            assert_eq!(row.boards, n);
            assert!(row.bridge_frames > 0, "{n} boards must bridge traffic");
            assert!(row.goodput_gib > 0.0);
            assert!(row.epochs > 0);
            // Roughly the configured remote fraction actually crossed.
            assert!(row.remote_pct > 10.0 && row.remote_pct < 35.0);
        }
        // More boards, more total bridged work.
        assert!(rows[2].bridge_frames > rows[0].bridge_frames);
        let s = render(&rows);
        assert!(s.contains("goodput"));
    }

    #[test]
    fn rows_and_exports_are_thread_invariant() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let rows_a = run_instrumented(1, &mut a);
        let rows_b = run_instrumented(2, &mut b);
        assert_eq!(rows_a, rows_b);
        assert_eq!(a.export_text(), b.export_text());
        assert_eq!(a.export_json(), b.export_json());
    }

    #[test]
    fn instrumented_run_feeds_the_bench_contract() {
        let mut reg = MetricsRegistry::new();
        let rows = run_instrumented(1, &mut reg);
        assert!(reg.counter("cluster_scale.sim_time_ps") > 0);
        assert!(reg.counter("cluster_scale.events_executed") > 0);
        for r in &rows {
            let base = format!("cluster_scale.b{}", r.boards);
            assert_eq!(
                reg.counter(&format!("{base}.bridge_frames")),
                r.bridge_frames
            );
            assert_eq!(reg.counter(&format!("{base}.trace_digest")), r.trace_digest);
        }
    }
}
