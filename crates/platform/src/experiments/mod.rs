//! One driver per table/figure of the paper's evaluation (§5).
//!
//! Every driver returns serde-serializable rows plus a `render()` that
//! prints the same series the paper plots. The drivers are also what the
//! Criterion benches in `enzian-bench` call, and `EXPERIMENTS.md` records
//! their output against the paper's values.

pub mod cc_sweep;
pub mod cluster_scale;
pub mod fault_sweep;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod modelcheck;
pub mod pipelining;
pub mod sched_hotpath;
pub mod service;

/// Turns a human-facing label ("Enzian (1 ECI link)") into a stable
/// metric-name segment ("enzian_1_eci_link"): lowercase, with every run
/// of non-alphanumeric characters collapsed to a single underscore.
pub(crate) fn metric_slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut gap = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(c.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    out
}

/// Renders a simple aligned table from a header and rows of strings.
pub(crate) fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_collapse_punctuation() {
        assert_eq!(metric_slug("Enzian (1 ECI link)"), "enzian_1_eci_link");
        assert_eq!(metric_slug("Alveo DRAM"), "alveo_dram");
        assert_eq!(metric_slug("linux x4"), "linux_x4");
        assert_eq!(metric_slug("  odd__label  "), "odd_label");
    }
}
