//! One driver per table/figure of the paper's evaluation (§5).
//!
//! Every driver returns structured rows plus a `render()` that prints the
//! same series the paper plots. The drivers are also what the Criterion
//! benches in `enzian-bench` call, and `EXPERIMENTS.md` records their
//! output against the paper's values.
//!
//! All drivers dispatch through one [`Experiment`] trait: `reproduce`,
//! the benches, and the Makefile targets look experiments up by name in
//! [`registry`] instead of hard-coding one entry point per figure. Each
//! module still exposes its typed `run_instrumented()` for tests; the
//! module's `Driver` unit struct adapts it to the trait, carrying the
//! CSV tables and the rendered text in an [`ExperimentRows`] bundle.

pub mod cc_sweep;
pub mod cluster_scale;
pub mod fault_sweep;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod modelcheck;
pub mod pipelining;
pub mod sched_hotpath;
pub mod service;
pub mod tcp_explore;
pub mod traffic;

use enzian_sim::MetricsRegistry;

/// Everything an experiment run may consume: the shared telemetry
/// registry the BENCH JSON snapshots, and the worker-thread count for
/// drivers built on the parallel cluster engine (ignored by the rest).
pub struct ExperimentCtx<'a> {
    /// Telemetry sink; exported as `BENCH_<name>.json` after the run.
    pub reg: &'a mut MetricsRegistry,
    /// Worker threads for [`Experiment::needs_threads`] drivers.
    pub threads: usize,
}

/// One exportable CSV panel: header plus stringified rows. `name` is the
/// CSV file stem (`<name>.csv`); most experiments emit exactly one table,
/// fig7 and fig11 emit two.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// CSV file stem.
    pub name: &'static str,
    /// Column names, in order.
    pub header: &'static [&'static str],
    /// One stringified record per row, aligned with `header`.
    pub rows: Vec<Vec<String>>,
}

/// The result bundle of one [`Experiment::run`]: the driver's typed rows
/// (behind `Any` so the trait stays object-safe) plus the CSV tables.
/// The tables carry every exported field, so comparing two bundles'
/// `tables` is as strong as comparing the typed rows directly — the
/// thread-matrix determinism check relies on this.
pub struct ExperimentRows {
    rows: Box<dyn std::any::Any + Send>,
    /// CSV panels, in export order.
    pub tables: Vec<Table>,
}

impl ExperimentRows {
    /// Bundles typed rows with their CSV tables.
    pub fn new<R: std::any::Any + Send>(rows: R, tables: Vec<Table>) -> Self {
        Self {
            rows: Box::new(rows),
            tables,
        }
    }

    /// Recovers the typed rows; panics if `R` is not the type the
    /// experiment's `run()` stored (a bug in the caller, not data).
    pub fn downcast<R: std::any::Any>(&self) -> &R {
        self.rows
            .downcast_ref()
            .expect("ExperimentRows downcast to a type the experiment did not produce")
    }
}

/// One table or figure of the evaluation, dispatchable by name.
///
/// Implementations are unit structs (`fig3::Driver`, …) listed in
/// [`registry`]. `run()` must keep every exported observable (rows,
/// tables, registry metrics) independent of `ctx.threads` and of wall
/// clock: the BENCH JSON contract is byte-identical output for every
/// thread count, which CI enforces.
pub trait Experiment: Sync {
    /// Selector name (`reproduce <name>`, `BENCH_<name>.json`).
    fn name(&self) -> &'static str;

    /// True when the driver runs on the parallel cluster engine and
    /// honours `ctx.threads`; single-threaded drivers ignore it.
    fn needs_threads(&self) -> bool {
        false
    }

    /// True when a single-experiment invocation should re-run at
    /// `threads=1` and assert the tables and metrics export are
    /// bit-identical (reporting the speedup on stderr). Off for drivers
    /// whose BENCH JSON carries thread-dependent wall-clock gauges.
    fn speedup_check(&self) -> bool {
        false
    }

    /// Runs the experiment, publishing telemetry into `ctx.reg`.
    fn run(&self, ctx: &mut ExperimentCtx<'_>) -> ExperimentRows;

    /// Renders the paper's series from a bundle produced by `run`.
    fn render(&self, rows: &ExperimentRows) -> String;
}

/// Every experiment, in the order `reproduce all` executes them.
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 16] = [
        &fig3::Driver,
        &fig6::Driver,
        &fig7::Driver,
        &fig8::Driver,
        &fig9::Driver,
        &fig11::Driver,
        &fig12::Driver,
        &fault_sweep::Driver,
        &cc_sweep::Driver,
        &pipelining::Driver,
        &modelcheck::Driver,
        &tcp_explore::Driver,
        &cluster_scale::Driver,
        &sched_hotpath::Driver,
        &service::Driver,
        &traffic::Driver,
    ];
    &REGISTRY
}

/// Looks an experiment up by name; the error lists every valid name.
pub fn find(name: &str) -> Result<&'static dyn Experiment, String> {
    registry()
        .iter()
        .copied()
        .find(|e| e.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
            format!(
                "unknown experiment {name:?}; valid experiments: {}",
                names.join("|")
            )
        })
}

/// Turns a human-facing label ("Enzian (1 ECI link)") into a stable
/// metric-name segment ("enzian_1_eci_link"): lowercase, with every run
/// of non-alphanumeric characters collapsed to a single underscore.
pub(crate) fn metric_slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut gap = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(c.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    out
}

/// Renders a simple aligned table from a header and rows of strings.
pub(crate) fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_collapse_punctuation() {
        assert_eq!(metric_slug("Enzian (1 ECI link)"), "enzian_1_eci_link");
        assert_eq!(metric_slug("Alveo DRAM"), "alveo_dram");
        assert_eq!(metric_slug("linux x4"), "linux_x4");
        assert_eq!(metric_slug("  odd__label  "), "odd_label");
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::BTreeSet::new();
        for e in registry() {
            assert!(seen.insert(e.name()), "duplicate experiment {}", e.name());
            assert_eq!(find(e.name()).unwrap().name(), e.name());
        }
        assert!(seen.contains("traffic"), "traffic missing from registry");
    }

    #[test]
    fn unknown_experiment_error_lists_valid_names() {
        let err = match find("fig99") {
            Err(e) => e,
            Ok(e) => panic!("fig99 resolved to {}", e.name()),
        };
        assert!(err.contains("fig99"), "{err}");
        for e in registry() {
            assert!(err.contains(e.name()), "{err} missing {}", e.name());
        }
    }

    #[test]
    fn speedup_checked_experiments_honour_threads() {
        // speedup_check re-runs at threads=1 and asserts equality, which
        // only makes sense for drivers on the parallel engine.
        for e in registry() {
            if e.speedup_check() {
                assert!(e.needs_threads(), "{} checks speedup", e.name());
            }
        }
    }
}
