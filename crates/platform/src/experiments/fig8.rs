//! Figure 8: RDMA performance across five configurations.
//!
//! A VCU118 generates one-sided RDMA copy requests over 100 Gb/s Ethernet
//! against: Alveo u280 DRAM, Alveo u280 host memory (PCIe), Mellanox host
//! memory, Enzian FPGA DRAM, and Enzian host memory (coherent, over ECI).
//! Read and write latency/throughput are reported for sizes 2⁷..2¹⁴.

use enzian_eci::EciSystem;
use enzian_mem::{Addr, MemoryController, MemoryControllerConfig};
use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::rdma::{RdmaBackend, RdmaEngine};
use enzian_pcie::{DmaEngine, DmaEngineConfig};
use enzian_sim::{Duration, MetricsRegistry, Time, TraceEvent};

/// The five configurations of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fig8Config {
    /// Alveo u280 serving its card DRAM (2 channels).
    AlveoDram,
    /// Alveo u280 reaching host memory over PCIe DMA.
    AlveoHost,
    /// Mellanox ConnectX-class NIC reaching host memory.
    MellanoxHost,
    /// Enzian serving its FPGA-side DRAM (4 channels, 512 GiB).
    EnzianDram,
    /// Enzian reaching host memory coherently over ECI.
    EnzianHost,
}

impl Fig8Config {
    /// All configurations in legend order.
    pub const ALL: [Fig8Config; 5] = [
        Fig8Config::AlveoDram,
        Fig8Config::AlveoHost,
        Fig8Config::MellanoxHost,
        Fig8Config::EnzianDram,
        Fig8Config::EnzianHost,
    ];

    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            Fig8Config::AlveoDram => "Alveo DRAM",
            Fig8Config::AlveoHost => "Alveo Host",
            Fig8Config::MellanoxHost => "Mellanox Host",
            Fig8Config::EnzianDram => "Enzian DRAM",
            Fig8Config::EnzianHost => "Enzian Host",
        }
    }

    fn engine(self) -> RdmaEngine {
        match self {
            Fig8Config::AlveoDram => RdmaEngine::new(RdmaBackend::LocalDram {
                // The u280 exposes two DDR4 channels beside its HBM.
                memory: MemoryController::new(
                    MemoryControllerConfig::enzian_cpu()
                        .with_channels(2)
                        .with_generation(enzian_mem::DdrGeneration::Ddr4_2400),
                ),
                pipeline: Duration::from_ns(150),
            }),
            Fig8Config::AlveoHost => RdmaEngine::new(RdmaBackend::HostViaPcie {
                dma: DmaEngine::new(DmaEngineConfig::alveo_u250()),
                host: MemoryController::new(MemoryControllerConfig::enzian_cpu()),
            }),
            Fig8Config::MellanoxHost => RdmaEngine::new(RdmaBackend::HostViaNic {
                host: MemoryController::new(MemoryControllerConfig::enzian_cpu()),
                nic_latency: Duration::from_ns(700),
                pcie_bytes_per_sec: 12.5e9,
            }),
            Fig8Config::EnzianDram => RdmaEngine::new(RdmaBackend::LocalDram {
                memory: MemoryController::new(MemoryControllerConfig::enzian_fpga()),
                pipeline: Duration::from_ns(120),
            }),
            Fig8Config::EnzianHost => RdmaEngine::new(RdmaBackend::HostViaEci(Box::new(
                EciSystem::new(enzian_eci::EciSystemConfig::enzian()),
            ))),
        }
    }
}

/// One measurement row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Configuration measured.
    pub config: Fig8Config,
    /// Transfer size in bytes.
    pub size: u64,
    /// Read latency, µs.
    pub rd_lat_us: f64,
    /// Write latency, µs.
    pub wr_lat_us: f64,
    /// Read throughput, GiB/s.
    pub rd_gib: f64,
    /// Write throughput, GiB/s.
    pub wr_gib: f64,
}

const REPS: u64 = 150;

/// Runs all five configurations over sizes 2⁷..2¹⁴.
pub fn run() -> Vec<Fig8Row> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-config throughput/latency summaries over the
/// size sweep plus one trace event per (config, size) into `reg` under
/// `fig8.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<Fig8Row> {
    let sizes: Vec<u64> = (7..=14).map(|p| 1u64 << p).collect();
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    let mut operations = 0u64;
    for config in Fig8Config::ALL {
        for &size in &sizes {
            // Latency: isolated operations on fresh engines.
            let mut e = config.engine();
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let rd = e.read(&mut link, Time::ZERO, Addr(0), size);
            let rd_lat_us = rd.latency_from(Time::ZERO).as_micros_f64();
            let mut e = config.engine();
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let data = vec![0x3Cu8; size as usize];
            let wr = e.write(&mut link, Time::ZERO, Addr(0), &data);
            let wr_lat_us = wr.latency_from(Time::ZERO).as_micros_f64();

            // Throughput: back-to-back pipelined operations.
            let mut e = config.engine();
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let mut last = Time::ZERO;
            for i in 0..REPS {
                let out = e.read(&mut link, Time::ZERO, Addr(i * size), size);
                last = last.max(out.completed);
            }
            let rd_gib = (REPS * size) as f64 / last.as_secs_f64() / (1u64 << 30) as f64;
            sim_end = sim_end.max(last);

            let mut e = config.engine();
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let mut last = Time::ZERO;
            for i in 0..REPS {
                let out = e.write(&mut link, Time::ZERO, Addr(i * size), &data);
                last = last.max(out.completed);
            }
            let wr_gib = (REPS * size) as f64 / last.as_secs_f64() / (1u64 << 30) as f64;
            sim_end = sim_end.max(last);
            operations += 2 * REPS + 2;

            let slug = super::metric_slug(config.label());
            reg.record(&format!("fig8.{slug}.rd_gib"), rd_gib);
            reg.record(&format!("fig8.{slug}.wr_gib"), wr_gib);
            reg.record(&format!("fig8.{slug}.rd_lat_us"), rd_lat_us);
            reg.record(&format!("fig8.{slug}.wr_lat_us"), wr_lat_us);
            reg.trace_event(
                TraceEvent::new(sim_end, "fig8", "measurement")
                    .field("config", config.label())
                    .field("size", size)
                    .field("rd_gib", rd_gib)
                    .field("wr_gib", wr_gib),
            );
            rows.push(Fig8Row {
                config,
                size,
                rd_lat_us,
                wr_lat_us,
                rd_gib,
                wr_gib,
            });
        }
    }
    reg.counter_set("fig8.sim_time_ps", sim_end.as_ps());
    reg.counter_set("fig8.events_executed", operations);
    rows
}

/// Renders the figure's four panels as a table.
pub fn render(rows: &[Fig8Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.label().into(),
                r.size.to_string(),
                format!("{:.2}", r.rd_lat_us),
                format!("{:.2}", r.wr_lat_us),
                format!("{:.2}", r.rd_gib),
                format!("{:.2}", r.wr_gib),
            ]
        })
        .collect();
    super::render_table(
        "Fig. 8 — RDMA performance",
        &[
            "config",
            "size[B]",
            "rd-lat[us]",
            "wr-lat[us]",
            "rd[GiB/s]",
            "wr[GiB/s]",
        ],
        &table,
    )
}

/// Registry adapter: figure 8 through the [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.config.label().to_string(),
                    r.size.to_string(),
                    r.rd_lat_us.to_string(),
                    r.wr_lat_us.to_string(),
                    r.rd_gib.to_string(),
                    r.wr_gib.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "fig8",
                header: &[
                    "config",
                    "size_b",
                    "rd_lat_us",
                    "wr_lat_us",
                    "rd_gib",
                    "wr_gib",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<Fig8Row>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(rows: &[Fig8Row], c: Fig8Config, size: u64) -> &Fig8Row {
        rows.iter()
            .find(|r| r.config == c && r.size == size)
            .expect("row present")
    }

    #[test]
    fn figure8_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), 5 * 8);
        let big = 16_384;

        // Enzian DRAM has the best large-transfer read throughput of the
        // FPGA paths and beats both host paths.
        let enzian_dram = at(&rows, Fig8Config::EnzianDram, big);
        let enzian_host = at(&rows, Fig8Config::EnzianHost, big);
        let alveo_host = at(&rows, Fig8Config::AlveoHost, big);
        let alveo_dram = at(&rows, Fig8Config::AlveoDram, big);
        let mellanox = at(&rows, Fig8Config::MellanoxHost, big);

        assert!(enzian_dram.rd_gib >= enzian_host.rd_gib);
        assert!(enzian_dram.rd_gib > alveo_host.rd_gib);
        assert!(enzian_dram.rd_gib >= alveo_dram.rd_gib * 0.95);

        // The PCIe host path has the worst small-transfer latency.
        let small = 128;
        let worst = Fig8Config::ALL
            .iter()
            .map(|&c| (c, at(&rows, c, small).rd_lat_us))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(worst.0, Fig8Config::AlveoHost, "worst latency {worst:?}");

        // Everything is competitive: all configs within the 100G wire.
        for r in &rows {
            assert!(r.rd_gib < 12.0 && r.wr_gib < 12.0, "{r:?} beats the wire");
            assert!(r.rd_lat_us < 10.0, "{:?} read latency off-scale", r.config);
        }

        // Mellanox is a strong host baseline: better small-transfer
        // latency than the Alveo host path.
        assert!(
            at(&rows, Fig8Config::MellanoxHost, small).rd_lat_us
                < at(&rows, Fig8Config::AlveoHost, small).rd_lat_us
        );
        let _ = mellanox;
    }
}
