//! Congestion-control sweep over the split TCP stack: controller ×
//! loss rate × transfer size.
//!
//! Not a paper figure — this is the experiment the module split
//! (`crates/net/src/tcp/`) exists to enable. The monolithic engine could
//! only compare the two Fig. 7 endpoints (all-FPGA vs all-CPU); with
//! congestion control as a pluggable module the sweep can hold the cost
//! model fixed and vary *policy* (fixed hardware window vs Reno vs
//! CUBIC-shaped), and can run the hybrid stack — reliability in the FPGA
//! pipeline, congestion policy on the CPU — as a first-class point
//! between the extremes.
//!
//! Every cell is seeded (payloads and loss schedules derive from fixed
//! seeds), so two runs render byte-identical `BENCH_cc_sweep.json`
//! files — which `make cc-sweep` and CI assert.

use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::tcp::{CcAlgorithm, LossPattern, TcpEngine, TcpStackConfig, SEGMENT_LOSS_TARGET};
use enzian_net::Switch;
use enzian_sim::{FaultPlan, FaultSpec, Instrumented, MetricsRegistry, SimRng, Time, TraceEvent};

/// One cell of the sweep: a (stack, loss rate, size) point.
#[derive(Debug, Clone, PartialEq)]
pub struct CcSweepRow {
    /// Stack label (cost model + controller), e.g. `"hybrid_reno"`.
    pub stack: String,
    /// Congestion-controller label (`"fixed"`, `"reno"`, `"cubic"`).
    pub cc: &'static str,
    /// Segment-loss probability in basis points (1/100 %).
    pub loss_bp: u64,
    /// Transfer size in bytes.
    pub size: u64,
    /// Application-to-application latency, µs.
    pub latency_us: f64,
    /// Goodput, Gb/s.
    pub gbps: f64,
    /// Segments sent (including retransmissions).
    pub segments: u64,
    /// Go-back-N rewind events (== RTO fires; the reliability module's
    /// single ledger).
    pub retransmissions: u64,
    /// Mean effective send window over the transfer, bytes.
    pub cwnd_mean: f64,
    /// Smallest effective send window seen, bytes.
    pub cwnd_min: f64,
    /// Largest effective send window seen, bytes.
    pub cwnd_max: f64,
    /// Stalls where the congestion window was the binding constraint.
    pub cwnd_stalls: u64,
    /// Stalls where the receive window was the binding constraint.
    pub rwnd_stalls: u64,
}

/// Base seed; every cell derives its payload and loss-plan seeds from it.
const SEED: u64 = 0xCC5E_ED00;

/// Swept loss rates, in basis points of per-first-transmission
/// probability.
pub const LOSS_BP: [u64; 3] = [0, 100, 500];

/// Swept transfer sizes, bytes.
pub const SIZES: [u64; 2] = [64 * 1024, 1024 * 1024];

/// The swept stacks: (label, config). Three controllers over the FPGA
/// cost model, the hybrid CPU/FPGA stack, and the kernel baseline.
pub fn stacks() -> Vec<(&'static str, TcpStackConfig)> {
    vec![
        ("fpga_fixed", TcpStackConfig::fpga_coyote()),
        (
            "fpga_reno",
            TcpStackConfig::fpga_coyote().with_cc(CcAlgorithm::Reno),
        ),
        (
            "fpga_cubic",
            TcpStackConfig::fpga_coyote().with_cc(CcAlgorithm::Cubic),
        ),
        ("hybrid_reno", TcpStackConfig::hybrid_offload()),
        ("kernel_fixed", TcpStackConfig::linux_kernel()),
    ]
}

/// Runs the sweep and returns one row per (stack, loss rate, size) cell.
pub fn run() -> Vec<CcSweepRow> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-cell gauges plus each engine's full TCP
/// telemetry (per-module counters included) into `reg` under
/// `cc_sweep.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<CcSweepRow> {
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    let mut events = 0u64;
    for (stack_idx, (label, cfg)) in stacks().into_iter().enumerate() {
        for &loss_bp in &LOSS_BP {
            for &size in &SIZES {
                // Payload seeded per size only, so every stack moves the
                // same bytes; the loss plan is seeded per cell so streams
                // never alias across cells.
                let mut rng = SimRng::seed_from(SEED ^ size);
                let mut data = vec![0u8; size as usize];
                rng.fill_bytes(&mut data);

                let mut engine = TcpEngine::new(cfg, cfg, Switch::tor());
                if loss_bp > 0 {
                    let cell_seed = SEED ^ ((stack_idx as u64 + 1) << 32) ^ (loss_bp << 16) ^ size;
                    let plan = FaultPlan::new(cell_seed).with(FaultSpec::probability(
                        SEGMENT_LOSS_TARGET,
                        loss_bp as f64 / 10_000.0,
                    ));
                    engine = engine.with_loss(LossPattern::from_plan(plan));
                }

                let mut link = EthLink::new(EthLinkConfig::hundred_gig());
                let (out, r) = engine.transfer(&mut link, Time::ZERO, &data);
                assert_eq!(out, data, "{label} corrupted the stream at {loss_bp} bp");

                let t = engine.telemetry();
                let m = t.module();
                let cwnd = &m.cwnd_bytes;
                let row = CcSweepRow {
                    stack: label.to_string(),
                    cc: cfg.cc.label(),
                    loss_bp,
                    size,
                    latency_us: r.latency().as_micros_f64(),
                    gbps: r.throughput_bits() / 1e9,
                    segments: r.segments,
                    retransmissions: r.retransmissions,
                    cwnd_mean: cwnd.mean(),
                    cwnd_min: cwnd.min().unwrap_or(0.0),
                    cwnd_max: cwnd.max().unwrap_or(0.0),
                    cwnd_stalls: m.cwnd_stalls,
                    rwnd_stalls: m.rwnd_stalls,
                };
                // Single ledger check: the engine's aggregate view, the
                // reliability module's derived export, and the outcome
                // all agree (the no-double-counting contract).
                assert_eq!(t.retransmissions(), r.retransmissions);
                assert_eq!(t.rto_fires(), r.retransmissions);

                let base = format!(
                    "cc_sweep.{label}.loss{loss_bp:04}bp.size{:04}kb",
                    size / 1024
                );
                reg.gauge_set(&format!("{base}.latency_us"), row.latency_us);
                reg.gauge_set(&format!("{base}.gbps"), row.gbps);
                let mut tmp = MetricsRegistry::new();
                t.export_metrics(&base, &mut tmp);
                reg.merge(&tmp);
                reg.trace_event(
                    TraceEvent::new(r.delivered, "cc_sweep", "cell-done")
                        .field("stack", label)
                        .field("loss_bp", loss_bp)
                        .field("size", size)
                        .field("retransmissions", r.retransmissions),
                );

                sim_end = sim_end.max(r.delivered);
                events += r.segments;
                rows.push(row);
            }
        }
    }
    reg.counter_set("cc_sweep.sim_time_ps", sim_end.as_ps());
    reg.counter_set("cc_sweep.events_executed", events);
    rows
}

/// Renders the sweep as a table.
pub fn render(rows: &[CcSweepRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stack.clone(),
                r.cc.to_string(),
                format!("{:.2}", r.loss_bp as f64 / 100.0),
                (r.size / 1024).to_string(),
                format!("{:.1}", r.latency_us),
                format!("{:.1}", r.gbps),
                r.segments.to_string(),
                r.retransmissions.to_string(),
                format!("{:.0}", r.cwnd_mean / 1024.0),
                r.cwnd_stalls.to_string(),
            ]
        })
        .collect();
    super::render_table(
        "CC sweep — congestion controller x loss rate x transfer size",
        &[
            "stack", "cc", "loss[%]", "size[KB]", "lat[us]", "gbps", "segs", "retx", "cwnd[KB]",
            "cstalls",
        ],
        &table_rows,
    )
}

/// Registry adapter: the congestion-control sweep through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "cc_sweep"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.stack.clone(),
                    r.cc.to_string(),
                    r.loss_bp.to_string(),
                    r.size.to_string(),
                    r.latency_us.to_string(),
                    r.gbps.to_string(),
                    r.segments.to_string(),
                    r.retransmissions.to_string(),
                    r.cwnd_mean.to_string(),
                    r.cwnd_min.to_string(),
                    r.cwnd_max.to_string(),
                    r.cwnd_stalls.to_string(),
                    r.rwnd_stalls.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "cc_sweep",
                header: &[
                    "stack",
                    "cc",
                    "loss_bp",
                    "size_b",
                    "latency_us",
                    "gbps",
                    "segments",
                    "retransmissions",
                    "cwnd_mean",
                    "cwnd_min",
                    "cwnd_max",
                    "cwnd_stalls",
                    "rwnd_stalls",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<CcSweepRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(rows: &'a [CcSweepRow], stack: &str, loss_bp: u64, size: u64) -> &'a CcSweepRow {
        rows.iter()
            .find(|r| r.stack == stack && r.loss_bp == loss_bp && r.size == size)
            .expect("cell present")
    }

    #[test]
    fn sweep_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), stacks().len() * LOSS_BP.len() * SIZES.len());

        let mib = 1024 * 1024;
        // The hybrid stack sits between the Fig. 7 extremes, lossless.
        let hw = cell(&rows, "fpga_fixed", 0, mib);
        let hy = cell(&rows, "hybrid_reno", 0, mib);
        let sw = cell(&rows, "kernel_fixed", 0, mib);
        assert!(hy.latency_us > hw.latency_us, "hybrid pays for CPU policy");
        assert!(hy.latency_us < sw.latency_us, "hybrid beats the kernel");

        // Policy reacts to loss: adaptive controllers shrink their mean
        // window under loss; the fixed pipeline window cannot.
        let reno_clean = cell(&rows, "fpga_reno", 0, mib);
        let reno_lossy = cell(&rows, "fpga_reno", 500, mib);
        assert!(reno_lossy.retransmissions > 0);
        assert!(
            reno_lossy.cwnd_mean < reno_clean.cwnd_mean,
            "Reno must back off under loss: {:.0} vs {:.0}",
            reno_lossy.cwnd_mean,
            reno_clean.cwnd_mean
        );
        let fixed_lossy = cell(&rows, "fpga_fixed", 500, mib);
        assert_eq!(fixed_lossy.cwnd_min, fixed_lossy.cwnd_max);

        // Slow start shows up as congestion-window stalls for the
        // adaptive stacks, and never for the fixed-window ones.
        assert!(cell(&rows, "fpga_reno", 0, mib).cwnd_stalls > 0);
        assert_eq!(cell(&rows, "fpga_fixed", 0, mib).cwnd_stalls, 0);
        assert_eq!(cell(&rows, "kernel_fixed", 0, mib).cwnd_stalls, 0);

        // Loss costs latency for every stack.
        for (label, _) in stacks() {
            let clean = cell(&rows, label, 0, mib);
            let lossy = cell(&rows, label, 500, mib);
            assert!(
                lossy.latency_us > clean.latency_us,
                "{label}: loss must cost latency"
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        assert_eq!(run_instrumented(&mut a), run_instrumented(&mut b));
        assert_eq!(a.export_text(), b.export_text());
        assert_eq!(a.export_json(), b.export_json());
    }

    #[test]
    fn instrumented_run_feeds_the_bench_contract() {
        let mut reg = MetricsRegistry::new();
        let rows = run_instrumented(&mut reg);
        assert!(reg.counter("cc_sweep.sim_time_ps") > 0);
        assert!(reg.counter("cc_sweep.events_executed") > 0);
        for r in &rows {
            let base = format!(
                "cc_sweep.{}.loss{:04}bp.size{:04}kb",
                r.stack,
                r.loss_bp,
                r.size / 1024
            );
            assert_eq!(
                reg.counter(&format!("{base}.retransmissions")),
                r.retransmissions
            );
            assert_eq!(
                reg.counter(&format!("{base}.reliability.rto_fires")),
                r.retransmissions,
                "derived module export must match the single ledger"
            );
        }
        let s = render(&rows);
        assert!(s.contains("cwnd"));
        assert!(s.contains("hybrid_reno"));
    }
}
