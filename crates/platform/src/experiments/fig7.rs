//! Figure 7: FPGA TCP stack performance, Enzian (1 flow) vs CPU/Linux
//! kernel stack (1 flow).
//!
//! Two Enzians are connected through their FPGA-side 100 Gb/s links via a
//! switch and compared (iperf-style) against two Xeon Gold machines with
//! 100 Gb/s Mellanox NICs. Transfer sizes are 2¹..2¹⁰ KB.

use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::tcp::{TcpEngine, TcpStackConfig};
use enzian_net::Switch;
use enzian_sim::{Instrumented, MetricsRegistry, SimRng, Time, TraceEvent};

/// One row: a transfer size with both stacks' series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// Transfer size in bytes.
    pub size: u64,
    /// Enzian FPGA-stack latency, µs.
    pub enzian_lat_us: f64,
    /// Linux kernel-stack latency, µs.
    pub linux_lat_us: f64,
    /// Enzian FPGA-stack throughput, Gb/s.
    pub enzian_gbps: f64,
    /// Linux kernel-stack throughput, Gb/s.
    pub linux_gbps: f64,
}

/// Runs the experiment for sizes 2 KB .. 1024 KB.
pub fn run() -> Vec<Fig7Row> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-size gauges, both stacks' accumulated TCP
/// telemetry (segments, retransmissions, per-flow RTT summaries), and one
/// trace event per size into `reg` under `fig7.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<Fig7Row> {
    let mut rng = SimRng::seed_from(77);
    let sizes: Vec<u64> = (1..=10).map(|p| (1u64 << p) * 1024).collect();
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    for &size in &sizes {
        let mut data = vec![0u8; size as usize];
        rng.fill_bytes(&mut data);

        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let mut hw = TcpEngine::new(
            TcpStackConfig::fpga_coyote(),
            TcpStackConfig::fpga_coyote(),
            Switch::tor(),
        );
        let (out, hw_r) = hw.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data, "hardware stack corrupted the stream");
        sim_end = sim_end.max(hw_r.delivered);
        let mut tmp = MetricsRegistry::new();
        hw.telemetry().export_metrics("fig7.tcp.fpga", &mut tmp);
        reg.merge(&tmp);

        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let mut sw = TcpEngine::new(
            TcpStackConfig::linux_kernel(),
            TcpStackConfig::linux_kernel(),
            Switch::tor(),
        );
        let (out, sw_r) = sw.transfer(&mut link, Time::ZERO, &data);
        assert_eq!(out, data, "kernel stack corrupted the stream");
        sim_end = sim_end.max(sw_r.delivered);
        let mut tmp = MetricsRegistry::new();
        sw.telemetry().export_metrics("fig7.tcp.kernel", &mut tmp);
        reg.merge(&tmp);

        let row = Fig7Row {
            size,
            enzian_lat_us: hw_r.latency().as_micros_f64(),
            linux_lat_us: sw_r.latency().as_micros_f64(),
            enzian_gbps: hw_r.throughput_bits() / 1e9,
            linux_gbps: sw_r.throughput_bits() / 1e9,
        };
        reg.record_latency("fig7.enzian_latency", hw_r.latency());
        reg.record_latency("fig7.linux_latency", sw_r.latency());
        let base = format!("fig7.size{:04}kb", size / 1024);
        reg.gauge_set(&format!("{base}.enzian_gbps"), row.enzian_gbps);
        reg.gauge_set(&format!("{base}.linux_gbps"), row.linux_gbps);
        reg.trace_event(
            TraceEvent::new(sim_end, "fig7", "size-done")
                .field("size", size)
                .field("enzian_gbps", row.enzian_gbps)
                .field("linux_gbps", row.linux_gbps),
        );
        rows.push(row);
    }
    reg.counter_set("fig7.sim_time_ps", sim_end.as_ps());
    reg.counter_set(
        "fig7.events_executed",
        reg.counter("fig7.tcp.fpga.segments") + reg.counter("fig7.tcp.kernel.segments"),
    );
    rows
}

/// One flow-scaling record of the second panel.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiflowRow {
    /// Series label ("enzian x1", "linux x3", …).
    pub label: String,
    /// Aggregate goodput across the flows, Gb/s.
    pub gbps: f64,
}

/// The text's flow-scaling observation: aggregate goodput of 1..=4
/// kernel-stack flows vs the single hardware flow ("4 flows are needed
/// using the CPU to saturate the link").
pub fn run_multiflow() -> Vec<MultiflowRow> {
    let mut rng = SimRng::seed_from(78);
    let per_flow = 2 << 20;
    let mut data = vec![0u8; per_flow];
    rng.fill_bytes(&mut data);

    let mut out = Vec::new();
    let mut link = EthLink::new(EthLinkConfig::hundred_gig());
    let mut hw = TcpEngine::new(
        TcpStackConfig::fpga_coyote(),
        TcpStackConfig::fpga_coyote(),
        Switch::tor(),
    );
    let (_, r) = hw.transfer(&mut link, Time::ZERO, &data);
    out.push(MultiflowRow {
        label: "enzian x1".to_string(),
        gbps: r.throughput_bits() / 1e9,
    });

    for flows in 1..=4usize {
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        let mut sw = TcpEngine::new(
            TcpStackConfig::linux_kernel(),
            TcpStackConfig::linux_kernel(),
            Switch::tor(),
        );
        let refs: Vec<&[u8]> = (0..flows).map(|_| &data[..]).collect();
        let results = sw.transfer_interleaved(&mut link, Time::ZERO, &refs);
        let last = results.iter().map(|r| r.delivered).max().expect("flows");
        let bits = (flows * per_flow) as f64 * 8.0;
        out.push(MultiflowRow {
            label: format!("linux x{flows}"),
            gbps: bits / last.as_secs_f64() / 1e9,
        });
    }
    out
}

/// Renders both figure panels.
pub fn render(rows: &[Fig7Row]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                (r.size / 1024).to_string(),
                format!("{:.1}", r.enzian_lat_us),
                format!("{:.1}", r.linux_lat_us),
                format!("{:.1}", r.enzian_gbps),
                format!("{:.1}", r.linux_gbps),
            ]
        })
        .collect();
    super::render_table(
        "Fig. 7 — FPGA TCP stack, Enzian (1 flow) vs Linux kernel stack (1 flow)",
        &[
            "size[KB]",
            "enzian[us]",
            "linux[us]",
            "enzian[Gb/s]",
            "linux[Gb/s]",
        ],
        &table,
    )
}

/// Both figure-7 panels: the single-flow size sweep and the flow-scaling
/// rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Rows {
    /// Size sweep, Enzian vs Linux, one flow each.
    pub single_flow: Vec<Fig7Row>,
    /// Aggregate goodput of 1..=4 kernel flows vs one hardware flow.
    pub multiflow: Vec<MultiflowRow>,
}

/// Registry adapter: figure 7 through the [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let single_flow = run_instrumented(ctx.reg);
        let multiflow = run_multiflow();
        let csv = single_flow
            .iter()
            .map(|r| {
                vec![
                    r.size.to_string(),
                    r.enzian_lat_us.to_string(),
                    r.linux_lat_us.to_string(),
                    r.enzian_gbps.to_string(),
                    r.linux_gbps.to_string(),
                ]
            })
            .collect();
        let multi_csv = multiflow
            .iter()
            .map(|r| vec![r.label.clone(), r.gbps.to_string()])
            .collect();
        super::ExperimentRows::new(
            Fig7Rows {
                single_flow,
                multiflow,
            },
            vec![
                super::Table {
                    name: "fig7",
                    header: &[
                        "size_b",
                        "enzian_lat_us",
                        "linux_lat_us",
                        "enzian_gbps",
                        "linux_gbps",
                    ],
                    rows: csv,
                },
                super::Table {
                    name: "fig7_multiflow",
                    header: &["label", "gbps"],
                    rows: multi_csv,
                },
            ],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        let r = rows.downcast::<Fig7Rows>();
        let mut out = render(&r.single_flow);
        out.push_str("\nFlow scaling (2 MiB per flow):\n");
        for m in &r.multiflow {
            out.push_str(&format!("  {:<10} {:>6.1} Gb/s\n", m.label, m.gbps));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_kernel_flows_saturate_where_one_hardware_flow_does() {
        let rows = run_multiflow();
        let get = |name: &str| rows.iter().find(|r| r.label == name).unwrap().gbps;
        assert!(get("enzian x1") > 90.0);
        assert!(get("linux x1") < 45.0);
        assert!(
            get("linux x4") > 75.0,
            "4 flows reached only {}",
            get("linux x4")
        );
        // Monotone in flow count.
        for i in 1..4 {
            assert!(get(&format!("linux x{}", i + 1)) > get(&format!("linux x{i}")) * 0.98);
        }
    }

    #[test]
    fn figure7_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), 10);
        let large = rows.last().unwrap(); // 1 MB

        // Enzian saturates the link with one flow at large transfers.
        assert!(
            large.enzian_gbps > 90.0,
            "Enzian at {:.1} Gb/s",
            large.enzian_gbps
        );
        // The kernel stack's single flow is far from line rate.
        assert!(
            large.linux_gbps < 45.0,
            "Linux at {:.1} Gb/s",
            large.linux_gbps
        );
        // Latency panel: Linux sits well above Enzian everywhere, and
        // grows into the hundreds of microseconds at 1 MB.
        for r in &rows {
            assert!(r.linux_lat_us > r.enzian_lat_us, "at {} B", r.size);
        }
        assert!(large.linux_lat_us > 150.0);
        assert!(large.enzian_lat_us < 120.0);

        // Throughput rises monotonically with size for Enzian (latency
        // amortizes).
        for w in rows.windows(2) {
            assert!(w[1].enzian_gbps >= w[0].enzian_gbps * 0.98);
        }
    }
}
