//! Traffic: million-flow connection churn over the cluster bridge.
//!
//! A TrafficEngine-style load generator (after Coyote's and StRoM's
//! network test harnesses): every board runs one generator that drives
//! full handshake → transfer → teardown sessions against its peers,
//! client and server roles concurrent, multiplexed through the
//! [`SessionMux`](enzian_net::SessionMux) flow table. Four legs:
//!
//! * **churn** — connections/sec for each stack personality at 2/4/8
//!   boards (the scaling series the figure plots);
//! * **flows** — a held-open storm sizing the slab-backed flow table to
//!   ≥ 10⁵ concurrent flows cluster-wide;
//! * **loss** — churn goodput with a probabilistic segment-loss fault
//!   plan against the lossless baseline;
//! * **proxy** — the client → proxy → server chain across three boards.

use crate::traffic::{TrafficRunReport, TrafficStack, TrafficWorkload};
use enzian_sim::{Duration, MetricsRegistry, Time, TraceEvent};

/// One run of one leg: the workload axes plus the observables the
/// figure and the CSV export carry.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRow {
    /// Leg name: `churn`, `flows`, `loss`, or `proxy`.
    pub leg: &'static str,
    /// Stack personality label.
    pub stack: &'static str,
    /// Boards in the cluster.
    pub boards: u8,
    /// Injected segment-loss probability, basis points.
    pub loss_bp: u32,
    /// Client sessions opened (and completed) cluster-wide.
    pub sessions: u64,
    /// Peak concurrent flows cluster-wide (client + server entries).
    pub peak_flows: u64,
    /// Peak concurrent flows on the busiest board.
    pub peak_flows_board: u64,
    /// Completed client sessions per simulated second.
    pub conns_per_sec: f64,
    /// Delivered payload goodput, Gb/s.
    pub goodput_gbps: f64,
    /// Retransmitted data segments.
    pub retransmissions: u64,
    /// Sessions spliced through the proxy (zero outside the proxy leg).
    pub relayed_sessions: u64,
    /// Simulated completion time, µs.
    pub sim_end_us: f64,
    /// Conservative-engine epochs executed.
    pub epochs: u64,
    /// Cross-board envelopes carried.
    pub messages: u64,
    /// Order-sensitive FNV digest over every board's final state.
    pub digest: u64,
}

/// The four legs, as `(leg, workload)` pairs in run order. Public so
/// tests and docs can audit the axes without re-running anything.
pub fn legs() -> Vec<(&'static str, TrafficWorkload)> {
    let mut legs = Vec::new();
    // Churn: the slower the stack's handshake path, the wider the open
    // gap has to be for the generator to stay ahead of its own backlog.
    for stack in TrafficStack::all() {
        let gap = match stack {
            TrafficStack::Fpga => Duration::from_us(1),
            TrafficStack::Hybrid => Duration::from_us(6),
            TrafficStack::Kernel => Duration::from_us(40),
        };
        for boards in [2u8, 4, 8] {
            legs.push((
                "churn",
                TrafficWorkload::small()
                    .with_stack(stack)
                    .with_boards(boards)
                    .with_sessions_per_board(600)
                    .with_open_gap(gap)
                    .with_bytes_per_session(8 * 1024)
                    .with_hold(Duration::from_us(200))
                    .with_seed(0x7AF1_0000 + u64::from(boards)),
            ));
        }
    }
    // Flows: 50 k opens per board at a 600 ns gap spread over 30 ms,
    // held open for 32 ms, so every session is live at once. Each
    // session occupies a client slot on one board and a server slot on
    // the other: ~200 k concurrent flows cluster-wide.
    legs.push((
        "flows",
        TrafficWorkload::small()
            .with_sessions_per_board(50_000)
            .with_open_gap(Duration::from_ns(600))
            .with_bytes_per_session(2 * 1024)
            .with_hold(Duration::from_ms(32))
            .with_seed(0x7AF1_F10C),
    ));
    // Loss: the same churn twice per stack, lossless then with a 1 %
    // per-segment fault plan, so the figure can show the goodput cost
    // of recovery — on the all-FPGA stack *and* on the hybrid offload
    // point, whose CPU-side Reno policy reacts to each RTO where the
    // fixed hardware window does not. The open gap leaves the 100G link
    // under 50 % utilized (64 KiB is ~5.5 µs of wire time), so the
    // lossless baselines see no spurious queueing-delay RTOs and every
    // retransmission in the lossy rows is attributable to the fault
    // plan.
    for stack in [TrafficStack::Fpga, TrafficStack::Hybrid] {
        for loss_bp in [0u32, 100] {
            legs.push((
                "loss",
                TrafficWorkload::small()
                    .with_stack(stack)
                    .with_sessions_per_board(600)
                    .with_open_gap(Duration::from_us(12))
                    .with_bytes_per_session(64 * 1024)
                    .with_hold(Duration::from_us(200))
                    .with_loss_bp(loss_bp)
                    .with_seed(0x7AF1_7055),
            ));
        }
    }
    // Proxy: the three-board client → proxy → server chain.
    legs.push((
        "proxy",
        TrafficWorkload::small()
            .with_proxy()
            .with_sessions_per_board(2_000)
            .with_open_gap(Duration::from_us(2))
            .with_bytes_per_session(8 * 1024)
            .with_hold(Duration::from_us(200))
            .with_seed(0x7AF1_9C0A),
    ));
    legs
}

fn row(leg: &'static str, w: &TrafficWorkload, r: &TrafficRunReport) -> TrafficRow {
    TrafficRow {
        leg,
        stack: w.stack.label(),
        boards: w.boards,
        loss_bp: w.loss_bp,
        sessions: r.completed,
        peak_flows: r.peak_flows,
        peak_flows_board: r.peak_flows_board,
        conns_per_sec: r.conns_per_sec(),
        goodput_gbps: r.goodput_bits() / 1e9,
        retransmissions: r.retransmissions,
        relayed_sessions: r.relayed_sessions,
        sim_end_us: r.sim_end.as_micros_f64(),
        epochs: r.epochs,
        messages: r.messages,
        digest: r.digest,
    }
}

/// Runs every leg on `threads` workers.
pub fn run(threads: usize) -> Vec<TrafficRow> {
    run_instrumented(threads, &mut MetricsRegistry::new())
}

/// [`run`], publishing each run's full report under
/// `traffic.<leg>.<stack>.b<boards>.loss<bp>.*` plus the top-level
/// `traffic.sim_time_ps` / `traffic.events_executed` counters. Every
/// exported value is independent of `threads`.
pub fn run_instrumented(threads: usize, reg: &mut MetricsRegistry) -> Vec<TrafficRow> {
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    let mut events = 0u64;
    for (leg, w) in legs() {
        let report = w.run_parallel(threads);
        let prefix = format!(
            "traffic.{leg}.{}.b{}.loss{}",
            w.stack.label(),
            w.boards,
            w.loss_bp
        );
        report.export_metrics(&prefix, reg);
        reg.gauge_set(&format!("{prefix}.conns_per_sec"), report.conns_per_sec());
        reg.gauge_set(
            &format!("{prefix}.goodput_gbps"),
            report.goodput_bits() / 1e9,
        );
        reg.trace_event(
            TraceEvent::new(report.sim_end, "traffic", leg)
                .field("boards", u64::from(w.boards))
                .field("completed", report.completed)
                .field("peak_flows", report.peak_flows),
        );
        sim_end = sim_end.max(report.sim_end);
        events += report.messages;
        rows.push(row(leg, &w, &report));
    }
    // The acceptance bar the ISSUE sets: the flow-table storm must
    // sustain at least 10^5 concurrent flows cluster-wide.
    let storm = rows.iter().find(|r| r.leg == "flows").expect("flows leg");
    assert!(
        storm.peak_flows >= 100_000,
        "flow storm peaked at {} concurrent flows",
        storm.peak_flows
    );
    // Churn must actually scale: 8 boards beat 2 boards on every stack.
    for stack in TrafficStack::all() {
        let at = |boards: u8| {
            rows.iter()
                .find(|r| r.leg == "churn" && r.stack == stack.label() && r.boards == boards)
                .expect("churn row")
                .conns_per_sec
        };
        assert!(
            at(8) > 2.0 * at(2),
            "{} churn did not scale: {} vs {}",
            stack.label(),
            at(8),
            at(2)
        );
    }
    reg.counter_set("traffic.sim_time_ps", sim_end.as_ps());
    reg.counter_set("traffic.events_executed", events);
    rows
}

/// Renders the churn/flows/loss/proxy series.
pub fn render(rows: &[TrafficRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.leg.to_string(),
                r.stack.to_string(),
                r.boards.to_string(),
                r.loss_bp.to_string(),
                r.sessions.to_string(),
                r.peak_flows.to_string(),
                format!("{:.0}", r.conns_per_sec),
                format!("{:.2}", r.goodput_gbps),
                r.retransmissions.to_string(),
                r.relayed_sessions.to_string(),
            ]
        })
        .collect();
    super::render_table(
        "Traffic — connection churn over the cluster bridge (one generator per board)",
        &[
            "leg",
            "stack",
            "boards",
            "loss[bp]",
            "sessions",
            "peak_flows",
            "conns/s",
            "goodput[Gb/s]",
            "retx",
            "relayed",
        ],
        &table,
    )
}

/// Registry adapter: the traffic generator through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "traffic"
    }

    fn needs_threads(&self) -> bool {
        true
    }

    fn speedup_check(&self) -> bool {
        true
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.threads, ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.leg.to_string(),
                    r.stack.to_string(),
                    r.boards.to_string(),
                    r.loss_bp.to_string(),
                    r.sessions.to_string(),
                    r.peak_flows.to_string(),
                    r.peak_flows_board.to_string(),
                    r.conns_per_sec.to_string(),
                    r.goodput_gbps.to_string(),
                    r.retransmissions.to_string(),
                    r.relayed_sessions.to_string(),
                    r.sim_end_us.to_string(),
                    r.epochs.to_string(),
                    r.messages.to_string(),
                    r.digest.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "traffic",
                header: &[
                    "leg",
                    "stack",
                    "boards",
                    "loss_bp",
                    "sessions",
                    "peak_flows",
                    "peak_flows_board",
                    "conns_per_sec",
                    "goodput_gbps",
                    "retransmissions",
                    "relayed_sessions",
                    "sim_end_us",
                    "epochs",
                    "messages",
                    "digest",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<TrafficRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full legs only run in release through `reproduce traffic`;
    // here we audit the axes so a sizing regression fails fast.
    #[test]
    fn legs_cover_the_paper_axes() {
        let legs = legs();
        for (_, w) in &legs {
            w.validate();
        }
        for stack in TrafficStack::all() {
            for boards in [2u8, 4, 8] {
                assert!(
                    legs.iter()
                        .any(|(l, w)| *l == "churn" && w.stack == stack && w.boards == boards),
                    "churn missing {} x{boards}",
                    stack.label()
                );
            }
        }
        let (_, storm) = legs.iter().find(|(l, _)| *l == "flows").expect("flows");
        // Opens span less than the hold, so all sessions are live at
        // once; each occupies a client and a server table entry.
        assert!(storm.open_gap * storm.sessions_per_board <= storm.hold);
        assert!(2 * storm.total_sessions() >= 100_000);
        let loss: Vec<_> = legs.iter().filter(|(l, _)| *l == "loss").collect();
        assert_eq!(
            loss.len(),
            4,
            "loss leg needs a lossless baseline and a lossy run per stack"
        );
        for stack in [TrafficStack::Fpga, TrafficStack::Hybrid] {
            assert!(
                loss.iter().any(|(_, w)| w.stack == stack && w.loss_bp == 0),
                "{} missing its lossless baseline",
                stack.label()
            );
            assert!(
                loss.iter().any(|(_, w)| w.stack == stack && w.loss_bp > 0),
                "{} missing its lossy run",
                stack.label()
            );
        }
        assert!(legs.iter().any(|(l, w)| *l == "proxy" && w.proxy));
    }
}
