//! TCP model check: bounded exploration of the connection FSM.
//!
//! The generic exploration core ([`enzian_sim::explore`]) that proves
//! the ECI coherence protocol safe (`modelcheck`) is aimed here at the
//! *other* protocol the platform implements: the TCP connection state
//! machine. [`TcpModel`] drives the real [`enzian_net::tcp::Connection`]
//! transition relation — not a copy of it — over an abstract channel
//! with bounded loss, reordering, and duplication, and the sweep proves
//! that no illegal transition is reachable, no configuration deadlocks
//! short of `Closed`, and both endpoints converge after a FIN exchange
//! even when the adversary retransmits or drops teardown segments.
//!
//! A mutation battery then re-runs the duplex configuration with four
//! seeded FSM bugs (dropping TimeWait, accepting data in SYN_SENT,
//! skipping the FIN ack, swapping the close ordering) and demands each
//! one is caught with a counterexample rendered through the real
//! 28-byte segment codec — the self-test that keeps the checker honest.
//!
//! Every row is fully deterministic (canonicalized BFS, seeded walk),
//! so two runs render byte-identical `BENCH_tcp_explore.json` files —
//! which CI asserts with a byte compare.

use enzian_net::tcp::{TcpModel, TcpModelConfig, ALL_TCP_MUTATIONS};
use enzian_sim::MetricsRegistry;

/// Seed for the random-walk row (any value works; fixed for CI).
const WALK_SEED: u64 = 7;
/// Steps of the random-walk row.
const WALK_STEPS: u64 = 4_000;

/// The ISSUE's acceptance bar: the primary clean configuration must
/// exhaust a space of at least this many states with zero violations.
const MIN_CLEAN_STATES: u64 = 10_000;

/// One configuration's exploration result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpExploreRow {
    /// Human-facing configuration label.
    pub name: String,
    /// `"exhaustive"` or `"walk"`.
    pub mode: &'static str,
    /// Distinct canonical states visited.
    pub states: u64,
    /// Transitions taken.
    pub transitions: u64,
    /// BFS frontier high-water mark (or walk depth).
    pub frontier_peak: u64,
    /// Depth of the deepest state reached.
    pub max_depth: u64,
    /// The invariant that broke, if any (mutation rows only).
    pub violation: Option<String>,
    /// Whether this row injected a bug and so *must* report one.
    pub expect_violation: bool,
}

/// The sweep: clean configurations that must explore violation-free,
/// then the mutation battery that must trip.
fn sweep() -> Vec<(String, TcpModelConfig, bool)> {
    let mut configs = vec![
        (
            "one-way data, 1 loss".to_string(),
            TcpModelConfig::one_way(),
            false,
        ),
        (
            "duplex data, 1 loss".to_string(),
            TcpModelConfig::duplex(),
            false,
        ),
        (
            "one-way data, 1 loss, 1 dup".to_string(),
            TcpModelConfig::deep(),
            false,
        ),
    ];
    for m in ALL_TCP_MUTATIONS {
        configs.push((
            format!("duplex + {m:?}"),
            TcpModelConfig::duplex().with_mutation(Some(m)),
            true,
        ));
    }
    configs
}

/// Runs the whole sweep.
///
/// # Panics
///
/// Panics if a clean configuration reports a violation, a mutated one
/// fails to, an exploration hits its state budget, or the primary clean
/// space shrinks below the 10⁴-state acceptance bar — each of those is
/// a protocol (or checker) bug this experiment exists to surface.
pub fn run() -> Vec<TcpExploreRow> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing each row's deterministic search statistics into
/// `reg` under `tcp_explore.*`. (States-per-second and other wall-clock
/// figures deliberately never enter the registry.)
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<TcpExploreRow> {
    let mut rows = Vec::new();
    for (name, cfg, expect_violation) in sweep() {
        let outcome = TcpModel::new(cfg)
            .run_exhaustive()
            .unwrap_or_else(|e| panic!("{name}: exploration failed: {e}"));
        rows.push(row(name, "exhaustive", expect_violation, outcome));
    }

    // A long seeded random walk over the configuration too large to
    // exhaust here (duplex data under loss *and* duplication): same
    // determinism, different coverage profile.
    let walk_cfg = TcpModelConfig::deep().with_data_b(1);
    let outcome = TcpModel::new(walk_cfg).random_walk(WALK_SEED, WALK_STEPS);
    rows.push(row(
        format!("duplex + dup walk (seed {WALK_SEED})"),
        "walk",
        false,
        outcome,
    ));

    assert!(
        rows[0].states >= MIN_CLEAN_STATES,
        "the one-way space collapsed to {} states (bar: {MIN_CLEAN_STATES})",
        rows[0].states
    );
    for r in &rows {
        match (&r.violation, r.expect_violation) {
            (Some(v), false) => panic!("{}: unexpected violation: {v}", r.name),
            (None, true) => panic!("{}: injected bug was not caught", r.name),
            _ => {}
        }
        let base = format!("tcp_explore.{}", super::metric_slug(&r.name));
        reg.counter_set(&format!("{base}.states"), r.states);
        reg.counter_set(&format!("{base}.transitions"), r.transitions);
        reg.counter_set(&format!("{base}.frontier_peak"), r.frontier_peak);
        reg.counter_set(&format!("{base}.max_depth"), r.max_depth);
        reg.counter_set(
            &format!("{base}.violation"),
            u64::from(r.violation.is_some()),
        );
    }
    reg.counter_set("tcp_explore.configs", rows.len() as u64);
    reg.counter_set(
        "tcp_explore.mutations_caught",
        rows.iter().filter(|r| r.violation.is_some()).count() as u64,
    );
    rows
}

fn row(
    name: String,
    mode: &'static str,
    expect_violation: bool,
    outcome: enzian_sim::explore::SearchOutcome<enzian_net::tcp::TcpViolationKind>,
) -> TcpExploreRow {
    TcpExploreRow {
        name,
        mode,
        states: outcome.stats.states,
        transitions: outcome.stats.transitions,
        frontier_peak: outcome.stats.frontier_peak,
        max_depth: outcome.stats.max_depth,
        violation: outcome.violation.map(|c| c.violation.to_string()),
        expect_violation,
    }
}

/// Renders the sweep as a table.
pub fn render(rows: &[TcpExploreRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.mode.to_string(),
                r.states.to_string(),
                r.transitions.to_string(),
                r.max_depth.to_string(),
                r.violation.clone().unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    super::render_table(
        "TCP model check — bounded exploration of the connection FSM + mutation self-test",
        &[
            "configuration",
            "mode",
            "states",
            "transitions",
            "depth",
            "violation",
        ],
        &table_rows,
    )
}

/// Registry adapter: the TCP model checker through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "tcp_explore"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.mode.to_string(),
                    r.states.to_string(),
                    r.transitions.to_string(),
                    r.frontier_peak.to_string(),
                    r.max_depth.to_string(),
                    r.violation.clone().unwrap_or_default(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "tcp_explore",
                header: &[
                    "configuration",
                    "mode",
                    "states",
                    "transitions",
                    "frontier_peak",
                    "max_depth",
                    "violation",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<TcpExploreRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full sweep (duplex exhausts ~1.2M states) only runs in
    // release through `reproduce tcp_explore`; here we audit the axes
    // so a sizing regression fails fast without paying for the search.
    #[test]
    fn sweep_covers_clean_budgets_and_every_mutation() {
        let sweep = sweep();
        let clean: Vec<_> = sweep.iter().filter(|(_, _, v)| !v).collect();
        let mutated: Vec<_> = sweep.iter().filter(|(_, _, v)| *v).collect();
        assert_eq!(clean.len(), 3, "one-way, duplex, and duplication budgets");
        assert_eq!(mutated.len(), ALL_TCP_MUTATIONS.len());
        for m in ALL_TCP_MUTATIONS {
            assert!(
                mutated
                    .iter()
                    .any(|(n, _, _)| n.contains(&format!("{m:?}"))),
                "mutation battery missing {m:?}"
            );
        }
    }

    // The cheapest full row end-to-end: the one-way configuration must
    // clear the acceptance bar clean, deterministically.
    #[test]
    fn one_way_row_clears_the_acceptance_bar() {
        let (name, cfg, _) = sweep().remove(0);
        let a = TcpModel::new(cfg)
            .run_exhaustive()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(a.violation.is_none(), "{name} must be clean");
        assert!(a.stats.states >= MIN_CLEAN_STATES);
        let b = TcpModel::new(cfg).run_exhaustive().unwrap();
        assert_eq!(a.stats, b.stats, "exploration must be deterministic");
    }
}
