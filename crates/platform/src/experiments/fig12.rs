//! Figure 12: power measurements of primary components during a boot,
//! diagnostic, and stress test.
//!
//! The BMC's telemetry service samples the CPU, FPGA, and CPU-side DRAM
//! rail power every 20 ms while the machine walks the §5.5 script: boot,
//! BDK DRAM check, bus tests, memtests, CPU off, then the 24-step FPGA
//! power burn. This driver replays the schedule against the electrical
//! models and returns the four time series of the figure.

use enzian_bmc::pmbus::PmbusNetwork;
use enzian_bmc::power::{BoardActivity, PowerModel};
use enzian_bmc::rail::RailId;
use enzian_bmc::telemetry::{TelemetryService, TraceId};
use enzian_sim::stats::TimeSeries;
use enzian_sim::{Duration, MetricsRegistry, Time, TraceEvent};

use enzian_apps::stress::{StressPhase, StressSchedule};

/// The experiment's output: the four power traces plus the schedule that
/// produced them.
#[derive(Debug)]
pub struct Fig12Result {
    /// Per-trace sampled power.
    pub traces: std::collections::BTreeMap<TraceId, TimeSeries>,
    /// The replayed schedule.
    pub schedule: StressSchedule,
}

fn cpu_activity(phase: StressPhase) -> BoardActivity {
    match phase {
        StressPhase::IdleBefore => BoardActivity::PoweredIdle,
        StressPhase::CpuBoot => BoardActivity::CpuBdkBoot,
        StressPhase::DramCheck => BoardActivity::DramCheck,
        StressPhase::DataBusTest => BoardActivity::DataBusTest,
        StressPhase::AddressBusTest => BoardActivity::AddressBusTest,
        StressPhase::MemtestMarching => BoardActivity::MemtestMarching,
        StressPhase::MemtestRandom => BoardActivity::MemtestRandom,
        StressPhase::CpuOff | StressPhase::FpgaBurn { .. } | StressPhase::IdleAfter => {
            BoardActivity::CpuOff
        }
    }
}

fn fpga_activity(phase: StressPhase) -> BoardActivity {
    match phase {
        StressPhase::FpgaBurn { fraction } => BoardActivity::FpgaBurn { fraction },
        StressPhase::IdleAfter => BoardActivity::FpgaIdle,
        _ => BoardActivity::FpgaIdle,
    }
}

/// Replays the paper timeline and samples power at 20 ms.
pub fn run() -> Fig12Result {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-trace peak power / energy / sample counts and
/// one trace event per schedule phase into `reg` under `fig12.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Fig12Result {
    let mut net = PmbusNetwork::board();
    // Power every rail up front (the schedule starts after
    // common_power_up; the CPU-off phases are modelled as zero load, as
    // the BMC's cpu_power_down drops the load to nil).
    let rails: Vec<RailId> = net.rails().collect();
    let mut t = Time::ZERO;
    for rail in rails {
        t = net.enable(t, rail).expect("power up");
    }
    let settled = t + Duration::from_ms(10);

    let model = PowerModel::new(&net);
    let schedule = StressSchedule::paper_timeline();
    let mut telemetry = TelemetryService::new();

    for window in schedule.phases() {
        model.apply_cpu_activity(cpu_activity(window.phase));
        model.apply_fpga_activity(fpga_activity(window.phase));
        let from = settled + window.from.since(Time::ZERO);
        let until = settled + window.until.since(Time::ZERO);
        reg.trace_event(
            TraceEvent::new(from, "fig12", "phase")
                .field("phase", format!("{:?}", window.phase))
                .field("duration", until.since(from)),
        );
        telemetry.run(from, until, |at, id| match id {
            TraceId::Fpga => model.fpga_watts(at),
            TraceId::Cpu => model.cpu_watts(at),
            TraceId::Dram0 => model.dram0_watts(at),
            TraceId::Dram1 => model.dram1_watts(at),
        });
    }

    let result = Fig12Result {
        traces: telemetry.into_series(),
        schedule,
    };
    let mut samples = 0u64;
    let mut sim_end = Time::ZERO;
    for (id, series) in &result.traces {
        let slug = super::metric_slug(id.label());
        let peak = series
            .points()
            .iter()
            .map(|&(_, w)| w)
            .fold(0.0f64, f64::max);
        reg.gauge_set(&format!("fig12.{slug}.peak_w"), peak);
        reg.gauge_set(&format!("fig12.{slug}.energy_j"), series.integral());
        reg.counter_set(&format!("fig12.{slug}.samples"), series.len() as u64);
        samples += series.len() as u64;
        if let Some(&(t, _)) = series.points().last() {
            sim_end = sim_end.max(t);
        }
    }
    reg.counter_set("fig12.sim_time_ps", sim_end.as_ps());
    reg.counter_set("fig12.events_executed", samples);
    result
}

/// Renders a per-phase power summary (mean watts per trace).
pub fn render(result: &Fig12Result) -> String {
    let mut rows = Vec::new();
    let offset = {
        // Recover the settle offset from the first sample.
        result.traces[&TraceId::Cpu]
            .points()
            .first()
            .map(|&(t, _)| t)
            .unwrap_or(Time::ZERO)
    };
    for window in result.schedule.phases() {
        let from = offset + window.from.since(Time::ZERO);
        let until = offset + window.until.since(Time::ZERO);
        let mean = |id: TraceId| {
            result.traces[&id]
                .mean_in(from, until)
                .map(|w| format!("{w:.1}"))
                .unwrap_or_default()
        };
        let phase_label = match window.phase {
            enzian_apps::stress::StressPhase::FpgaBurn { fraction } => {
                format!("FpgaBurn {:>3.0}%", fraction * 100.0)
            }
            other => format!("{other:?}"),
        };
        rows.push(vec![
            phase_label,
            format!("{:.0}", window.from.as_secs_f64()),
            mean(TraceId::Fpga),
            mean(TraceId::Cpu),
            mean(TraceId::Dram0),
            mean(TraceId::Dram1),
        ]);
    }
    super::render_table(
        "Fig. 12 — Mean power per phase [W] (sampled every 20 ms)",
        &["phase", "t[s]", "FPGA", "CPU", "DRAM0", "DRAM1"],
        &rows,
    )
}

/// Registry adapter: figure 12 through the [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let result = run_instrumented(ctx.reg);
        let mut csv = Vec::new();
        let n = result.traces[&TraceId::Cpu].len();
        for i in 0..n {
            let t = result.traces[&TraceId::Cpu].points()[i].0;
            let mut row = vec![format!("{}", t.as_secs_f64())];
            for id in TraceId::ALL {
                row.push(result.traces[&id].points()[i].1.to_string());
            }
            csv.push(row);
        }
        super::ExperimentRows::new(
            result,
            vec![super::Table {
                name: "fig12",
                header: &["t_s", "fpga_w", "cpu_w", "dram0_w", "dram1_w"],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Fig12Result>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure12_shape_holds() {
        let result = run();
        // ~228 s at 20 ms: >11k samples per trace.
        for id in TraceId::ALL {
            assert!(
                result.traces[&id].len() > 10_000,
                "{} has too few samples",
                id.label()
            );
        }

        let offset = result.traces[&TraceId::Cpu].points()[0].0;
        let window = |phase_idx: usize| {
            let w = &result.schedule.phases()[phase_idx];
            (
                offset + w.from.since(Time::ZERO),
                offset + w.until.since(Time::ZERO),
            )
        };
        let mean = |id: TraceId, idx: usize| {
            let (f, u) = window(idx);
            result.traces[&id].mean_in(f, u).expect("samples in window")
        };

        // Phase order: 0 idle, 1 boot, 2 dramcheck, 3 databus,
        // 4 addrbus, 5 marching, 6 random, 7 cpu-off, 8.. burn steps.
        // CPU power spikes at boot relative to idle-before.
        assert!(mean(TraceId::Cpu, 1) > 4.0 * mean(TraceId::Cpu, 0).max(4.0));
        // DRAM power climbs through the memtest sequence.
        assert!(mean(TraceId::Dram0, 6) > mean(TraceId::Dram0, 5));
        assert!(mean(TraceId::Dram0, 5) > mean(TraceId::Dram0, 2));
        // DRAM0 and DRAM1 track each other (same activity).
        let d0 = mean(TraceId::Dram0, 6);
        let d1 = mean(TraceId::Dram1, 6);
        assert!((d0 - d1).abs() / d0 < 0.05);
        // CPU off kills CPU and DRAM draw.
        assert!(mean(TraceId::Cpu, 7) < 1.0);
        assert!(mean(TraceId::Dram0, 7) < 1.0);

        // The FPGA burn ramps toward ~175-200 W in 24 steps.
        let burn_first = mean(TraceId::Fpga, 8);
        let burn_last = mean(TraceId::Fpga, 8 + 23);
        assert!(
            burn_last > 150.0 && burn_last < 210.0,
            "peak {burn_last:.0} W"
        );
        assert!(burn_first < 50.0, "first step {burn_first:.0} W");
        // Monotone ramp.
        let mut prev = 0.0;
        for i in 8..(8 + 24) {
            let m = mean(TraceId::Fpga, i);
            assert!(m >= prev, "burn step {i} regressed: {m:.1} < {prev:.1}");
            prev = m;
        }
    }

    #[test]
    fn energy_accounting_is_sane() {
        let result = run();
        // Total FPGA energy over the run: bounded by peak x duration.
        let joules = result.traces[&TraceId::Fpga].integral();
        let secs = result.schedule.total().as_secs_f64();
        assert!(joules > 0.0 && joules < 210.0 * secs);
    }

    #[test]
    fn render_lists_every_phase() {
        let result = run();
        let s = render(&result);
        assert!(s.contains("MemtestRandom"));
        assert!(s.contains("FpgaBurn"));
    }
}
