//! Model-checking sweep: exhaustive exploration of the ECI protocol.
//!
//! The paper validates its protocol implementation with *"assertion
//! checkers generated from the specification"* (§4.6); this experiment
//! runs the complementary static check: `enzian-eci`'s state-space
//! explorer enumerates **every** interleaving of small configurations
//! and proves the SWMR and data-value invariants hold, no state gets
//! stuck, and no credit deadlock exists. A mutation battery then
//! re-runs the smallest configuration with four known protocol bugs
//! injected and demands each one is caught with a decoded
//! counterexample — the self-test that keeps the checker honest.
//!
//! Every row is fully deterministic (canonicalized BFS, seeded walk),
//! so two runs render byte-identical `BENCH_modelcheck.json` files —
//! which CI asserts with a byte compare.

use enzian_eci::{ExploreConfig, Explorer, ALL_MUTATIONS};
use enzian_sim::MetricsRegistry;

/// Seed for the random-walk row (any value works; fixed for CI).
const WALK_SEED: u64 = 7;
/// Steps of the random-walk row.
const WALK_STEPS: u64 = 4_000;

/// One configuration's exploration result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCheckRow {
    /// Human-facing configuration label.
    pub name: String,
    /// `"exhaustive"` or `"walk"`.
    pub mode: &'static str,
    /// Distinct canonical states visited.
    pub states: u64,
    /// Transitions taken.
    pub transitions: u64,
    /// BFS frontier high-water mark (or walk depth).
    pub frontier_peak: u64,
    /// Depth of the deepest state reached.
    pub max_depth: u64,
    /// The invariant that broke, if any (mutation rows only).
    pub violation: Option<String>,
    /// Whether this row injected a bug and so *must* report one.
    pub expect_violation: bool,
}

/// The sweep: clean configurations that must explore violation-free,
/// then the mutation battery that must trip.
fn sweep() -> Vec<(String, ExploreConfig, bool)> {
    let mut configs = vec![
        (
            "2 agents, 1 line".to_string(),
            ExploreConfig::two_agent(),
            false,
        ),
        (
            "2 agents, 1 line, no E grant".to_string(),
            ExploreConfig::two_agent().with_e_grant(false),
            false,
        ),
        (
            "3 agents, 1 line".to_string(),
            ExploreConfig::three_agent(),
            false,
        ),
        (
            "2 agents, 2 lines, 1 write".to_string(),
            ExploreConfig::two_agent().with_lines(2).with_max_writes(1),
            false,
        ),
    ];
    for m in ALL_MUTATIONS {
        configs.push((
            format!("2 agents, 1 line + {m:?}"),
            ExploreConfig::two_agent().with_mutation(Some(m)),
            true,
        ));
    }
    configs
}

/// Runs the whole sweep.
///
/// # Panics
///
/// Panics if a clean configuration reports a violation, a mutated one
/// fails to, or an exploration hits its state budget — each of those is
/// a protocol (or checker) bug this experiment exists to surface.
pub fn run() -> Vec<ModelCheckRow> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing each row's deterministic search statistics into
/// `reg` under `modelcheck.*`. (States-per-second and other wall-clock
/// figures deliberately never enter the registry.)
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<ModelCheckRow> {
    let mut rows = Vec::new();
    for (name, cfg, expect_violation) in sweep() {
        let outcome = Explorer::new(cfg)
            .run_exhaustive()
            .unwrap_or_else(|e| panic!("{name}: exploration failed: {e}"));
        rows.push(row(name, "exhaustive", expect_violation, outcome));
    }

    // A long seeded random walk over a configuration too large to
    // exhaust: same determinism, different coverage profile.
    let walk_cfg = ExploreConfig::three_agent().with_lines(2);
    let outcome = Explorer::new(walk_cfg).random_walk(WALK_SEED, WALK_STEPS);
    rows.push(row(
        format!("3 agents, 2 lines walk (seed {WALK_SEED})"),
        "walk",
        false,
        outcome,
    ));

    for r in &rows {
        match (&r.violation, r.expect_violation) {
            (Some(v), false) => panic!("{}: unexpected violation: {v}", r.name),
            (None, true) => panic!("{}: injected bug was not caught", r.name),
            _ => {}
        }
        let base = format!("modelcheck.{}", super::metric_slug(&r.name));
        reg.counter_set(&format!("{base}.states"), r.states);
        reg.counter_set(&format!("{base}.transitions"), r.transitions);
        reg.counter_set(&format!("{base}.frontier_peak"), r.frontier_peak);
        reg.counter_set(&format!("{base}.max_depth"), r.max_depth);
        reg.counter_set(
            &format!("{base}.violation"),
            u64::from(r.violation.is_some()),
        );
    }
    reg.counter_set("modelcheck.configs", rows.len() as u64);
    reg.counter_set(
        "modelcheck.mutations_caught",
        rows.iter().filter(|r| r.violation.is_some()).count() as u64,
    );
    rows
}

fn row(
    name: String,
    mode: &'static str,
    expect_violation: bool,
    outcome: enzian_eci::ExploreOutcome,
) -> ModelCheckRow {
    ModelCheckRow {
        name,
        mode,
        states: outcome.stats.states,
        transitions: outcome.stats.transitions,
        frontier_peak: outcome.stats.frontier_peak,
        max_depth: outcome.stats.max_depth,
        violation: outcome.violation.map(|v| v.kind.to_string()),
        expect_violation,
    }
}

/// Renders the sweep as a table.
pub fn render(rows: &[ModelCheckRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.mode.to_string(),
                r.states.to_string(),
                r.transitions.to_string(),
                r.max_depth.to_string(),
                r.violation.clone().unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    super::render_table(
        "Model check — exhaustive ECI protocol exploration + mutation self-test (§4.6)",
        &[
            "configuration",
            "mode",
            "states",
            "transitions",
            "depth",
            "violation",
        ],
        &table_rows,
    )
}

/// Registry adapter: the model checker through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "modelcheck"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.mode.to_string(),
                    r.states.to_string(),
                    r.transitions.to_string(),
                    r.frontier_peak.to_string(),
                    r.max_depth.to_string(),
                    r.violation.clone().unwrap_or_default(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "modelcheck",
                header: &[
                    "configuration",
                    "mode",
                    "states",
                    "transitions",
                    "frontier_peak",
                    "max_depth",
                    "violation",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<ModelCheckRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_explores_clean_and_catches_every_mutation() {
        let rows = run();
        // 4 clean exhaustive + 4 mutations + 1 walk.
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert_eq!(r.violation.is_some(), r.expect_violation, "{}", r.name);
            assert!(r.states > 0 && r.transitions > 0, "{}", r.name);
        }
        // The exhaustive spaces have known sizes; pin the smallest so a
        // silently shrunken search can't masquerade as a clean one.
        assert!(rows[0].states > 500, "2-agent space collapsed");
        let caught: Vec<_> = rows.iter().filter_map(|r| r.violation.as_deref()).collect();
        assert!(caught.contains(&"SWMR invariant"));
        assert!(caught.contains(&"data-value invariant"));
        assert!(caught.contains(&"deadlock"));
    }

    #[test]
    fn sweep_is_deterministic() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        assert_eq!(run_instrumented(&mut a), run_instrumented(&mut b));
        assert_eq!(a.export_text(), b.export_text());
        assert_eq!(a.export_json(), b.export_json());
    }

    #[test]
    fn render_lists_every_configuration() {
        let rows = run();
        let s = render(&rows);
        for r in &rows {
            assert!(s.contains(&r.name), "{} missing from table", r.name);
        }
    }
}
