//! Scheduler hot-path microbenchmark.
//!
//! Not a paper figure — this is the DES-core companion to the evaluation:
//! a self-perpetuating event storm (every fired event schedules the next
//! one for its actor) pushed through four configurations of the kernel:
//!
//! * `reference` — the retained `BTreeMap`/`BinaryHeap` core
//!   ([`enzian_sim::reference`]), boxed-closure events,
//! * `closure` — the calendar-queue core, boxed-closure events,
//! * `pod` — the calendar-queue core, POD events (fn pointer + 4×u64
//!   payload, slab-recycled: the steady-state hot path allocates
//!   nothing),
//! * `parallel` — the same storm sharded over the conservative PDES
//!   engine.
//!
//! The three sequential legs fire the identical storm, and the run
//! asserts their fire-order digests match — the calendar queue and the
//! POD path are drop-in replacements, event for event. Events, digests,
//! and allocation deltas are pure functions of the seed and land in
//! `BENCH_sched_hotpath.json`; events-per-second throughput is
//! wall-clock and is exported only under the `sched_hotpath.timing.*`
//! prefix, which the perf gate's determinism comparison ignores (see
//! `docs/BENCH_SCHEMA.md`).

use enzian_sim::alloc_count;
use enzian_sim::{
    reference, run_conservative, Duration, Envelope, EpochWindow, MetricsRegistry, ParConfig, Pod,
    Shard, Simulator, Time, TraceEvent,
};

/// Actors in the storm; each runs an independent event chain.
pub const ACTORS: usize = 192;

/// Events each actor fires before going quiet.
pub const EVENTS_PER_ACTOR: u32 = 600;

/// Shards the parallel leg splits the actors across.
pub const SHARDS: usize = 8;

/// Seed for the initial actor states.
pub const SEED: u64 = 0x5eed_5c4e_d001;

/// SplitMix64 step: the storm's per-actor state transition.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One FNV-1a fold of a u64 into a running digest.
fn fnv(digest: u64, v: u64) -> u64 {
    let mut d = digest;
    for byte in v.to_le_bytes() {
        d = (d ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    d
}

/// The storm model: per-actor chained events over a shared digest.
///
/// Event handlers only touch indexed `Vec`s — no hashing, no interior
/// allocation — so the allocation counters the legs report are pure
/// functions of the seed.
pub struct Storm {
    /// Per-actor PRNG state; mixed on every firing.
    states: Vec<u64>,
    /// Events each actor has left to fire.
    remaining: Vec<u32>,
    /// FNV-1a digest over every `(time, actor, state)` firing, in fire
    /// order.
    digest: u64,
    /// Total events fired.
    fired: u64,
}

impl Storm {
    /// A storm over actor indices `[first, first + actors)` of the
    /// global actor space (the parallel leg gives each shard a slice;
    /// the sequential legs take the whole range).
    pub fn new(first: usize, actors: usize) -> Self {
        Storm {
            states: (0..actors)
                .map(|i| splitmix(SEED ^ (first + i) as u64))
                .collect(),
            remaining: vec![EVENTS_PER_ACTOR; actors],
            digest: 0xcbf2_9ce4_8422_2325,
            fired: 0,
        }
    }

    /// Fires `actor` (local index) at `now`: mixes its state into the
    /// digest and returns the delay until its next event, or `None`
    /// when the chain is exhausted.
    ///
    /// The delay is a small multiple of a nanosecond derived from the
    /// new state, so distinct actors frequently collide on the same
    /// timestamp — the storm leans on the kernel's FIFO tie order.
    pub fn fire(&mut self, now: Time, actor: usize) -> Option<Duration> {
        let s = splitmix(self.states[actor] ^ now.as_ps());
        self.states[actor] = s;
        self.digest = fnv(fnv(fnv(self.digest, now.as_ps()), actor as u64), s);
        self.fired += 1;
        self.remaining[actor] -= 1;
        (self.remaining[actor] > 0).then(|| Duration::from_ns(1 + s % 7))
    }

    /// The fire-order digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Total events fired.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

/// Drives the storm on the retained reference core (boxed closures).
pub fn run_reference_core() -> (u64, u64, Time) {
    fn chain(sim: &mut reference::Simulator<Storm>, at: Time, actor: usize) {
        let _ = sim.schedule_at_or_now(at, move |m: &mut Storm, s| {
            if let Some(d) = m.fire(s.now(), actor) {
                let at = s.now() + d;
                let _ = s.schedule_at(at, move |m: &mut Storm, s| chain_sched(m, s, actor));
            }
        });
    }
    fn chain_sched(m: &mut Storm, s: &mut reference::Scheduler<Storm>, actor: usize) {
        if let Some(d) = m.fire(s.now(), actor) {
            let at = s.now() + d;
            let _ = s.schedule_at(at, move |m: &mut Storm, s| chain_sched(m, s, actor));
        }
    }
    let mut sim = reference::Simulator::new(Storm::new(0, ACTORS));
    for actor in 0..ACTORS {
        chain(&mut sim, Time::ZERO, actor);
    }
    sim.run();
    let end = sim.now();
    let m = sim.into_model();
    (m.fired(), m.digest(), end)
}

/// Drives the storm on the calendar-queue core with boxed closures.
pub fn run_closure_core() -> (u64, u64, Time) {
    fn chain_sched(m: &mut Storm, s: &mut enzian_sim::Scheduler<Storm>, actor: usize) {
        if let Some(d) = m.fire(s.now(), actor) {
            let at = s.now() + d;
            let _ = s.schedule_at(at, move |m: &mut Storm, s| chain_sched(m, s, actor));
        }
    }
    let mut sim = Simulator::new(Storm::new(0, ACTORS));
    for actor in 0..ACTORS {
        let _ =
            sim.schedule_at_or_now(Time::ZERO, move |m: &mut Storm, s| chain_sched(m, s, actor));
    }
    sim.run();
    let end = sim.now();
    let m = sim.into_model();
    (m.fired(), m.digest(), end)
}

/// The POD event handler: fires the actor in `pod.a` and reschedules
/// itself. Non-capturing, so steady-state scheduling is allocation-free.
fn pod_chain(m: &mut Storm, s: &mut enzian_sim::Scheduler<Storm>, pod: Pod) {
    if let Some(d) = m.fire(s.now(), pod.a as usize) {
        let _ = s.schedule_pod_in(d, pod_chain, pod);
    }
}

/// Drives the storm on the calendar-queue core with POD events.
pub fn run_pod_core() -> (u64, u64, Time) {
    let mut sim = Simulator::new(Storm::new(0, ACTORS));
    for actor in 0..ACTORS {
        let _ = sim.schedule_pod_at_or_now(Time::ZERO, pod_chain, Pod::new(actor as u64, 0, 0, 0));
    }
    sim.run();
    let end = sim.now();
    let m = sim.into_model();
    (m.fired(), m.digest(), end)
}

/// One PDES shard of the parallel leg: a slice of the actors on its own
/// calendar-queue simulator, advanced window by window. The storm is
/// embarrassingly parallel (no cross-shard messages), which makes this
/// leg a pure measurement of the epoch machinery plus per-shard kernel
/// throughput; adaptive lookahead skips the quiet tail epochs.
struct StormShard {
    sim: Simulator<Storm>,
}

impl Shard for StormShard {
    type Msg = ();

    fn step(
        &mut self,
        window: EpochWindow,
        arrivals: Vec<Envelope<()>>,
        _out: &mut Vec<(usize, Envelope<()>)>,
    ) {
        debug_assert!(arrivals.is_empty());
        let _ = self.sim.run_before(window.end);
    }

    fn idle(&self) -> bool {
        self.sim.pending() == 0
    }

    fn next_activity(&self) -> Option<Time> {
        // `peek_next_time` needs `&mut self` (it may compact the
        // queue); the live lower bound is the simulator's clock, which
        // is exact right after `run_before` drained everything before
        // the window end.
        (self.sim.pending() > 0).then(|| self.sim.now())
    }
}

/// Drives the storm sharded across the conservative engine. Returns
/// `(events, digest, epochs, epochs_skipped, sim_end)`.
pub fn run_parallel(threads: usize) -> (u64, u64, u64, u64, Time) {
    let per = ACTORS / SHARDS;
    let mut shards: Vec<StormShard> = (0..SHARDS)
        .map(|i| {
            let mut sim = Simulator::new(Storm::new(i * per, per));
            for actor in 0..per {
                let _ = sim.schedule_pod_at_or_now(
                    Time::ZERO,
                    pod_chain,
                    Pod::new(actor as u64, 0, 0, 0),
                );
            }
            StormShard { sim }
        })
        .collect();
    let report = run_conservative(
        &mut shards,
        &ParConfig::new(Duration::from_ns(64)).with_threads(threads),
    );
    let mut events = 0;
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut end = Time::ZERO;
    for sh in &shards {
        let m = sh.sim.model();
        events += m.fired();
        digest = fnv(digest, m.digest());
        end = end.max(sh.sim.now());
    }
    (events, digest, report.epochs, report.epochs_skipped, end)
}

/// One leg of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedHotpathRow {
    /// Leg name: `reference`, `closure`, `pod`, or `parallel`.
    pub leg: &'static str,
    /// Events the kernel dispatched.
    pub events: u64,
    /// FNV-1a fire-order digest.
    pub digest: u64,
    /// Heap allocations during the leg (0 unless the counting allocator
    /// is installed, as in the `reproduce` binary).
    pub allocs: u64,
    /// Wall-clock seconds the leg took. Non-deterministic; exported
    /// only under `sched_hotpath.timing.*`.
    pub wall_s: f64,
}

impl SchedHotpathRow {
    /// Events per second of wall clock, in millions.
    pub fn mevents_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s / 1e6
    }
}

/// Runs all four legs and returns one row per leg.
pub fn run(threads: usize) -> Vec<SchedHotpathRow> {
    run_instrumented(threads, &mut MetricsRegistry::new())
}

/// [`run`], publishing per-leg counters under `sched_hotpath.*`.
/// Everything except the `sched_hotpath.timing.*` gauges is a pure
/// function of the seed.
///
/// # Panics
///
/// Panics if the three sequential legs disagree on fire order — the
/// cross-core conformance check this experiment exists to enforce.
pub fn run_instrumented(threads: usize, reg: &mut MetricsRegistry) -> Vec<SchedHotpathRow> {
    let mut rows = Vec::new();
    let mut leg = |name: &'static str, f: &dyn Fn() -> (u64, u64, Time)| {
        let before = alloc_count::snapshot();
        let started = std::time::Instant::now();
        let (events, digest, end) = f();
        let wall = started.elapsed().as_secs_f64();
        let allocs = alloc_count::snapshot().since(&before).allocations;
        rows.push(SchedHotpathRow {
            leg: name,
            events,
            digest,
            allocs,
            wall_s: wall,
        });
        end
    };
    let end_ref = leg("reference", &run_reference_core);
    let end_new = leg("closure", &run_closure_core);
    let end_pod = leg("pod", &run_pod_core);
    assert_eq!(rows[0].digest, rows[1].digest, "calendar queue diverged");
    assert_eq!(rows[1].digest, rows[2].digest, "POD path diverged");
    assert_eq!(end_ref, end_new);
    assert_eq!(end_new, end_pod);

    let started = std::time::Instant::now();
    let (events, digest, epochs, skipped, end_par) = run_parallel(threads);
    let wall = started.elapsed().as_secs_f64();
    rows.push(SchedHotpathRow {
        leg: "parallel",
        events,
        digest,
        allocs: 0,
        wall_s: wall,
    });
    reg.counter_set("sched_hotpath.parallel.epochs", epochs);
    reg.counter_set("sched_hotpath.parallel.epochs_skipped", skipped);

    for r in &rows {
        let base = format!("sched_hotpath.{}", r.leg);
        reg.counter_set(&format!("{base}.events"), r.events);
        reg.counter_set(&format!("{base}.digest"), r.digest);
        if r.leg != "parallel" {
            reg.counter_set(&format!("{base}.allocs"), r.allocs);
        }
        reg.gauge_set(
            &format!("sched_hotpath.timing.{}_mevents_per_sec", r.leg),
            r.mevents_per_sec(),
        );
    }
    reg.trace_event(
        TraceEvent::new(end_pod, "sched_hotpath", "storm-drained")
            .field("events", rows[2].events)
            .field("digest", rows[2].digest),
    );
    reg.counter_set("sched_hotpath.sim_time_ps", end_pod.max(end_par).as_ps());
    reg.counter_set(
        "sched_hotpath.events_executed",
        rows.iter().map(|r| r.events).sum(),
    );
    rows
}

/// Renders the sweep as a table (throughput column is wall-clock).
pub fn render(rows: &[SchedHotpathRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.leg.to_string(),
                r.events.to_string(),
                format!("{:.2}", r.mevents_per_sec()),
                r.allocs.to_string(),
                format!("{:016x}", r.digest),
            ]
        })
        .collect();
    super::render_table(
        "Scheduler hot path — event storm throughput by kernel configuration",
        &["leg", "events", "Mev/s", "allocs", "digest"],
        &table_rows,
    )
}

/// Registry adapter: the scheduler hot path through the
/// [`Experiment`](super::Experiment) trait. No speedup check: the BENCH
/// JSON deliberately carries wall-clock `timing.*` gauges, so a re-run
/// is never byte-identical.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "sched_hotpath"
    }

    fn needs_threads(&self) -> bool {
        true
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.threads, ctx.reg);
        let reference = rows
            .iter()
            .find(|r| r.leg == "reference")
            .expect("reference leg missing");
        for r in &rows {
            if r.leg != "reference" {
                eprintln!(
                    "sched_hotpath: {} {:.2} Mev/s vs reference {:.2} Mev/s ({:.2}x)",
                    r.leg,
                    r.mevents_per_sec(),
                    reference.mevents_per_sec(),
                    r.mevents_per_sec() / reference.mevents_per_sec()
                );
            }
        }
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.leg.to_string(),
                    r.events.to_string(),
                    r.digest.to_string(),
                    r.allocs.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "sched_hotpath",
                header: &["leg", "events", "digest", "allocs"],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<SchedHotpathRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_cores_agree_event_for_event() {
        let (er, dr, tr) = run_reference_core();
        let (ec, dc, tc) = run_closure_core();
        let (ep, dp, tp) = run_pod_core();
        assert_eq!(er, (ACTORS as u64) * u64::from(EVENTS_PER_ACTOR));
        assert_eq!((er, dr, tr), (ec, dc, tc));
        assert_eq!((ec, dc, tc), (ep, dp, tp));
    }

    #[test]
    fn parallel_leg_is_thread_invariant_and_complete() {
        let (e1, d1, ep1, sk1, t1) = run_parallel(1);
        let (e2, d2, ep2, sk2, t2) = run_parallel(2);
        assert_eq!((e1, d1, ep1, sk1, t1), (e2, d2, ep2, sk2, t2));
        assert_eq!(e1, (ACTORS as u64) * u64::from(EVENTS_PER_ACTOR));
        assert!(ep1 > 0);
    }

    #[test]
    fn instrumented_run_feeds_the_bench_contract() {
        let mut reg = MetricsRegistry::new();
        let rows = run_instrumented(2, &mut reg);
        assert_eq!(rows.len(), 4);
        assert!(reg.counter("sched_hotpath.sim_time_ps") > 0);
        assert_eq!(
            reg.counter("sched_hotpath.events_executed"),
            rows.iter().map(|r| r.events).sum::<u64>()
        );
        assert_eq!(
            reg.counter("sched_hotpath.reference.digest"),
            reg.counter("sched_hotpath.pod.digest"),
        );
        let s = render(&rows);
        assert!(s.contains("pod"));
    }
}
