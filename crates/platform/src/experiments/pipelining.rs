//! Pipelining sweep: ECI read goodput vs outstanding-transaction count.
//!
//! Tracks the paper's Fig. 6 (ECI link bandwidth): the paper's FPGA keeps
//! many coherent line reads in flight to approach link line rate, while a
//! strictly serial requester is latency-bound far below it. This sweep
//! drives the event-driven transaction engine's async issue/poll API with
//! the MSHR transaction table as the outstanding-transaction knob: one
//! entry reproduces the serial facade's latency chain; deeper tables let
//! reads overlap until the link's response-data credits become the
//! bottleneck. The sweep is fully deterministic (no randomness anywhere
//! on this path), so two runs render byte-identical
//! `BENCH_pipelining.json` files — which CI asserts.

use enzian_eci::{EciSystem, EciSystemConfig, LinkPolicy};
use enzian_mem::Addr;
use enzian_sim::{Instrumented, MetricsRegistry, Time, TraceEvent};

/// One row of the sweep: an outstanding-transaction bound with the
/// goodput and latency observed under it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeliningRow {
    /// MSHR entries: the maximum concurrently outstanding transactions.
    pub outstanding: usize,
    /// Payload goodput over the run, GiB/s of simulated time.
    pub goodput_gib: f64,
    /// Mean per-read latency (issue to completion), nanoseconds.
    pub mean_latency_ns: f64,
    /// In-flight high-water mark the engine actually reached.
    pub max_inflight: u64,
}

/// Lines read per sweep point.
const LINES: u64 = 1024;

/// Swept outstanding-transaction bounds. The first point is the serial
/// reference (one MSHR entry: each read waits out its predecessor).
pub const OUTSTANDING: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Runs the sweep and returns one row per outstanding-transaction bound.
pub fn run() -> Vec<PipeliningRow> {
    run_instrumented(&mut MetricsRegistry::new())
}

/// [`run`], publishing per-point gauges and each system's component
/// counters into `reg` under `pipelining.*`.
pub fn run_instrumented(reg: &mut MetricsRegistry) -> Vec<PipeliningRow> {
    let mut rows = Vec::new();
    let mut sim_end = Time::ZERO;
    let mut events = 0u64;
    for &outstanding in OUTSTANDING.iter() {
        let mut sys = EciSystem::new(
            EciSystemConfig::enzian()
                .with_policy(LinkPolicy::Single(0))
                .with_mshr_entries(outstanding),
        );
        let handles: Vec<_> = (0..LINES)
            .map(|i| sys.issue_read(Time::ZERO, Addr(i * 128)))
            .collect();
        sys.run_to_idle();

        let mut last = Time::ZERO;
        let mut latency_ps_sum = 0u64;
        for h in handles {
            let c = sys.take_completion(h).expect("every read completes");
            last = last.max(c.completed);
            latency_ps_sum += c.completed.since(c.issued).as_ps();
        }
        assert!(
            sys.checker().violations().is_empty(),
            "{outstanding} outstanding violated the protocol: {:?}",
            sys.checker().violations()
        );

        let engine = *sys.engine_stats();
        let row = PipeliningRow {
            outstanding,
            goodput_gib: (LINES * 128) as f64
                / last.since(Time::ZERO).as_secs_f64()
                / (1u64 << 30) as f64,
            mean_latency_ns: latency_ps_sum as f64 / LINES as f64 / 1000.0,
            max_inflight: engine.max_inflight,
        };

        let base = format!("pipelining.outstanding{outstanding:03}");
        reg.gauge_set(&format!("{base}.goodput_gib"), row.goodput_gib);
        reg.gauge_set(&format!("{base}.mean_latency_ns"), row.mean_latency_ns);
        reg.counter_set(&format!("{base}.max_inflight"), row.max_inflight);
        let mut tmp = MetricsRegistry::new();
        sys.export_metrics(&base, &mut tmp);
        reg.merge(&tmp);
        reg.trace_event(
            TraceEvent::new(last, "pipelining", "point-done")
                .field("outstanding", outstanding as u64)
                .field("goodput_gib", row.goodput_gib),
        );

        sim_end = sim_end.max(last);
        events += sys.links().messages_sent();
        rows.push(row);
    }
    reg.counter_set("pipelining.sim_time_ps", sim_end.as_ps());
    reg.counter_set("pipelining.events_executed", events);
    rows
}

/// Renders the sweep as a table.
pub fn render(rows: &[PipeliningRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.outstanding.to_string(),
                format!("{:.2}", r.goodput_gib),
                format!("{:.0}", r.mean_latency_ns),
                r.max_inflight.to_string(),
            ]
        })
        .collect();
    super::render_table(
        "Pipelining — single-link read goodput vs outstanding transactions (tracks Fig. 6)",
        &["outstanding", "goodput[GiB/s]", "latency[ns]", "in-flight"],
        &table_rows,
    )
}

/// Registry adapter: the pipelining sweep through the
/// [`Experiment`](super::Experiment) trait.
pub struct Driver;

impl super::Experiment for Driver {
    fn name(&self) -> &'static str {
        "pipelining"
    }

    fn run(&self, ctx: &mut super::ExperimentCtx<'_>) -> super::ExperimentRows {
        let rows = run_instrumented(ctx.reg);
        let csv = rows
            .iter()
            .map(|r| {
                vec![
                    r.outstanding.to_string(),
                    r.goodput_gib.to_string(),
                    r.mean_latency_ns.to_string(),
                    r.max_inflight.to_string(),
                ]
            })
            .collect();
        super::ExperimentRows::new(
            rows,
            vec![super::Table {
                name: "pipelining",
                header: &[
                    "outstanding",
                    "goodput_gib",
                    "mean_latency_ns",
                    "max_inflight",
                ],
                rows: csv,
            }],
        )
    }

    fn render(&self, rows: &super::ExperimentRows) -> String {
        render(rows.downcast::<Vec<PipeliningRow>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), OUTSTANDING.len());

        let serial = &rows[0];
        assert_eq!(serial.outstanding, 1);
        assert_eq!(serial.max_inflight, 1, "serial point must not overlap");

        // The acceptance bar: 8 outstanding strictly beats serial.
        let eight = rows.iter().find(|r| r.outstanding == 8).unwrap();
        assert!(
            eight.goodput_gib > serial.goodput_gib,
            "8 outstanding ({:.2} GiB/s) must beat serial ({:.2} GiB/s)",
            eight.goodput_gib,
            serial.goodput_gib
        );
        // Goodput is monotonically non-decreasing in the bound until the
        // link credits saturate it, and the bound is respected everywhere.
        for pair in rows.windows(2) {
            assert!(
                pair[1].goodput_gib >= pair[0].goodput_gib * 0.99,
                "goodput regressed between {} and {} outstanding",
                pair[0].outstanding,
                pair[1].outstanding
            );
        }
        for r in &rows {
            assert!(r.max_inflight <= r.outstanding as u64);
            assert!(r.mean_latency_ns > 0.0);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        assert_eq!(run_instrumented(&mut a), run_instrumented(&mut b));
        assert_eq!(a.export_text(), b.export_text());
        assert_eq!(a.export_json(), b.export_json());
    }

    #[test]
    fn instrumented_run_feeds_the_bench_contract() {
        let mut reg = MetricsRegistry::new();
        let rows = run_instrumented(&mut reg);
        assert!(reg.counter("pipelining.sim_time_ps") > 0);
        assert!(reg.counter("pipelining.events_executed") > 0);
        for r in &rows {
            let base = format!("pipelining.outstanding{:03}", r.outstanding);
            assert_eq!(reg.counter(&format!("{base}.max_inflight")), r.max_inflight);
        }
        let s = render(&rows);
        assert!(s.contains("goodput"));
    }
}
