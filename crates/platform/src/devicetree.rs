//! Device-tree generation (§4.4).
//!
//! *"Enzian requires a special DeviceTree specification since, of the two
//! NUMA nodes, only one actually has CPU cores and the other may or may
//! not appear to have memory."* This module renders that DTS from a
//! [`MachineConfig`]: node 0 carries the 48 cores and the CPU DRAM, node
//! 1 carries no cores and — depending on the loaded shell — optionally
//! exposes the FPGA-homed DRAM window.

use crate::machine::MachineConfig;

/// Options for the generated tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceTreeOptions {
    /// Whether the FPGA node exposes its DRAM to Linux (shell-dependent).
    pub expose_fpga_memory: bool,
    /// Number of CPU cores to declare (≤ 48).
    pub cores: u32,
}

impl Default for DeviceTreeOptions {
    fn default() -> Self {
        DeviceTreeOptions {
            expose_fpga_memory: true,
            cores: 48,
        }
    }
}

/// Renders the DTS source for a machine configuration.
///
/// # Panics
///
/// Panics if `options.cores` is 0 or exceeds 48.
pub fn render_dts(config: &MachineConfig, options: DeviceTreeOptions) -> String {
    assert!(
        (1..=48).contains(&options.cores),
        "core count {} out of range",
        options.cores
    );
    let map = &config.eci.map;
    let mut out = String::new();
    out.push_str("/dts-v1/;\n\n/ {\n");
    out.push_str("\tmodel = \"ETH Zurich Enzian\";\n");
    out.push_str("\tcompatible = \"ethz,enzian\", \"cavium,thunder-88xx\";\n");
    out.push_str("\t#address-cells = <2>;\n\t#size-cells = <2>;\n\n");

    // CPUs: all on NUMA node 0.
    out.push_str("\tcpus {\n\t\t#address-cells = <2>;\n\t\t#size-cells = <0>;\n");
    for core in 0..options.cores {
        out.push_str(&format!(
            "\t\tcpu@{core:x} {{\n\t\t\tdevice_type = \"cpu\";\n\t\t\tcompatible = \"cavium,thunder\", \"arm,armv8\";\n\t\t\treg = <0x0 {core:#x}>;\n\t\t\tnuma-node-id = <0>;\n\t\t}};\n"
        ));
    }
    out.push_str("\t};\n\n");

    // Node 0 memory: the CPU DRAM at physical zero.
    let cpu_bytes = map.cpu_bytes();
    out.push_str(&format!(
        "\tmemory@0 {{\n\t\tdevice_type = \"memory\";\n\t\treg = <0x0 0x0 {:#x} {:#x}>;\n\t\tnuma-node-id = <0>;\n\t}};\n\n",
        cpu_bytes >> 32,
        cpu_bytes & 0xFFFF_FFFF
    ));

    // Node 1: the FPGA. No cpus; memory only when the shell exposes it.
    if options.expose_fpga_memory {
        let base = map.fpga_base().0;
        let size = map.fpga_bytes();
        out.push_str(&format!(
            "\tmemory@{base:x} {{\n\t\tdevice_type = \"memory\";\n\t\treg = <{:#x} {:#x} {:#x} {:#x}>;\n\t\tnuma-node-id = <1>;\n\t}};\n\n",
            base >> 32,
            base & 0xFFFF_FFFF,
            size >> 32,
            size & 0xFFFF_FFFF
        ));
    }

    // The distance map: asymmetric NUMA with a remote hop over ECI.
    out.push_str(
        "\tdistance-map {\n\t\tcompatible = \"numa-distance-map-v1\";\n\t\tdistance-matrix = <0 0 10>, <0 1 20>, <1 0 20>, <1 1 10>;\n\t};\n",
    );
    out.push_str("};\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dts(expose: bool) -> String {
        render_dts(
            &MachineConfig::enzian(),
            DeviceTreeOptions {
                expose_fpga_memory: expose,
                cores: 48,
            },
        )
    }

    #[test]
    fn declares_48_cores_all_on_node_0() {
        let s = dts(true);
        assert_eq!(s.matches("device_type = \"cpu\"").count(), 48);
        assert_eq!(s.matches("numa-node-id = <0>").count(), 49); // 48 cpus + memory@0
                                                                 // No CPU is ever placed on node 1.
        for chunk in s.split("cpu@").skip(1) {
            let node_line = chunk.lines().find(|l| l.contains("numa-node-id")).unwrap();
            assert!(node_line.contains("<0>"), "cpu on wrong node: {node_line}");
        }
    }

    #[test]
    fn fpga_memory_is_optional() {
        let with = dts(true);
        let without = dts(false);
        assert!(with.contains("numa-node-id = <1>"));
        assert!(!without.contains("memory@10000000000"));
        // Node 1 exists in the distance map either way.
        assert!(without.contains("distance-matrix"));
    }

    #[test]
    fn memory_regions_match_the_map() {
        let s = dts(true);
        // 128 GiB CPU memory: high cell 0x20, low 0x0.
        assert!(s.contains("reg = <0x0 0x0 0x20 0x0>"), "{s}");
        // FPGA base at 1 TiB: high cell 0x100.
        assert!(s.contains("memory@10000000000"));
        assert!(s.contains("reg = <0x100 0x0 0x80 0x0>"), "{s}");
    }

    #[test]
    fn header_is_well_formed() {
        let s = dts(true);
        assert!(s.starts_with("/dts-v1/;"));
        assert!(s.contains("compatible = \"ethz,enzian\""));
        // Balanced braces.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_cores_rejected() {
        render_dts(
            &MachineConfig::enzian(),
            DeviceTreeOptions {
                expose_fpga_memory: true,
                cores: 0,
            },
        );
    }
}
