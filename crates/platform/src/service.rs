//! The replicated KV service, run across the simulated cluster.
//!
//! This module is the *transport and control plane* of
//! `enzian-apps::service`: it places the shard/replica/client state
//! machines from [`enzian_apps::service`] onto the boards of a
//! conservative-parallel cluster (the same engine as
//! [`crate::cluster`]), carries every service message inside a bridge
//! `Svc*` frame over seeded [`Channel`]s, and drives the robustness
//! machinery end to end:
//!
//! * **Fault scenarios** ([`FaultScenario`]) build per-board
//!   [`FaultPlan`]s over the shared cluster targets
//!   ([`enzian_sim::cluster_targets`]): board crashes (fail-stop,
//!   volatile state lost), bridge partitions (all frames in and out
//!   dropped) and bridge delays (late delivery).
//! * **Failure detection and failover**: boards exchange heartbeats
//!   carrying per-hosted-shard epochs; a backup that has not heard its
//!   primary within the timeout — and can still see a board majority —
//!   promotes itself by bumping the epoch. Stale primaries are fenced
//!   by higher epochs (heartbeats or replication nacks) and rebuild
//!   via catch-up before serving again.
//! * **Bounded clients**: every request either completes with a
//!   [`KvResult`] or fails with a typed [`SvcError`] within its retry
//!   budget; timed-out GETs may degrade to one stale read. No client
//!   operation can hang.
//! * **Audits**: [`ServiceRunReport::verify_linearizable`] replays
//!   every shard's committed log against a fresh sequential store, and
//!   [`ServiceRunReport::audit_zero_lost_acks`] checks that no
//!   acknowledged write was lost across crashes and failovers.
//!
//! Everything is a pure function of the [`ServiceConfig`] — reports
//! (and the metrics / bench JSON derived from them) are bit-identical
//! across thread counts and between the parallel engine and the
//! sequential reference driver.
//!
//! # Safety invariant
//!
//! A primary may commit *solo* (without its backup's ack) only while it
//! can see a board majority. [`ServiceConfig::validate`] enforces
//! `rep_timeout × rep_retry_budget > hb_timeout`, so a partitioned
//! primary exhausts its heartbeat freshness — and therefore loses
//! quorum — *before* its replication retry budget does: it steps down
//! instead of solo-committing a write the promoted backup never saw.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use enzian_apps::service::{
    verify_log, AckState, Applied, ClientPlan, ClientState, KvOp, KvResult, LogEntry, Replica,
    RespErr, RespOk, RetryDecision, Role, ShardMap, SloRecorder, SvcError, SvcPayload,
};
use enzian_apps::{decode_svc, encode_svc, KvStoreConfig};
use enzian_eci::bridge::{decode_bridge, encode_bridge, BridgeMsg, BridgeOp};
use enzian_net::eth::{EthLinkConfig, FRAME_OVERHEAD_BYTES};
use enzian_sim::par::{run_conservative, Envelope, EpochWindow, ParConfig, Shard};
use enzian_sim::{
    cluster_targets, Channel, ChannelConfig, Duration, FaultPlan, FaultSpec, MetricsRegistry, Time,
};

use crate::cluster::{FlowStats, Fnv};

// -------------------------------------------------------------------
// Configuration
// -------------------------------------------------------------------

/// Cluster fault scenarios the `service` experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// No faults: the availability and latency baseline.
    Baseline,
    /// Board 1 crashes for one window and rejoins.
    CrashOneBoard,
    /// Boards 1, 2 and 3 crash in disjoint windows, with a small
    /// probability of delayed frames on every board throughout.
    RollingCrashes,
    /// Board 2 is partitioned from the fabric for one window, then
    /// heals and must be fenced + re-replicated.
    PartitionHeal,
}

impl FaultScenario {
    /// All scenarios, in sweep order.
    pub fn all() -> [FaultScenario; 4] {
        [
            FaultScenario::Baseline,
            FaultScenario::CrashOneBoard,
            FaultScenario::RollingCrashes,
            FaultScenario::PartitionHeal,
        ]
    }

    /// Stable label used in metrics and bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FaultScenario::Baseline => "none",
            FaultScenario::CrashOneBoard => "crash_one_board",
            FaultScenario::RollingCrashes => "rolling_crashes",
            FaultScenario::PartitionHeal => "partition_heal",
        }
    }

    /// The fault window ops are SLO-bucketed against (`None` for the
    /// baseline): the span from the first injection to the last
    /// scheduled recovery.
    pub fn fault_window(&self) -> Option<(Time, Time)> {
        match self {
            FaultScenario::Baseline => None,
            FaultScenario::CrashOneBoard => Some((Time::from_us(100), Time::from_us(250))),
            FaultScenario::RollingCrashes => Some((Time::from_us(100), Time::from_us(460))),
            FaultScenario::PartitionHeal => Some((Time::from_us(100), Time::from_us(250))),
        }
    }

    /// Builds board `board`'s fault plan (seeded per board, so
    /// probabilistic triggers draw from private streams).
    pub fn plan_for(&self, seed: u64, board: u8) -> FaultPlan {
        let mut plan =
            FaultPlan::new(seed ^ (u64::from(board) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match self {
            FaultScenario::Baseline => {}
            FaultScenario::CrashOneBoard => {
                if board == 1 {
                    plan.add(FaultSpec::window(
                        cluster_targets::BOARD_CRASH,
                        Time::from_us(100),
                        Time::from_us(250),
                    ));
                }
            }
            FaultScenario::RollingCrashes => {
                let windows = [(1u8, 100u64, 180u64), (2, 240, 320), (3, 380, 460)];
                for (b, from, until) in windows {
                    if board == b {
                        plan.add(FaultSpec::window(
                            cluster_targets::BOARD_CRASH,
                            Time::from_us(from),
                            Time::from_us(until),
                        ));
                    }
                }
                plan.add(FaultSpec::probability(cluster_targets::BRIDGE_DELAY, 0.02));
            }
            FaultScenario::PartitionHeal => {
                if board == 2 {
                    plan.add(FaultSpec::window(
                        cluster_targets::BRIDGE_PARTITION,
                        Time::from_us(100),
                        Time::from_us(250),
                    ));
                }
            }
        }
        plan
    }
}

/// Configuration of one replicated-service run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Boards in the cluster (≥ 3, so a single failure leaves quorum).
    pub boards: u8,
    /// Shards (each hosted by two consecutive boards).
    pub shards: u16,
    /// Clients per board.
    pub clients_per_board: u8,
    /// Client workload/robustness parameters.
    pub client: ClientPlan,
    /// Per-shard store configuration.
    pub store: KvStoreConfig,
    /// Heartbeat send period.
    pub hb_interval: Duration,
    /// Silence after which a board is suspected dead.
    pub hb_timeout: Duration,
    /// Per-attempt replication ack timeout.
    pub rep_timeout: Duration,
    /// Replication attempts before the primary decides alone (≥ 1).
    pub rep_retry_budget: u32,
    /// Loopback latency for same-board service messages.
    pub local_latency: Duration,
    /// FPGA bridge processing per fabric frame.
    pub bridge_latency: Duration,
    /// Extra delivery delay injected by `bridge.delay` faults.
    pub delay_extra: Duration,
    /// Heartbeats stop at this horizon (all client work must be done
    /// well before; fault windows must end before it).
    pub horizon: Time,
    /// Master seed for clients and fault plans.
    pub seed: u64,
    /// The fault scenario to inject.
    pub scenario: FaultScenario,
}

impl ServiceConfig {
    /// A small cluster sized for unit tests.
    pub fn small() -> Self {
        ServiceConfig {
            boards: 4,
            shards: 8,
            clients_per_board: 2,
            client: ClientPlan {
                keys_per_client: 6,
                ops: 24,
                ..ClientPlan::standard()
            },
            store: KvStoreConfig {
                buckets: 256,
                ..KvStoreConfig::tiny()
            },
            hb_interval: Duration::from_us(10),
            hb_timeout: Duration::from_us(40),
            rep_timeout: Duration::from_us(15),
            rep_retry_budget: 4,
            local_latency: Duration::from_ns(500),
            bridge_latency: Duration::from_ns(150),
            delay_extra: Duration::from_us(30),
            horizon: Time::from_us(1_200),
            seed: 0x5E11_ACE5,
            scenario: FaultScenario::Baseline,
        }
    }

    /// The `service` experiment's cluster.
    pub fn standard() -> Self {
        ServiceConfig {
            boards: 8,
            shards: 16,
            clients_per_board: 2,
            client: ClientPlan::standard(),
            horizon: Time::from_us(1_500),
            ..ServiceConfig::small()
        }
    }

    /// Returns the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with `scenario` injected.
    pub fn with_scenario(mut self, scenario: FaultScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Returns the configuration with the client plan replaced.
    pub fn with_client_plan(mut self, client: ClientPlan) -> Self {
        self.client = client;
        self
    }

    /// Checks the configuration's internal consistency — in particular
    /// the solo-commit safety invariant (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant.
    pub fn validate(&self) {
        assert!(self.boards >= 3, "quorum needs at least three boards");
        assert!(self.shards > 0, "a service needs shards");
        assert!(self.clients_per_board > 0, "a service needs clients");
        assert!(self.rep_retry_budget >= 1, "replication needs one attempt");
        assert!(
            self.hb_timeout >= self.hb_interval * 2,
            "failure detection needs at least two missed heartbeats"
        );
        assert!(
            self.rep_timeout
                .saturating_mul(u64::from(self.rep_retry_budget))
                > self.hb_timeout,
            "solo-commit safety: rep_timeout x rep_retry_budget must exceed hb_timeout"
        );
        if let Some((_, until)) = self.scenario.fault_window() {
            assert!(
                until < self.horizon,
                "the fault window must close before the horizon"
            );
        }
    }

    /// The conservative engine's lookahead: no frame sent at `t` is
    /// processed remotely before `t + propagation + bridge_latency`.
    pub fn lookahead(&self) -> Duration {
        EthLinkConfig::hundred_gig().propagation + self.bridge_latency
    }

    /// Total client operations the run must account for.
    pub fn total_client_ops(&self) -> u64 {
        u64::from(self.boards) * u64::from(self.clients_per_board) * self.client.ops
    }
}

// -------------------------------------------------------------------
// The per-board shard
// -------------------------------------------------------------------

/// What a sleeping client is waiting to do.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ClientWake {
    /// Draw and issue the next operation.
    Issue,
    /// Re-send the pending operation (retry attempt).
    Rearm {
        /// The attempt is the stale-read fallback.
        stale: bool,
    },
    /// The per-attempt timeout for `req_id` fired.
    Timeout {
        /// The attempt it guards (stale if the op was re-armed since).
        req_id: u32,
    },
}

/// One client plus its single timer slot. A slot, not a queue: arming a
/// new wake (response handled, retry scheduled) implicitly cancels the
/// stale timeout.
#[derive(Debug)]
struct LocalClient {
    state: ClientState,
    wake: Option<(Time, ClientWake)>,
}

/// An uncommitted log entry at the primary, awaiting its backup ack.
#[derive(Debug)]
struct Pend {
    /// Clients to answer on commit: `(board, client uid, req_id)`.
    responders: Vec<(usize, u32, u32)>,
    /// Replication attempts made.
    attempts: u32,
    /// Current attempt's ack deadline (keys the timer set).
    deadline: Time,
}

/// Catch-up progress for one recovering shard.
#[derive(Debug)]
struct CatchupState {
    /// Entries the snapshot promises (`None` until the header arrives).
    expect: Option<u32>,
    /// Last time the rebuild advanced (requests count as progress).
    last_progress: Time,
    /// Out-of-order replication frames parked until their turn:
    /// index → `(epoch, client, op_seq, op)`. Delay faults reorder
    /// frames, so the replay must tolerate entries (and even the
    /// snapshot header) arriving late without starting over.
    buffer: BTreeMap<u32, (u32, u32, u32, KvOp)>,
}

impl CatchupState {
    fn fresh(now: Time) -> Self {
        CatchupState {
            expect: None,
            last_progress: now,
            buffer: BTreeMap::new(),
        }
    }
}

/// Key ordering per-board work: `(time, class, a, b)` where class 0 is
/// an inbox delivery `(src, seq)`, 1 a client wake `(client, 0)`, 2 the
/// heartbeat tick, and 3 a replication timer `(shard, index)`.
type WorkKey = (Time, u8, u64, u64);

/// One board of the replicated service: its shard replicas, its
/// clients, its timers, and its half of the fabric.
struct ServiceBoard {
    id: usize,
    n: usize,
    cfg: ServiceConfig,
    map: ShardMap,
    /// Hosted shard → replica.
    replicas: BTreeMap<u16, Replica>,
    /// Hosted shard → uncommitted log index → pending commit.
    pend: BTreeMap<u16, BTreeMap<u32, Pend>>,
    /// Armed replication timers, ordered by deadline.
    rep_timers: BTreeSet<(Time, u16, u32)>,
    /// Catch-up progress per recovering shard.
    catchup: BTreeMap<u16, CatchupState>,
    clients: Vec<LocalClient>,
    /// Best-known epoch per shard (request routing).
    routing_epoch: Vec<u32>,
    /// Last heartbeat (or any frame) heard from each board.
    last_heard: Vec<Time>,
    next_hb: Option<Time>,
    hb_seq: u32,
    plan: FaultPlan,
    down: bool,
    down_since: Time,
    out: Vec<Option<Channel>>,
    /// Per-destination serialization floor: the wire start of the last
    /// frame sent there. Submitting at-or-after it keeps the channel
    /// FIFO even though replicate/response send times (apply-completion
    /// instants) are not monotone and frames vary in size — without it
    /// a short later frame can gap-fill ahead of an in-flight one and
    /// force a spurious full catch-up on the backup.
    send_floor: Vec<Time>,
    inbox: BinaryHeap<Reverse<Envelope<Vec<u8>>>>,
    seq: u32,
    flows: Vec<FlowStats>,
    slo: SloRecorder,
    last: Time,
    crashes: u64,
    rejoins: u64,
    crashed_ops: u64,
    failovers: u64,
    solo_commits: u64,
    fenced: u64,
    step_downs: u64,
    catchup_requests: u64,
    catchups_completed: u64,
    partition_drops: u64,
    delays_injected: u64,
    heartbeats_sent: u64,
    client_rejections: u64,
    local_msgs: u64,
}

type Out = Vec<(usize, Envelope<Vec<u8>>)>;

impl ServiceBoard {
    fn me(&self) -> u8 {
        self.id as u8
    }

    fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push_arrival(&mut self, env: Envelope<Vec<u8>>) {
        self.inbox.push(Reverse(env));
    }

    /// The next unit of work, or `None` when the board is quiescent.
    fn next_key(&self) -> Option<WorkKey> {
        let mut best: Option<WorkKey> = None;
        let consider = |k: WorkKey, best: &mut Option<WorkKey>| {
            if best.is_none_or(|b| k < b) {
                *best = Some(k);
            }
        };
        if let Some(Reverse(env)) = self.inbox.peek() {
            consider((env.at, 0, env.src as u64, env.seq), &mut best);
        }
        for (i, c) in self.clients.iter().enumerate() {
            if let Some((t, _)) = &c.wake {
                consider((*t, 1, i as u64, 0), &mut best);
            }
        }
        if let Some(t) = self.next_hb {
            consider((t, 2, 0, 0), &mut best);
        }
        if let Some(&(t, shard, index)) = self.rep_timers.iter().next() {
            consider((t, 3, u64::from(shard), u64::from(index)), &mut best);
        }
        best
    }

    // ---------------------------------------------------------------
    // Faults
    // ---------------------------------------------------------------

    /// Consults the board-crash schedule at `now` and performs the
    /// crash / rejoin edge transitions. Returns `true` while down.
    fn fault_tick(&mut self, now: Time, out: &mut Out) -> bool {
        let firing = self.plan.should_fire(cluster_targets::BOARD_CRASH, now);
        if firing && !self.down {
            self.crash(now);
        } else if !firing && self.down {
            self.rejoin(now, out);
        }
        self.down
    }

    /// Fail-stop: all volatile state is lost, every in-flight client
    /// operation becomes indeterminate. The inbox is *not* cleared —
    /// frames in flight are dropped at their arrival instant while the
    /// board is down, which is engine-independent (clearing here would
    /// depend on when the transport staged them).
    fn crash(&mut self, now: Time) {
        self.down = true;
        self.down_since = now;
        self.crashes += 1;
        self.rep_timers.clear();
        self.pend.clear();
        self.catchup.clear();
        for r in self.replicas.values_mut() {
            r.reset_for_recovery();
        }
        let mut crashed = 0;
        for c in &mut self.clients {
            if c.state.pending.is_some() {
                // The op's outcome is unknowable ([`SvcError::ClientCrashed`]
                // territory): poison its key and keep it out of the SLO.
                c.state.complete_failed();
                crashed += 1;
            }
            c.wake = None;
        }
        self.crashed_ops += crashed;
        self.last = self.last.max(now);
    }

    /// The crash window closed: the board reboots with empty replicas
    /// and rebuilding shards; surviving clients resume issuing.
    fn rejoin(&mut self, now: Time, out: &mut Out) {
        self.down = false;
        self.rejoins += 1;
        self.plan.note_recovery(
            cluster_targets::BOARD_CRASH,
            now,
            now.saturating_since(self.down_since),
        );
        for t in &mut self.last_heard {
            *t = now;
        }
        let shards: Vec<u16> = self.replicas.keys().copied().collect();
        for shard in shards {
            self.request_catchup(shard, now, out);
        }
        for (i, c) in self.clients.iter_mut().enumerate() {
            if !c.state.done() {
                c.wake = Some((
                    now + self.cfg.client.think * (i as u64 + 1),
                    ClientWake::Issue,
                ));
            }
        }
        self.last = self.last.max(now);
    }

    // ---------------------------------------------------------------
    // Transport
    // ---------------------------------------------------------------

    /// Routes a payload to its bridge plane: client traffic, the
    /// replication stream, or control (heartbeats).
    fn plane(payload: &SvcPayload, bytes: Vec<u8>) -> BridgeOp {
        match payload {
            SvcPayload::Request { .. } | SvcPayload::Response { .. } => BridgeOp::SvcClient(bytes),
            SvcPayload::Heartbeat { .. } => BridgeOp::SvcCtl(bytes),
            _ => BridgeOp::SvcRep(bytes),
        }
    }

    /// Encodes and sends one service payload towards `dst` at `at`,
    /// applying partition/delay faults; same-board messages loop back
    /// through the inbox after `local_latency`.
    fn send_svc(&mut self, dst: usize, at: Time, payload: &SvcPayload, out: &mut Out) {
        let bytes = encode_svc(payload);
        let msg = BridgeMsg {
            src: self.me(),
            dst: dst as u8,
            token: 0,
            addr: 0,
            seq: self.next_seq(),
            op: Self::plane(payload, bytes),
        };
        let frame = encode_bridge(&msg);
        let seq = u64::from(msg.seq);
        if dst == self.id {
            self.local_msgs += 1;
            self.push_arrival(Envelope {
                at: at + self.cfg.local_latency,
                src: self.id,
                seq,
                payload: frame,
            });
            return;
        }
        if self.plan.should_fire(cluster_targets::BRIDGE_PARTITION, at) {
            self.partition_drops += 1;
            return;
        }
        let mut extra = Duration::from_ns(0);
        if self.plan.should_fire(cluster_targets::BRIDGE_DELAY, at) {
            extra = self.cfg.delay_extra;
            self.delays_injected += 1;
        }
        let ch = self.out[dst].as_mut().expect("no channel to self");
        let xfer = ch.send(at.max(self.send_floor[dst]), frame.len() as u64);
        self.send_floor[dst] = xfer.start;
        let flow = &mut self.flows[dst];
        flow.frames += 1;
        flow.payload_bytes += match &msg.op {
            BridgeOp::SvcClient(b) | BridgeOp::SvcRep(b) | BridgeOp::SvcCtl(b) => b.len() as u64,
            _ => 0,
        };
        flow.wire_bytes += frame.len() as u64;
        out.push((
            dst,
            Envelope {
                at: xfer.done + self.cfg.bridge_latency + extra,
                src: self.id,
                seq,
                payload: frame,
            },
        ));
    }

    #[allow(clippy::too_many_arguments)]
    fn respond(
        &mut self,
        dst: usize,
        at: Time,
        client: u32,
        req_id: u32,
        shard: u16,
        epoch: u32,
        body: Result<RespOk, RespErr>,
        out: &mut Out,
    ) {
        self.send_svc(
            dst,
            at,
            &SvcPayload::Response {
                client,
                req_id,
                shard,
                epoch,
                body,
            },
            out,
        );
    }

    // ---------------------------------------------------------------
    // Membership
    // ---------------------------------------------------------------

    /// `true` when `board` has been silent beyond the heartbeat timeout.
    fn suspected(&self, board: u8, now: Time) -> bool {
        now.saturating_since(self.last_heard[usize::from(board)]) > self.cfg.hb_timeout
    }

    /// `true` when this board can see a strict board majority (itself
    /// plus every peer heard within the heartbeat timeout).
    fn quorum(&self, now: Time) -> bool {
        let heard = (0..self.n)
            .filter(|&b| b != self.id && !self.suspected(b as u8, now))
            .count();
        (1 + heard) * 2 > self.n
    }

    fn bump_routing(&mut self, shard: u16, epoch: u32) {
        let e = &mut self.routing_epoch[usize::from(shard)];
        *e = (*e).max(epoch);
    }

    // ---------------------------------------------------------------
    // Replica control: fencing, step-down, catch-up
    // ---------------------------------------------------------------

    /// Fails every pending commit of `shard` with `err` and clears its
    /// replication timers.
    fn fail_pending(&mut self, shard: u16, err: SvcError, epoch: u32, now: Time, out: &mut Out) {
        let Some(m) = self.pend.remove(&shard) else {
            return;
        };
        for (index, e) in m {
            self.rep_timers.remove(&(e.deadline, shard, index));
            for (dst, client, req_id) in e.responders {
                self.respond(
                    dst,
                    now,
                    client,
                    req_id,
                    shard,
                    epoch,
                    Err(RespErr { error: err }),
                    out,
                );
            }
        }
    }

    /// A higher epoch reached a serving replica: discard, adopt the
    /// epoch as a fencing floor, and rebuild via catch-up.
    fn fence(&mut self, shard: u16, new_epoch: u32, now: Time, out: &mut Out) {
        self.fenced += 1;
        self.fail_pending(shard, SvcError::Recovering, new_epoch, now, out);
        let r = self
            .replicas
            .get_mut(&shard)
            .expect("fencing a hosted shard");
        r.reset_for_recovery();
        r.epoch = new_epoch;
        self.bump_routing(shard, new_epoch);
        self.request_catchup(shard, now, out);
    }

    /// The primary lost quorum with replication attempts exhausted: it
    /// must not decide alone, so it stops serving and rebuilds.
    fn step_down(&mut self, shard: u16, now: Time, out: &mut Out) {
        self.step_downs += 1;
        let epoch = self.replicas[&shard].epoch;
        self.fail_pending(shard, SvcError::NoQuorum, epoch, now, out);
        self.replicas
            .get_mut(&shard)
            .expect("stepping down a hosted shard")
            .reset_for_recovery();
        self.request_catchup(shard, now, out);
    }

    /// Asks the shard's other host for a full log replay.
    fn request_catchup(&mut self, shard: u16, now: Time, out: &mut Out) {
        let hosts = self.map.hosts(shard);
        let peer = if hosts[0] == self.me() {
            hosts[1]
        } else {
            hosts[0]
        };
        // Keep any parked frames from a previous attempt: the serving
        // peer's committed prefix is immutable within an epoch, so they
        // stay valid for the next snapshot.
        self.catchup
            .entry(shard)
            .or_insert_with(|| CatchupState::fresh(now))
            .last_progress = now;
        self.catchup_requests += 1;
        self.send_svc(
            usize::from(peer),
            now,
            &SvcPayload::CatchupReq { shard },
            out,
        );
    }

    /// The rebuild reached the promised length: resume serving in the
    /// role the current epoch assigns.
    fn finish_catchup(&mut self, shard: u16) {
        self.catchup.remove(&shard);
        let me = self.me();
        let map = self.map;
        let r = self.replicas.get_mut(&shard).expect("hosted shard");
        r.role = if map.primary_at(shard, r.epoch) == me {
            Role::Primary
        } else {
            Role::Backup
        };
        let epoch = r.epoch;
        self.catchups_completed += 1;
        self.bump_routing(shard, epoch);
    }

    // ---------------------------------------------------------------
    // Message handlers
    // ---------------------------------------------------------------

    fn process_envelope(&mut self, out: &mut Out) {
        let Reverse(env) = self.inbox.pop().expect("inbox not empty");
        let now = env.at;
        self.last = self.last.max(now);
        if env.src != self.id
            && self
                .plan
                .should_fire(cluster_targets::BRIDGE_PARTITION, now)
        {
            self.partition_drops += 1;
            return;
        }
        let msg = decode_bridge(&env.payload).expect("fabric frames survive transit");
        let payload = match &msg.op {
            BridgeOp::SvcClient(b) | BridgeOp::SvcRep(b) | BridgeOp::SvcCtl(b) => {
                decode_svc(b).expect("service payloads survive transit")
            }
            other => unreachable!("non-service frame on the service fabric: {other:?}"),
        };
        let src = usize::from(msg.src);
        match payload {
            SvcPayload::Heartbeat { seq: _, epochs } => self.on_heartbeat(src, now, epochs, out),
            SvcPayload::Request {
                client,
                req_id,
                op_seq,
                shard,
                epoch: _,
                stale_ok,
                op,
            } => self.on_request(src, now, client, req_id, op_seq, shard, stale_ok, op, out),
            SvcPayload::Response {
                client,
                req_id,
                shard,
                epoch,
                body,
            } => self.on_response(now, client, req_id, shard, epoch, body),
            SvcPayload::Replicate {
                shard,
                epoch,
                index,
                client,
                op_seq,
                op,
            } => self.on_replicate(src, now, shard, epoch, index, client, op_seq, op, out),
            SvcPayload::RepAck {
                shard,
                epoch,
                index,
            } => self.on_rep_ack(now, shard, epoch, index, out),
            SvcPayload::RepNack { shard, epoch } => self.on_rep_nack(now, shard, epoch, out),
            SvcPayload::CatchupReq { shard } => self.on_catchup_req(src, now, shard, out),
            SvcPayload::CatchupStart { shard, epoch, len } => {
                self.on_catchup_start(now, shard, epoch, len)
            }
        }
    }

    fn on_heartbeat(&mut self, src: usize, now: Time, epochs: Vec<(u16, u32)>, out: &mut Out) {
        self.last_heard[src] = now;
        for (shard, ep) in epochs {
            self.bump_routing(shard, ep);
            let stale_role = match self.replicas.get(&shard) {
                Some(r) if ep > r.epoch => Some(r.role),
                _ => None,
            };
            match stale_role {
                Some(Role::Recovering) => {
                    self.replicas.get_mut(&shard).expect("hosted shard").epoch = ep;
                }
                Some(Role::Primary | Role::Backup) => self.fence(shard, ep, now, out),
                None => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_request(
        &mut self,
        src: usize,
        now: Time,
        client: u32,
        req_id: u32,
        op_seq: u32,
        shard: u16,
        stale_ok: bool,
        op: KvOp,
        out: &mut Out,
    ) {
        let Some(r) = self.replicas.get(&shard) else {
            debug_assert!(false, "request for a shard this board does not host");
            return;
        };
        let (role, epoch) = (r.role, r.epoch);
        match role {
            Role::Recovering => self.respond(
                src,
                now,
                client,
                req_id,
                shard,
                epoch,
                Err(RespErr {
                    error: SvcError::Recovering,
                }),
                out,
            ),
            Role::Backup => {
                if stale_ok && matches!(op, KvOp::Get { .. }) {
                    let (result, done) = self
                        .replicas
                        .get_mut(&shard)
                        .expect("hosted shard")
                        .execute(now, &op);
                    self.last = self.last.max(done);
                    self.respond(
                        src,
                        done,
                        client,
                        req_id,
                        shard,
                        epoch,
                        Ok(RespOk {
                            result,
                            stale: true,
                        }),
                        out,
                    );
                } else {
                    let primary = self.map.primary_at(shard, epoch);
                    self.respond(
                        src,
                        now,
                        client,
                        req_id,
                        shard,
                        epoch,
                        Err(RespErr {
                            error: SvcError::NotPrimary { epoch, primary },
                        }),
                        out,
                    );
                }
            }
            Role::Primary => {
                if stale_ok && matches!(op, KvOp::Get { .. }) {
                    // The degraded path never logs, even at the primary,
                    // so its answer is marked stale and audited out.
                    let (result, done) = self
                        .replicas
                        .get_mut(&shard)
                        .expect("hosted shard")
                        .execute(now, &op);
                    self.last = self.last.max(done);
                    self.respond(
                        src,
                        done,
                        client,
                        req_id,
                        shard,
                        epoch,
                        Ok(RespOk {
                            result,
                            stale: true,
                        }),
                        out,
                    );
                    return;
                }
                if !self.quorum(now) {
                    self.respond(
                        src,
                        now,
                        client,
                        req_id,
                        shard,
                        epoch,
                        Err(RespErr {
                            error: SvcError::NoQuorum,
                        }),
                        out,
                    );
                    return;
                }
                if let Some((index, result)) = r.dedup_lookup(client, op_seq) {
                    // A retry of an op already in the log: exactly-once.
                    let pending = self.pend.get_mut(&shard).and_then(|m| m.get_mut(&index));
                    if let Some(e) = pending {
                        // Still uncommitted: answer when the commit lands.
                        e.responders.push((src, client, req_id));
                    } else {
                        self.respond(
                            src,
                            now,
                            client,
                            req_id,
                            shard,
                            epoch,
                            Ok(RespOk {
                                result,
                                stale: false,
                            }),
                            out,
                        );
                    }
                    return;
                }
                let (index, result, done) = self
                    .replicas
                    .get_mut(&shard)
                    .expect("hosted shard")
                    .apply_fresh(now, client, op_seq, op.clone());
                self.last = self.last.max(done);
                let backup = self.map.backup_at(shard, epoch);
                if self.suspected(backup, now) {
                    // Backup is dead to us but quorum holds: commit solo;
                    // the rejoining backup re-replicates via catch-up.
                    self.solo_commits += 1;
                    self.respond(
                        src,
                        done,
                        client,
                        req_id,
                        shard,
                        epoch,
                        Ok(RespOk {
                            result,
                            stale: false,
                        }),
                        out,
                    );
                    return;
                }
                let deadline = done + self.cfg.rep_timeout;
                self.pend.entry(shard).or_default().insert(
                    index,
                    Pend {
                        responders: vec![(src, client, req_id)],
                        attempts: 1,
                        deadline,
                    },
                );
                self.rep_timers.insert((deadline, shard, index));
                self.send_svc(
                    usize::from(backup),
                    done,
                    &SvcPayload::Replicate {
                        shard,
                        epoch,
                        index,
                        client,
                        op_seq,
                        op,
                    },
                    out,
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_replicate(
        &mut self,
        src: usize,
        now: Time,
        shard: u16,
        epoch: u32,
        index: u32,
        client: u32,
        op_seq: u32,
        op: KvOp,
        out: &mut Out,
    ) {
        let Some(r) = self.replicas.get_mut(&shard) else {
            return;
        };
        if epoch < r.epoch {
            let my_epoch = r.epoch;
            self.send_svc(
                src,
                now,
                &SvcPayload::RepNack {
                    shard,
                    epoch: my_epoch,
                },
                out,
            );
            return;
        }
        if epoch > r.epoch {
            r.epoch = epoch;
        }
        match r.role {
            Role::Backup => match r.apply_replicated(now, index, client, op_seq, op) {
                Applied::Fresh(_, done) => {
                    self.last = self.last.max(done);
                    self.send_svc(
                        src,
                        done,
                        &SvcPayload::RepAck {
                            shard,
                            epoch,
                            index,
                        },
                        out,
                    );
                }
                Applied::Duplicate => self.send_svc(
                    src,
                    now,
                    &SvcPayload::RepAck {
                        shard,
                        epoch,
                        index,
                    },
                    out,
                ),
                Applied::Gap { have: _ } => {
                    // Deliveries were lost (partition) or reordered
                    // past the FIFO floor (delay fault): stop acking
                    // and rebuild the whole log.
                    r.reset_for_recovery();
                    self.request_catchup(shard, now, out);
                }
            },
            Role::Recovering => {
                // Catch-up replay (and live entries racing it) parks in
                // the reorder buffer and applies in index order; acks
                // resume once the promised length is reached and the
                // role is restored.
                let Some(st) = self.catchup.get_mut(&shard) else {
                    return;
                };
                st.buffer.insert(index, (epoch, client, op_seq, op));
                st.last_progress = now;
                self.drain_catchup(shard, now);
            }
            Role::Primary => {
                // Same-epoch replication to a primary cannot happen (the
                // epoch's primary is unique); ignore the stray frame.
            }
        }
    }

    fn on_rep_ack(&mut self, now: Time, shard: u16, epoch: u32, index: u32, out: &mut Out) {
        let Some(r) = self.replicas.get(&shard) else {
            return;
        };
        if r.role != Role::Primary || r.epoch != epoch {
            return;
        }
        self.commit_up_to(shard, index, now, false, out);
    }

    fn on_rep_nack(&mut self, now: Time, shard: u16, epoch: u32, out: &mut Out) {
        let Some(r) = self.replicas.get(&shard) else {
            return;
        };
        if r.role == Role::Primary && epoch > r.epoch {
            self.fence(shard, epoch, now, out);
        }
    }

    fn on_catchup_req(&mut self, src: usize, now: Time, shard: u16, out: &mut Out) {
        let Some(r) = self.replicas.get(&shard) else {
            return;
        };
        if r.role == Role::Recovering {
            // Nothing authoritative to serve; the requester re-asks.
            return;
        }
        let epoch = r.epoch;
        let entries: Vec<LogEntry> = r.log.clone();
        self.send_svc(
            src,
            now,
            &SvcPayload::CatchupStart {
                shard,
                epoch,
                len: entries.len() as u32,
            },
            out,
        );
        for (i, e) in entries.into_iter().enumerate() {
            self.send_svc(
                src,
                now,
                &SvcPayload::Replicate {
                    shard,
                    epoch,
                    index: i as u32,
                    client: e.client,
                    op_seq: e.op_seq,
                    op: e.op,
                },
                out,
            );
        }
    }

    fn on_catchup_start(&mut self, now: Time, shard: u16, epoch: u32, len: u32) {
        let Some(r) = self.replicas.get_mut(&shard) else {
            return;
        };
        if r.role != Role::Recovering {
            // A late duplicate snapshot for a shard already serving.
            return;
        }
        // Restart the rebuild: any partially applied older snapshot is
        // discarded, but parked frames from an older *epoch* only —
        // within an epoch the committed prefix is immutable.
        r.reset_for_recovery();
        r.epoch = r.epoch.max(epoch);
        let Some(st) = self.catchup.get_mut(&shard) else {
            return;
        };
        st.buffer.retain(|_, v| v.0 >= epoch);
        st.expect = Some(len);
        st.last_progress = now;
        if len == 0 {
            self.finish_catchup(shard);
        } else {
            self.drain_catchup(shard, now);
        }
    }

    /// Applies parked replication frames in index order; completes the
    /// catch-up once the promised length is reached.
    fn drain_catchup(&mut self, shard: u16, now: Time) {
        loop {
            let expect = match self.catchup.get(&shard).and_then(|st| st.expect) {
                Some(e) => e,
                None => return,
            };
            let next = self.replicas[&shard].log.len() as u32;
            if next >= expect {
                self.finish_catchup(shard);
                return;
            }
            let entry = self
                .catchup
                .get_mut(&shard)
                .and_then(|st| st.buffer.remove(&next));
            let Some((e, client, op_seq, op)) = entry else {
                return;
            };
            let r = self.replicas.get_mut(&shard).expect("hosted shard");
            if e < r.epoch {
                // A straggler from a fenced-off attempt.
                continue;
            }
            if let Applied::Fresh(_, done) = r.apply_replicated(now, next, client, op_seq, op) {
                self.last = self.last.max(done);
            }
            if let Some(st) = self.catchup.get_mut(&shard) {
                st.last_progress = now;
            }
        }
    }

    /// Commits every pending entry of `shard` up to `index`: removes
    /// the timers and answers every attached responder.
    fn commit_up_to(&mut self, shard: u16, index: u32, now: Time, solo: bool, out: &mut Out) {
        let committed: Vec<(u32, Pend)> = {
            let Some(m) = self.pend.get_mut(&shard) else {
                return;
            };
            let keys: Vec<u32> = m.range(..=index).map(|(&i, _)| i).collect();
            keys.into_iter()
                .map(|i| (i, m.remove(&i).expect("key just listed")))
                .collect()
        };
        for (i, e) in committed {
            self.rep_timers.remove(&(e.deadline, shard, i));
            if solo {
                self.solo_commits += 1;
            }
            let (epoch, result) = {
                let r = &self.replicas[&shard];
                (r.epoch, r.log[i as usize].result.clone())
            };
            for (dst, client, req_id) in e.responders {
                self.respond(
                    dst,
                    now,
                    client,
                    req_id,
                    shard,
                    epoch,
                    Ok(RespOk {
                        result: result.clone(),
                        stale: false,
                    }),
                    out,
                );
            }
        }
    }

    // ---------------------------------------------------------------
    // Client handlers
    // ---------------------------------------------------------------

    fn client_uid(&self, idx: usize) -> u32 {
        self.id as u32 * u32::from(self.cfg.clients_per_board) + idx as u32
    }

    fn on_response(
        &mut self,
        now: Time,
        client: u32,
        req_id: u32,
        shard: u16,
        epoch: u32,
        body: Result<RespOk, RespErr>,
    ) {
        self.bump_routing(shard, epoch);
        let base = self.id as u32 * u32::from(self.cfg.clients_per_board);
        let idx = (client - base) as usize;
        let matches_pending = self.clients[idx]
            .state
            .pending
            .as_ref()
            .is_some_and(|p| p.req_id == req_id);
        if !matches_pending {
            // A straggler from a superseded attempt; the live attempt's
            // own timeout or response decides the op.
            return;
        }
        match body {
            Ok(ok) => {
                let (class, issued) = {
                    let p = self.clients[idx].state.pending.as_ref().expect("matched");
                    (p.op.class(), p.issued)
                };
                let effective = !matches!(ok.result, KvResult::StoreErr(_));
                self.slo.record_op(class, issued, now, true, ok.stale);
                self.clients[idx].state.complete_ok(ok.stale, effective);
                self.arm_next_op(idx, now);
            }
            Err(RespErr { error }) => {
                if let SvcError::NotPrimary { epoch: e, .. } = error {
                    self.bump_routing(shard, e);
                }
                self.client_rejections += 1;
                self.attempt_failed(idx, now);
            }
        }
    }

    /// Shared rejection/timeout path: retry with backoff, degrade, or
    /// fail with a typed error — always bounded. Retries never send
    /// here; the re-armed wake transmits after its backoff.
    fn attempt_failed(&mut self, idx: usize, now: Time) {
        match self.clients[idx].state.on_attempt_failed() {
            RetryDecision::Retry { backoff, stale } => {
                self.clients[idx].wake = Some((now + backoff, ClientWake::Rearm { stale }));
            }
            RetryDecision::Fail(_err) => {
                let (class, issued) = {
                    let p = self.clients[idx].state.pending.as_ref().expect("pending");
                    (p.op.class(), p.issued)
                };
                self.slo.record_op(class, issued, now, false, false);
                self.clients[idx].state.complete_failed();
                self.arm_next_op(idx, now);
            }
        }
    }

    fn arm_next_op(&mut self, idx: usize, now: Time) {
        let c = &mut self.clients[idx];
        c.wake = if c.state.done() {
            None
        } else {
            Some((now + self.cfg.client.think, ClientWake::Issue))
        };
    }

    fn process_client_wake(&mut self, idx: usize, out: &mut Out) {
        let (now, wake) = self.clients[idx].wake.take().expect("armed wake");
        self.last = self.last.max(now);
        match wake {
            ClientWake::Issue => {
                let map = self.map;
                if let Some(p) = self.clients[idx].state.start_op(&map, now) {
                    self.send_request(idx, &p, now, out);
                } else {
                    debug_assert!(self.clients[idx].state.done());
                }
            }
            ClientWake::Rearm { stale } => {
                self.slo.retries += 1;
                let p = self.clients[idx].state.rearm(stale);
                self.send_request(idx, &p, now, out);
            }
            ClientWake::Timeout { req_id } => {
                let live = self.clients[idx]
                    .state
                    .pending
                    .as_ref()
                    .is_some_and(|p| p.req_id == req_id);
                if !live {
                    return;
                }
                self.slo.timeouts += 1;
                self.attempt_failed(idx, now);
            }
        }
    }

    /// Routes an attempt: first to the best-known primary, alternating
    /// between the shard's two hosts on subsequent attempts.
    fn send_request(&mut self, idx: usize, p: &enzian_apps::PendingReq, now: Time, out: &mut Out) {
        let hosts = self.map.hosts(p.shard);
        let routing = self.routing_epoch[usize::from(p.shard)];
        let pick = ((routing as usize % 2) + (p.attempts as usize - 1)) % 2;
        let target = usize::from(hosts[pick]);
        let uid = self.client_uid(idx);
        self.send_svc(
            target,
            now,
            &SvcPayload::Request {
                client: uid,
                req_id: p.req_id,
                op_seq: p.op_seq,
                shard: p.shard,
                epoch: routing,
                stale_ok: p.stale_phase,
                op: p.op.clone(),
            },
            out,
        );
        self.clients[idx].wake = Some((
            now + self.cfg.client.timeout,
            ClientWake::Timeout { req_id: p.req_id },
        ));
    }

    // ---------------------------------------------------------------
    // Heartbeat tick + replication timers
    // ---------------------------------------------------------------

    fn process_hb_tick(&mut self, now: Time, out: &mut Out) {
        self.last = self.last.max(now);
        let next = now + self.cfg.hb_interval;
        self.next_hb = (next < self.cfg.horizon).then_some(next);
        if self.down {
            // The tick keeps running as the crash window's opportunity
            // clock; the board itself does nothing while down.
            return;
        }
        let shards: Vec<u16> = self.replicas.keys().copied().collect();
        for shard in shards {
            let (role, epoch) = {
                let r = &self.replicas[&shard];
                (r.role, r.epoch)
            };
            match role {
                Role::Backup => {
                    let primary = self.map.primary_at(shard, epoch);
                    if self.suspected(primary, now) && self.quorum(now) {
                        let gap = now.saturating_since(self.last_heard[usize::from(primary)]);
                        let r = self.replicas.get_mut(&shard).expect("hosted shard");
                        r.epoch += 1;
                        r.role = Role::Primary;
                        let e = r.epoch;
                        debug_assert_eq!(self.map.primary_at(shard, e), self.me());
                        self.failovers += 1;
                        self.slo.record_failover(gap);
                        self.bump_routing(shard, e);
                    }
                }
                Role::Recovering => {
                    let stalled = match self.catchup.get(&shard) {
                        None => true,
                        Some(st) => {
                            now.saturating_since(st.last_progress) > self.cfg.hb_interval * 3
                        }
                    };
                    if stalled {
                        self.request_catchup(shard, now, out);
                    }
                }
                Role::Primary => {}
            }
        }
        let epochs: Vec<(u16, u32)> = self.replicas.iter().map(|(&s, r)| (s, r.epoch)).collect();
        let hb = SvcPayload::Heartbeat {
            seq: self.hb_seq,
            epochs,
        };
        self.hb_seq += 1;
        for dst in 0..self.n {
            if dst == self.id {
                continue;
            }
            self.heartbeats_sent += 1;
            self.send_svc(dst, now, &hb, out);
        }
    }

    fn process_rep_timer(&mut self, now: Time, shard: u16, index: u32, out: &mut Out) {
        self.last = self.last.max(now);
        let removed = self.rep_timers.remove(&(now, shard, index));
        debug_assert!(removed, "timer popped but not armed");
        let attempts = match self.pend.get(&shard).and_then(|m| m.get(&index)) {
            Some(e) => e.attempts,
            None => return,
        };
        let (role, epoch) = {
            let r = &self.replicas[&shard];
            (r.role, r.epoch)
        };
        if role != Role::Primary {
            return;
        }
        let backup = self.map.backup_at(shard, epoch);
        if attempts >= self.cfg.rep_retry_budget || self.suspected(backup, now) {
            if self.quorum(now) {
                // The backup is gone (or unreachable long enough to be
                // suspected): decide alone, under quorum.
                self.commit_up_to(shard, index, now, true, out);
            } else {
                self.step_down(shard, now, out);
            }
            return;
        }
        let (client, op_seq, op) = {
            let e = &self.replicas[&shard].log[index as usize];
            (e.client, e.op_seq, e.op.clone())
        };
        let deadline = now + self.cfg.rep_timeout;
        let e = self
            .pend
            .get_mut(&shard)
            .and_then(|m| m.get_mut(&index))
            .expect("checked above");
        e.attempts += 1;
        e.deadline = deadline;
        self.rep_timers.insert((deadline, shard, index));
        self.send_svc(
            usize::from(backup),
            now,
            &SvcPayload::Replicate {
                shard,
                epoch,
                index,
                client,
                op_seq,
                op,
            },
            out,
        );
    }

    // ---------------------------------------------------------------
    // Dispatch
    // ---------------------------------------------------------------

    /// Runs the single earliest unit of work on this board.
    fn process_next(&mut self, out: &mut Out) {
        let key = self.next_key().expect("process_next on a quiescent board");
        let was_down = self.down;
        if self.fault_tick(key.0, out) {
            if !was_down {
                // Crash edge: the key's work (wake / timer) was just
                // wiped; surviving slots re-pop on the next turn.
                return;
            }
            // Down: deliveries are dropped; the heartbeat slot keeps
            // ticking as the rejoin opportunity clock.
            match key.1 {
                0 => {
                    let _ = self.inbox.pop();
                }
                2 => {
                    let next = key.0 + self.cfg.hb_interval;
                    self.next_hb = (next < self.cfg.horizon).then_some(next);
                }
                _ => unreachable!("timers are cleared while a board is down"),
            }
            return;
        }
        match key.1 {
            0 => self.process_envelope(out),
            1 => self.process_client_wake(key.2 as usize, out),
            2 => self.process_hb_tick(key.0, out),
            3 => self.process_rep_timer(key.0, key.2 as u16, key.3 as u32, out),
            _ => unreachable!("unknown work class"),
        }
    }

    /// Folds this board's externally observable final state into `d`.
    fn digest_into(&self, d: &mut Fnv) {
        d.u64(self.id as u64);
        for r in self.replicas.values() {
            r.digest_into(&mut |v| d.u64(v));
        }
        for c in &self.clients {
            d.u64(u64::from(c.state.uid));
            d.u64(c.state.remaining);
            for (key, st) in &c.state.acked {
                d.u64(*key);
                match st {
                    None => d.u64(1),
                    Some(None) => d.u64(2),
                    Some(Some(v)) => {
                        d.u64(3);
                        d.bytes(v);
                    }
                }
            }
        }
        for f in &self.flows {
            d.u64(f.frames);
            d.u64(f.payload_bytes);
            d.u64(f.wire_bytes);
        }
        d.u64(self.last.as_ps());
        d.u64(self.crashes);
        d.u64(self.rejoins);
        d.u64(self.crashed_ops);
        d.u64(self.failovers);
        d.u64(self.solo_commits);
        d.u64(self.fenced);
        d.u64(self.step_downs);
        d.u64(self.partition_drops);
        d.u64(self.delays_injected);
    }
}

impl Shard for ServiceBoard {
    type Msg = Vec<u8>;

    fn step(&mut self, window: EpochWindow, arrivals: Vec<Envelope<Vec<u8>>>, out: &mut Out) {
        for env in arrivals {
            self.inbox.push(Reverse(env));
        }
        while let Some(key) = self.next_key() {
            if key.0 >= window.end {
                break;
            }
            self.process_next(out);
        }
    }

    fn idle(&self) -> bool {
        self.inbox.is_empty()
            && self.next_hb.is_none()
            && self.rep_timers.is_empty()
            && self.clients.iter().all(|c| c.wake.is_none())
    }

    fn next_activity(&self) -> Option<Time> {
        self.next_key().map(|k| k.0)
    }
}

// -------------------------------------------------------------------
// Run drivers + report
// -------------------------------------------------------------------

/// Sequential reference driver: one global clock sweeping the earliest
/// work item across all boards with immediate delivery. The per-board
/// processing order is identical to the epoch engine's, so final states
/// must match bit-for-bit.
fn run_boards_reference(boards: &mut [ServiceBoard]) -> u64 {
    let mut messages = 0;
    let mut out = Vec::new();
    loop {
        let mut best: Option<(WorkKey, usize)> = None;
        for (i, b) in boards.iter().enumerate() {
            if let Some(k) = b.next_key() {
                if best.is_none_or(|(bk, bi)| (k, i) < (bk, bi)) {
                    best = Some((k, i));
                }
            }
        }
        let Some((_, i)) = best else { break };
        boards[i].process_next(&mut out);
        messages += out.len() as u64;
        for (dst, env) in out.drain(..) {
            boards[dst].push_arrival(env);
        }
    }
    messages
}

fn make_boards(cfg: &ServiceConfig) -> Vec<ServiceBoard> {
    cfg.validate();
    let n = usize::from(cfg.boards);
    let map = ShardMap::new(cfg.shards, cfg.boards);
    let link = EthLinkConfig::hundred_gig();
    let chan_cfg = ChannelConfig {
        bits_per_sec: link.bits_per_sec,
        coding_efficiency: 1.0,
        propagation: link.propagation,
        frame_overhead_bytes: FRAME_OVERHEAD_BYTES,
    };
    (0..n)
        .map(|id| {
            let replicas: BTreeMap<u16, Replica> = map
                .shards_of(id as u8)
                .into_iter()
                .map(|s| {
                    let role = if map.primary_at(s, 0) == id as u8 {
                        Role::Primary
                    } else {
                        Role::Backup
                    };
                    (s, Replica::new(s, role, cfg.store))
                })
                .collect();
            let clients: Vec<LocalClient> = (0..usize::from(cfg.clients_per_board))
                .map(|i| {
                    let uid = id as u32 * u32::from(cfg.clients_per_board) + i as u32;
                    LocalClient {
                        state: ClientState::new(uid, cfg.seed, cfg.client),
                        wake: Some((
                            Time::ZERO
                                + cfg.client.think * (i as u64 + 1)
                                + Duration::from_ns(50) * u64::from(uid),
                            ClientWake::Issue,
                        )),
                    }
                })
                .collect();
            ServiceBoard {
                id,
                n,
                cfg: *cfg,
                map,
                replicas,
                pend: BTreeMap::new(),
                rep_timers: BTreeSet::new(),
                catchup: BTreeMap::new(),
                clients,
                routing_epoch: vec![0; usize::from(cfg.shards)],
                last_heard: vec![Time::ZERO; n],
                next_hb: Some(Time::ZERO + Duration::from_ns(200) * (id as u64 + 1)),
                hb_seq: 0,
                plan: cfg.scenario.plan_for(cfg.seed, id as u8),
                down: false,
                down_since: Time::ZERO,
                out: (0..n)
                    .map(|d| (d != id).then(|| Channel::new(chan_cfg)))
                    .collect(),
                send_floor: vec![Time::ZERO; n],
                inbox: BinaryHeap::new(),
                seq: 0,
                flows: vec![FlowStats::default(); n],
                slo: SloRecorder::new(cfg.scenario.fault_window()),
                last: Time::ZERO,
                crashes: 0,
                rejoins: 0,
                crashed_ops: 0,
                failovers: 0,
                solo_commits: 0,
                fenced: 0,
                step_downs: 0,
                catchup_requests: 0,
                catchups_completed: 0,
                partition_drops: 0,
                delays_injected: 0,
                heartbeats_sent: 0,
                client_rejections: 0,
                local_msgs: 0,
            }
        })
        .collect()
}

/// What one service run did — a pure function of the [`ServiceConfig`],
/// never of the thread count. Only `epochs`/`epochs_skipped` depend on
/// the engine; [`ServiceRunReport::assert_matches`] compares everything
/// else.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRunReport {
    /// Boards simulated.
    pub boards: usize,
    /// Shards served.
    pub shards: u16,
    /// Clients simulated.
    pub clients: u32,
    /// Client operations the run must account for.
    pub total_client_ops: u64,
    /// Operations acknowledged with a result (stale serves included).
    pub ok_ops: u64,
    /// Operations that ended in a terminal typed error.
    pub failed_ops: u64,
    /// Operations voided by their own board crashing mid-flight.
    pub crashed_ops: u64,
    /// GETs served from possibly-stale state.
    pub stale_served: u64,
    /// Attempt timeouts fired.
    pub timeouts: u64,
    /// Retransmitted attempts.
    pub retries: u64,
    /// Backup promotions (epoch bumps).
    pub failovers: u64,
    /// Entries a primary committed without its backup's ack.
    pub solo_commits: u64,
    /// Serving replicas fenced by a higher epoch.
    pub fenced: u64,
    /// Primaries that stepped down after losing quorum.
    pub step_downs: u64,
    /// Catch-up requests sent.
    pub catchup_requests: u64,
    /// Catch-ups completed (replica resumed serving).
    pub catchups_completed: u64,
    /// Board crash faults injected.
    pub crashes: u64,
    /// Board rejoins completed.
    pub rejoins: u64,
    /// Frames dropped by partitions (send and receive side).
    pub partition_drops: u64,
    /// Frames delivered late by delay faults.
    pub delays_injected: u64,
    /// Heartbeat frames sent.
    pub heartbeats_sent: u64,
    /// Server-side rejections clients observed (fencing hints included).
    pub client_rejections: u64,
    /// Same-board service messages (loopback, never on the fabric).
    pub local_msgs: u64,
    /// Committed log entries across the authoritative shard logs.
    pub committed_entries: u64,
    /// Availability for ops issued inside the fault window.
    pub availability_in_window: f64,
    /// Availability for ops issued outside the fault window.
    pub availability_out_window: f64,
    /// Service frames handed to the fabric.
    pub svc_frames: u64,
    /// Encoded bytes handed to the fabric.
    pub wire_bytes: u64,
    /// Latest instant any board observed.
    pub sim_end: Time,
    /// Lock-step epochs executed (zero under the reference driver).
    pub epochs: u64,
    /// Quiet epochs the engine jumped over (zero under the reference).
    pub epochs_skipped: u64,
    /// Cross-board envelopes exchanged.
    pub messages: u64,
    /// FNV-1a digest over every board's final state.
    pub digest: u64,
    /// Merged SLO telemetry across all boards.
    pub slo: SloRecorder,
    /// Final (highest) epoch per shard.
    pub shard_epochs: Vec<u32>,
    /// The authoritative committed log per shard (highest epoch wins;
    /// ties prefer the primary, then the lower board).
    pub shard_logs: Vec<Vec<LogEntry>>,
    /// Every client's `(uid, acked-mutations map)` for the audit.
    pub acked: Vec<(u32, BTreeMap<u64, AckState>)>,
}

impl ServiceRunReport {
    /// Asserts this report equals `other` on every engine-independent
    /// field (everything but `epochs`/`epochs_skipped`).
    ///
    /// # Panics
    ///
    /// Panics on the first differing field.
    pub fn assert_matches(&self, other: &ServiceRunReport) {
        let mut a = self.clone();
        let mut b = other.clone();
        a.epochs = 0;
        b.epochs = 0;
        a.epochs_skipped = 0;
        b.epochs_skipped = 0;
        assert_eq!(a, b, "service run reports diverge");
    }

    /// Replays every shard's authoritative committed log against a
    /// fresh sequential store and demands identical results — the
    /// linearizability check over everything the service acknowledged.
    ///
    /// # Errors
    ///
    /// Returns the first diverging shard/entry.
    pub fn verify_linearizable(&self, store: KvStoreConfig) -> Result<(), String> {
        for (shard, log) in self.shard_logs.iter().enumerate() {
            verify_log(log, store).map_err(|e| format!("shard {shard}: {e}"))?;
        }
        Ok(())
    }

    /// Checks that no acknowledged write was lost: replays the
    /// authoritative logs into a final key→value map and demands every
    /// client's last *determinate* acknowledged mutation is honoured.
    /// Keys whose last mutation had an indeterminate outcome (terminal
    /// error or client crash) are excluded — those were never
    /// acknowledged.
    ///
    /// # Errors
    ///
    /// Returns the first lost acknowledged write.
    pub fn audit_zero_lost_acks(&self) -> Result<(), String> {
        let mut state: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
        for log in &self.shard_logs {
            for e in log {
                match (&e.op, &e.result) {
                    (KvOp::Put { key, value }, KvResult::PutOk) => {
                        state.insert(*key, Some(value.clone()));
                    }
                    (KvOp::Delete { key }, KvResult::Deleted(_)) => {
                        state.insert(*key, None);
                    }
                    _ => {}
                }
            }
        }
        for (uid, acked) in &self.acked {
            for (key, st) in acked {
                let Some(expect) = st else { continue };
                let got = state.get(key).cloned().unwrap_or(None);
                if got != *expect {
                    return Err(format!(
                        "client {uid} key {key:#x}: acknowledged {} but the logs \
                         replay to {}",
                        describe(expect),
                        describe(&got),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Publishes the report under `prefix.*`. Every exported value is
    /// deterministic across thread counts, so two exports of same-seed
    /// runs are byte-identical.
    pub fn export_metrics(&self, prefix: &str, reg: &mut MetricsRegistry) {
        let c = |reg: &mut MetricsRegistry, k: &str, v: u64| {
            reg.counter_set(&format!("{prefix}.{k}"), v);
        };
        c(reg, "boards", self.boards as u64);
        c(reg, "shards", u64::from(self.shards));
        c(reg, "clients", u64::from(self.clients));
        c(reg, "total_client_ops", self.total_client_ops);
        c(reg, "ok_ops", self.ok_ops);
        c(reg, "failed_ops", self.failed_ops);
        c(reg, "crashed_ops", self.crashed_ops);
        c(reg, "failovers", self.failovers);
        c(reg, "solo_commits", self.solo_commits);
        c(reg, "fenced", self.fenced);
        c(reg, "step_downs", self.step_downs);
        c(reg, "catchup_requests", self.catchup_requests);
        c(reg, "catchups_completed", self.catchups_completed);
        c(reg, "crashes", self.crashes);
        c(reg, "rejoins", self.rejoins);
        c(reg, "partition_drops", self.partition_drops);
        c(reg, "delays_injected", self.delays_injected);
        c(reg, "heartbeats_sent", self.heartbeats_sent);
        c(reg, "client_rejections", self.client_rejections);
        c(reg, "local_msgs", self.local_msgs);
        c(reg, "committed_entries", self.committed_entries);
        c(reg, "svc_frames", self.svc_frames);
        c(reg, "wire_bytes", self.wire_bytes);
        c(reg, "sim_end_ps", self.sim_end.as_ps());
        c(reg, "epochs", self.epochs);
        c(reg, "epochs_skipped", self.epochs_skipped);
        c(reg, "messages", self.messages);
        c(reg, "digest", self.digest);
        enzian_sim::Instrumented::export_metrics(&self.slo, &format!("{prefix}.slo"), reg);
    }
}

fn describe(v: &Option<Vec<u8>>) -> String {
    match v {
        None => "deleted/absent".to_string(),
        Some(v) => format!("{} bytes", v.len()),
    }
}

fn finish_run(
    cfg: &ServiceConfig,
    boards: Vec<ServiceBoard>,
    epochs: u64,
    epochs_skipped: u64,
    messages: u64,
) -> ServiceRunReport {
    let n = boards.len();
    let mut slo = SloRecorder::new(cfg.scenario.fault_window());
    let mut digest = Fnv::new();
    let mut report = ServiceRunReport {
        boards: n,
        shards: cfg.shards,
        clients: u32::from(cfg.boards) * u32::from(cfg.clients_per_board),
        total_client_ops: cfg.total_client_ops(),
        ok_ops: 0,
        failed_ops: 0,
        crashed_ops: 0,
        stale_served: 0,
        timeouts: 0,
        retries: 0,
        failovers: 0,
        solo_commits: 0,
        fenced: 0,
        step_downs: 0,
        catchup_requests: 0,
        catchups_completed: 0,
        crashes: 0,
        rejoins: 0,
        partition_drops: 0,
        delays_injected: 0,
        heartbeats_sent: 0,
        client_rejections: 0,
        local_msgs: 0,
        committed_entries: 0,
        availability_in_window: 1.0,
        availability_out_window: 1.0,
        svc_frames: 0,
        wire_bytes: 0,
        sim_end: Time::ZERO,
        epochs,
        epochs_skipped,
        messages,
        digest: 0,
        slo: SloRecorder::new(cfg.scenario.fault_window()),
        shard_epochs: vec![0; usize::from(cfg.shards)],
        shard_logs: vec![Vec::new(); usize::from(cfg.shards)],
        acked: Vec::new(),
    };
    // Authoritative log per shard: the replica with the highest epoch;
    // ties prefer the primary role, then the lower board id.
    let mut best: Vec<Option<(u32, u8, usize)>> = vec![None; usize::from(cfg.shards)];
    for b in &boards {
        for (&shard, r) in &b.replicas {
            let role_rank = match r.role {
                Role::Primary => 0u8,
                Role::Backup => 1,
                Role::Recovering => 2,
            };
            let cand = (r.epoch, role_rank, b.id);
            let better = match best[usize::from(shard)] {
                None => true,
                Some((e, rr, id)) => {
                    (cand.0, std::cmp::Reverse(cand.1), std::cmp::Reverse(cand.2))
                        > (e, std::cmp::Reverse(rr), std::cmp::Reverse(id))
                }
            };
            if better {
                best[usize::from(shard)] = Some(cand);
            }
        }
    }
    for b in &boards {
        assert!(b.idle(), "run finished with live work on a board");
        for c in &b.clients {
            assert!(
                c.state.done(),
                "client {} retired with work outstanding",
                c.state.uid
            );
        }
    }
    for b in boards {
        b.digest_into(&mut digest);
        slo.merge(&b.slo);
        report.crashed_ops += b.crashed_ops;
        report.failovers += b.failovers;
        report.solo_commits += b.solo_commits;
        report.fenced += b.fenced;
        report.step_downs += b.step_downs;
        report.catchup_requests += b.catchup_requests;
        report.catchups_completed += b.catchups_completed;
        report.crashes += b.crashes;
        report.rejoins += b.rejoins;
        report.partition_drops += b.partition_drops;
        report.delays_injected += b.delays_injected;
        report.heartbeats_sent += b.heartbeats_sent;
        report.client_rejections += b.client_rejections;
        report.local_msgs += b.local_msgs;
        report.sim_end = report.sim_end.max(b.last);
        for (dst, (f, ch)) in b.flows.iter().zip(&b.out).enumerate() {
            report.svc_frames += f.frames;
            report.wire_bytes += f.wire_bytes;
            if let Some(ch) = ch {
                assert_eq!(
                    f.wire_bytes,
                    ch.bytes_carried(),
                    "flow accounting diverged from the channel ({} -> {dst})",
                    b.id
                );
            }
        }
        for (shard, r) in b.replicas {
            let s = usize::from(shard);
            report.shard_epochs[s] = report.shard_epochs[s].max(r.epoch);
            if let Some((_, _, id)) = best[s] {
                if id == b.id {
                    report.shard_logs[s] = r.log;
                }
            }
        }
        for c in b.clients {
            report.acked.push((c.state.uid, c.state.acked));
        }
    }
    report.acked.sort_by_key(|(uid, _)| *uid);
    report.committed_entries = report.shard_logs.iter().map(|l| l.len() as u64).sum();
    report.ok_ops = slo.ok_in_window + slo.ok_out_window;
    report.failed_ops = slo.failures;
    report.stale_served = slo.stale_served;
    report.timeouts = slo.timeouts;
    report.retries = slo.retries;
    report.availability_in_window = slo.availability_in_window();
    report.availability_out_window = slo.availability_out_window();
    assert_eq!(
        slo.completed() + report.crashed_ops,
        report.total_client_ops,
        "client operations went missing"
    );
    report.slo = slo;
    report.digest = digest.0;
    report
}

impl ServiceConfig {
    /// Runs the service on the conservative-parallel engine with
    /// `threads` workers. The report — and any metrics or bench JSON
    /// derived from it — is bit-identical for every thread count.
    pub fn run_parallel(&self, threads: usize) -> ServiceRunReport {
        assert!(threads >= 1, "need at least one worker thread");
        let mut boards = make_boards(self);
        let par_cfg = ParConfig::new(self.lookahead())
            .with_threads(threads)
            .with_channel_capacity(256);
        let par = run_conservative(&mut boards, &par_cfg);
        finish_run(self, boards, par.epochs, par.epochs_skipped, par.messages)
    }

    /// Runs the service on the sequential reference driver. Exists to
    /// validate the parallel engine:
    /// [`ServiceRunReport::assert_matches`] against any
    /// [`ServiceConfig::run_parallel`] report must hold.
    pub fn run_reference(&self) -> ServiceRunReport {
        let mut boards = make_boards(self);
        let messages = run_boards_reference(&mut boards);
        finish_run(self, boards, 0, 0, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_completes_clean() {
        let cfg = ServiceConfig::small();
        let r = cfg.run_reference();
        assert_eq!(r.total_client_ops, 4 * 2 * 24);
        assert_eq!(r.ok_ops, r.total_client_ops);
        assert_eq!(r.failed_ops, 0);
        assert_eq!(r.crashed_ops, 0);
        assert_eq!(r.stale_served, 0);
        assert_eq!(r.failovers, 0);
        assert_eq!(r.crashes, 0);
        assert_eq!(r.availability_in_window, 1.0);
        assert_eq!(r.availability_out_window, 1.0);
        assert!(r.shard_epochs.iter().all(|&e| e == 0));
        assert!(r.committed_entries > 0);
        r.verify_linearizable(cfg.store).expect("linearizable");
        r.audit_zero_lost_acks().expect("no lost acks");
    }

    #[test]
    fn parallel_matches_reference_across_threads() {
        let cfg = ServiceConfig::small().with_scenario(FaultScenario::CrashOneBoard);
        let reference = cfg.run_reference();
        assert_eq!(reference.epochs, 0);
        let mut parallel: Vec<ServiceRunReport> = [1usize, 2, 4]
            .iter()
            .map(|&t| cfg.run_parallel(t))
            .collect();
        for p in &parallel {
            p.assert_matches(&reference);
        }
        let first = parallel.remove(0);
        assert!(first.epochs > 0);
        for p in &parallel {
            assert_eq!(*p, first, "thread counts diverge even on epochs");
        }
    }

    #[test]
    fn crash_one_board_fails_over_and_loses_nothing() {
        let cfg = ServiceConfig::small().with_scenario(FaultScenario::CrashOneBoard);
        let r = cfg.run_reference();
        assert_eq!(r.crashes, 1);
        assert_eq!(r.rejoins, 1);
        assert!(
            r.failovers >= 1,
            "the crashed board's shards must fail over"
        );
        assert!(r.slo.failover.count() > 0, "failover latency recorded");
        assert!(
            r.catchups_completed >= 1,
            "the rejoined board re-replicates"
        );
        assert!(
            r.availability_out_window >= 0.99,
            "out-of-window availability {} below SLO",
            r.availability_out_window
        );
        assert_eq!(
            r.ok_ops + r.failed_ops + r.crashed_ops,
            r.total_client_ops,
            "every op ends in a result, a typed error, or a crash void"
        );
        r.verify_linearizable(cfg.store).expect("linearizable");
        r.audit_zero_lost_acks()
            .expect("no acknowledged write lost");
    }

    #[test]
    fn partition_heal_fences_the_stale_primary() {
        let cfg = ServiceConfig::small().with_scenario(FaultScenario::PartitionHeal);
        let r = cfg.run_reference();
        assert!(r.partition_drops > 0, "the partition must drop frames");
        assert!(r.failovers >= 1, "isolated primaries must be failed over");
        assert!(
            r.fenced + r.step_downs >= 1,
            "the stale primary must be fenced or step down"
        );
        r.verify_linearizable(cfg.store).expect("linearizable");
        r.audit_zero_lost_acks()
            .expect("no acknowledged write lost");
    }

    #[test]
    fn rolling_crashes_run_identically_per_seed() {
        let cfg = ServiceConfig::small().with_scenario(FaultScenario::RollingCrashes);
        let a = cfg.run_reference();
        let b = cfg.run_reference();
        assert_eq!(a, b, "same-seed runs must be identical");
        assert_eq!(a.crashes, 3);
        assert_eq!(a.rejoins, 3);
        a.verify_linearizable(cfg.store).expect("linearizable");
        a.audit_zero_lost_acks()
            .expect("no acknowledged write lost");
        // A different seed takes a different path but stays safe.
        let c = cfg.with_seed(0x0D15_EA5E).run_reference();
        c.verify_linearizable(cfg.store).expect("linearizable");
        c.audit_zero_lost_acks()
            .expect("no acknowledged write lost");
    }

    #[test]
    fn scenario_labels_and_windows_are_stable() {
        let labels: Vec<&str> = FaultScenario::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "none",
                "crash_one_board",
                "rolling_crashes",
                "partition_heal"
            ]
        );
        assert!(FaultScenario::Baseline.fault_window().is_none());
        for s in FaultScenario::all().into_iter().skip(1) {
            let (from, until) = s.fault_window().expect("faulty scenarios have windows");
            assert!(from < until);
        }
    }

    #[test]
    #[should_panic(expected = "solo-commit safety")]
    fn validate_rejects_unsafe_replication_budget() {
        let mut cfg = ServiceConfig::small();
        cfg.rep_timeout = Duration::from_us(5);
        cfg.rep_retry_budget = 2;
        cfg.validate();
    }
}
