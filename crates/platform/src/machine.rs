//! Full-machine assembly: ECI system + FPGA shell + BMC + boot.
//!
//! [`EnzianMachine`] is the "one object" integration point the examples
//! and integration tests drive: it boots through the BMC's declaratively
//! solved power sequence, programs the shell bitstream, brings up the ECI
//! links, and then exposes the coherent memory system, the shell, and the
//! management plane.

use enzian_bmc::boot::{BootError, BootSequencer};
use enzian_bmc::pmbus::PmbusNetwork;
use enzian_bmc::power::PowerModel;
use enzian_eci::{EciSystem, EciSystemConfig};
use enzian_shell::Shell;
use enzian_sim::Time;

/// Machine-level configuration.
///
/// Construct from the named preset ([`MachineConfig::enzian`]) and
/// adjust fields with the `with_*` setters.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct MachineConfig {
    /// The coherent-system configuration.
    pub eci: EciSystemConfig,
    /// Number of vFPGA slots in the shell bitstream.
    pub shell_slots: u8,
}

impl MachineConfig {
    /// The shipping configuration.
    pub fn enzian() -> Self {
        MachineConfig {
            eci: EciSystemConfig::enzian(),
            shell_slots: 2,
        }
    }

    /// Replaces the coherent-system configuration.
    pub fn with_eci(mut self, eci: EciSystemConfig) -> Self {
        self.eci = eci;
        self
    }

    /// Sets the number of vFPGA slots in the shell bitstream.
    pub fn with_shell_slots(mut self, shell_slots: u8) -> Self {
        self.shell_slots = shell_slots;
        self
    }
}

/// A booted (or booting) Enzian.
pub struct EnzianMachine {
    config: MachineConfig,
    eci: EciSystem,
    shell: Shell,
    pmbus: PmbusNetwork,
    power: PowerModel,
    boot: BootSequencer,
    linux_at: Option<Time>,
}

impl std::fmt::Debug for EnzianMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnzianMachine")
            .field("linux_at", &self.linux_at)
            .finish()
    }
}

impl EnzianMachine {
    /// Creates an unpowered machine.
    pub fn new(config: MachineConfig) -> Self {
        let pmbus = PmbusNetwork::board();
        let power = PowerModel::new(&pmbus);
        EnzianMachine {
            eci: EciSystem::new(config.eci),
            shell: Shell::new(config.shell_slots),
            pmbus,
            power,
            boot: BootSequencer::new(),
            config,
            linux_at: None,
        }
    }

    /// Runs the complete §4.4 boot choreography: PSU → BMC → solved
    /// power sequence → FPGA bitstream → CPU release → BDK → ATF → UEFI
    /// → Linux. Returns the instant Linux is up.
    ///
    /// # Errors
    ///
    /// Propagates power-sequencing or PMBus failures.
    pub fn boot_to_linux(&mut self, now: Time) -> Result<Time, BootError> {
        let bmc_ready = self.boot.psu_plugged(now);
        let rails_up = self.boot.common_power_up(&mut self.pmbus, bmc_ready)?;
        let fpga_done = self.boot.program_fpga(rails_up)?;
        let bdk = self.boot.cpu_power_up(fpga_done)?;
        // The BDK brings up the ECI links before handing off (§4.4:
        // "the BDK is responsible for bringing up the ECI protocol").
        self.eci.links_mut().train(0, bdk, 12);
        self.eci.links_mut().train(1, bdk, 12);
        let linux = self.boot.boot_linux(bdk)?;
        self.eci.links_mut().poll(linux);
        self.linux_at = Some(linux);
        Ok(linux)
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// When Linux came up, if booted.
    pub fn linux_at(&self) -> Option<Time> {
        self.linux_at
    }

    /// The coherent two-node system.
    pub fn eci(&mut self) -> &mut EciSystem {
        &mut self.eci
    }

    /// The FPGA shell.
    pub fn shell(&mut self) -> &mut Shell {
        &mut self.shell
    }

    /// The management network.
    pub fn pmbus(&mut self) -> &mut PmbusNetwork {
        &mut self.pmbus
    }

    /// The electrical power model bound to this board.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The boot sequencer (for event inspection).
    pub fn boot_events(&self) -> &[enzian_bmc::boot::BootEvent] {
        self.boot.events()
    }
}

/// Publishes the coherent system's full metric tree under
/// `prefix.eci.*`.
impl enzian_sim::Instrumented for EnzianMachine {
    fn export_metrics(&self, prefix: &str, registry: &mut enzian_sim::MetricsRegistry) {
        self.eci.export_metrics(&format!("{prefix}.eci"), registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enzian_bmc::boot::BootPhase;
    use enzian_eci::link::LinkState;
    use enzian_mem::Addr;

    #[test]
    fn machine_boots_and_is_coherent() {
        let mut m = EnzianMachine::new(MachineConfig::enzian());
        let linux = m.boot_to_linux(Time::ZERO).expect("boot");
        // Boot takes on the order of a minute and a half (BMC 25 s +
        // power sequence + FPGA 8 s + firmware chain + Linux 35 s).
        let secs = linux.as_secs_f64();
        assert!((60.0..180.0).contains(&secs), "boot took {secs:.0} s");

        // Both links trained by the BDK.
        assert!(matches!(
            m.eci().links().link_state(0),
            LinkState::Up { .. }
        ));
        assert!(matches!(
            m.eci().links().link_state(1),
            LinkState::Up { .. }
        ));

        // The coherent system works end to end after boot.
        let data = [9u8; 128];
        let t = m.eci().fpga_write_line(linux, Addr(0x1000), &data);
        let (read, _) = m.eci().cpu_read_line(t, Addr(0x1000));
        assert_eq!(read, data);
        m.eci().checker().assert_clean();
    }

    #[test]
    fn boot_events_cover_all_phases() {
        let mut m = EnzianMachine::new(MachineConfig::enzian());
        m.boot_to_linux(Time::ZERO).unwrap();
        let phases: Vec<BootPhase> = m.boot_events().iter().map(|e| e.phase).collect();
        assert!(phases.contains(&BootPhase::RailsUp));
        assert!(phases.contains(&BootPhase::FpgaProgrammed));
        assert!(phases.contains(&BootPhase::LinuxBooted));
        // FPGA must be programmed before the CPU is released (§4.5).
        let idx = |p| phases.iter().position(|&x| x == p).unwrap();
        assert!(idx(BootPhase::FpgaProgrammed) < idx(BootPhase::CpuReleased));
    }
}
