//! Property tests for cluster address striping and bridge accounting.
//!
//! The global address space is striped board-by-board in `slice_bytes`
//! chunks; these tests pin the routing at every slice boundary and
//! check — over randomized cluster geometries — that the algebraic
//! definition `owner = global / slice` holds everywhere. The second
//! half ties [`FlowStats`] to the fabric: every directed flow's wire
//! bytes must equal its payload bytes plus `frames ×` [`BRIDGE_HEADER`],
//! and request/response frame counts must balance.

use enzian_platform::{BoardId, ClusterWorkload, EnzianCluster, BRIDGE_HEADER};
use enzian_sim::SimRng;

const MIB: u64 = 1 << 20;

#[test]
fn slice_boundaries_route_to_the_owning_board() {
    let slice = 4 * MIB;
    let c = EnzianCluster::new(5, slice);
    for b in 0..5u64 {
        let base = b * slice;
        // First byte of the slice.
        assert_eq!(c.owner_of(base).0, BoardId(b as u8));
        assert_eq!(c.owner_of(base).1 .0, 0);
        // Last byte of the slice.
        assert_eq!(c.owner_of(base + slice - 1).0, BoardId(b as u8));
        assert_eq!(c.owner_of(base + slice - 1).1 .0, slice - 1);
    }
    // First byte past a boundary belongs to the next board.
    assert_eq!(c.owner_of(slice).0, BoardId(1));
    // Last byte of the whole global space.
    let last = c.global_bytes() - 1;
    assert_eq!(c.owner_of(last).0, BoardId(4));
    assert_eq!(c.owner_of(last).1 .0, slice - 1);
}

#[test]
#[should_panic(expected = "beyond global space")]
fn first_address_past_the_global_space_is_rejected() {
    let c = EnzianCluster::new(3, MIB);
    let _ = c.owner_of(c.global_bytes());
}

/// Randomized sweep: for arbitrary geometries and addresses, routing
/// obeys the striping algebra exactly.
#[test]
fn randomized_addresses_obey_the_striping_algebra() {
    let mut rng = SimRng::seed_from(0x57121);
    for _ in 0..64 {
        let n = 2 + rng.next_below(7) as usize;
        let slice = (1 + rng.next_below(64)) * MIB;
        let c = EnzianCluster::new(n, slice);
        for _ in 0..256 {
            let global = rng.next_below(c.global_bytes());
            let (board, local) = c.owner_of(global);
            assert_eq!(u64::from(board.0), global / slice);
            assert_eq!(local.0, global % slice);
            assert!(local.0 < slice);
            // Reassembling the pieces recovers the address.
            assert_eq!(u64::from(board.0) * slice + local.0, global);
        }
    }
}

/// Bridge accounting: observed fabric byte counts decompose exactly
/// into payload plus `BRIDGE_HEADER` per frame, for every directed
/// flow, and in aggregate.
#[test]
fn flow_stats_match_bridge_header_accounting() {
    let w = ClusterWorkload::small().with_ops_per_stream(96);
    let r = EnzianCluster::new(4, MIB).run_parallel(&w, 2);
    assert!(r.bridge_frames > 0, "workload must bridge traffic");
    let mut frames = 0;
    let mut payload = 0;
    let mut wire = 0;
    for (src, row) in r.flows.iter().enumerate() {
        for (dst, f) in row.iter().enumerate() {
            if src == dst {
                assert_eq!(*f, Default::default(), "no flow to self");
                continue;
            }
            assert_eq!(
                f.wire_bytes,
                f.payload_bytes + f.frames * BRIDGE_HEADER,
                "flow {src}->{dst} header accounting"
            );
            frames += f.frames;
            payload += f.payload_bytes;
            wire += f.wire_bytes;
        }
    }
    assert_eq!(frames, r.bridge_frames);
    assert_eq!(payload, r.bridge_payload_bytes);
    assert_eq!(wire, r.bridge_wire_bytes);
    assert_eq!(wire, payload + frames * BRIDGE_HEADER);
}

/// Every request crosses the fabric exactly twice (request + response),
/// so with no faults the frame count is twice the bridged op count and
/// reverse flows carry the responses.
#[test]
fn request_and_response_frames_balance() {
    let w = ClusterWorkload::small();
    let r = EnzianCluster::new(3, MIB).run_parallel(&w, 2);
    assert_eq!(r.nacks, 0, "fault-free run");
    assert_eq!(r.bridge_frames, 2 * (r.remote_reads + r.remote_writes));
    // Each bridged op carries exactly one 128-byte line (on the request
    // for writes, on the response for reads).
    assert_eq!(
        r.bridge_payload_bytes,
        128 * (r.remote_reads + r.remote_writes)
    );
    for (src, row) in r.flows.iter().enumerate() {
        for (dst, f) in row.iter().enumerate() {
            if f.frames > 0 {
                // A response flows back for every request: the reverse
                // flow exists whenever the forward one does.
                assert!(
                    r.flows[dst][src].frames > 0,
                    "flow {src}->{dst} has no response traffic"
                );
            }
        }
    }
}
