//! Registry-wide invariants for the unified `Experiment` API.

use enzian_platform::experiments::{self, ExperimentCtx};
use enzian_sim::MetricsRegistry;

/// Every registered experiment must be documented in
/// `docs/BENCH_SCHEMA.md`: the schema index is the contract downstream
/// tooling reads, so an experiment without a `BENCH_<name>.json` entry
/// is unreviewable telemetry.
#[test]
fn every_experiment_has_a_bench_schema_entry() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/BENCH_SCHEMA.md");
    let schema =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    for e in experiments::registry() {
        let entry = format!("BENCH_{}.json", e.name());
        assert!(
            schema.contains(&entry),
            "docs/BENCH_SCHEMA.md has no entry for {entry}"
        );
    }
}

/// `find()` resolves every registered name and rejects unknown ones
/// with an error that lists the whole registry.
#[test]
fn find_round_trips_every_name() {
    for e in experiments::registry() {
        assert_eq!(experiments::find(e.name()).unwrap().name(), e.name());
    }
    let err = experiments::find("no_such_figure")
        .err()
        .expect("must fail");
    for e in experiments::registry() {
        assert!(err.contains(e.name()), "error does not list {}", e.name());
    }
}

/// The trait contract on a real (cheap) experiment: tables are
/// rectangular against their headers, and render consumes the bundle
/// run produced.
#[test]
fn fig3_runs_through_the_trait_with_rectangular_tables() {
    let e = experiments::find("fig3").unwrap();
    assert!(!e.needs_threads());
    let mut reg = MetricsRegistry::new();
    let rows = e.run(&mut ExperimentCtx {
        reg: &mut reg,
        threads: 1,
    });
    assert_eq!(rows.tables.len(), 1);
    let t = &rows.tables[0];
    assert_eq!(t.name, "fig3");
    assert!(!t.rows.is_empty());
    for row in &t.rows {
        assert_eq!(row.len(), t.header.len(), "ragged row in {}", t.name);
    }
    let rendered = e.render(&rows);
    assert!(rendered.contains("Fig. 3"), "render lost the title");
    assert!(
        reg.export_json().contains("fig3.sim_time_ps"),
        "run did not publish the standard header counters"
    );
}
