//! The traffic generator's cross-thread determinism battery.
//!
//! Same contract as `par_determinism.rs`: thread count is never
//! observable. Every report, metric export and state digest out of the
//! connection-churn generator is a pure function of the workload, at
//! threads ∈ {1, 2, 8}, against the sequential reference engine, and
//! under an active segment-loss fault plan. The full-size legs behind
//! `BENCH_traffic.json` run in release through `make traffic`; these
//! tests drive scaled-down workloads through the identical code path.

use enzian_platform::{TrafficRunReport, TrafficStack, TrafficWorkload};
use enzian_sim::{Duration, MetricsRegistry};

const THREADS: [usize; 3] = [1, 2, 8];

/// Every thread count reproduces the sequential reference engine
/// bit-for-bit, and all parallel runs agree down to epoch counts.
#[test]
fn traffic_reports_are_byte_identical_across_threads() {
    let w = TrafficWorkload::small().with_boards(4);
    let reference = w.run_reference();
    assert!(reference.completed > 0, "sessions must complete");
    let reports: Vec<TrafficRunReport> = THREADS.iter().map(|&t| w.run_parallel(t)).collect();
    for r in &reports {
        r.assert_matches(&reference);
    }
    for r in &reports[1..] {
        assert_eq!(*r, reports[0]);
    }
}

/// The metric export — the exact content of `BENCH_traffic.json`'s
/// `metrics` map — is byte-identical for every thread count.
#[test]
fn traffic_exports_are_byte_identical_across_threads() {
    let w = TrafficWorkload::small().with_stack(TrafficStack::Hybrid);
    let runs: Vec<(String, String)> = THREADS
        .iter()
        .map(|&t| {
            let mut reg = MetricsRegistry::new();
            w.run_parallel(t).export_metrics("traffic.test", &mut reg);
            (reg.export_text(), reg.export_json())
        })
        .collect();
    let (text0, json0) = &runs[0];
    for (text, json) in &runs[1..] {
        assert_eq!(text, text0, "text export depends on the thread count");
        assert_eq!(json, json0, "json export depends on the thread count");
    }
}

/// The same invariant holds with a probabilistic segment-loss plan
/// active: drops, rewinds and recoveries land identically for every
/// thread count and for the reference engine.
#[test]
fn traffic_is_deterministic_under_an_active_fault_plan() {
    let w = TrafficWorkload::small()
        .with_sessions_per_board(24)
        .with_bytes_per_session(64 * 1024)
        .with_loss_bp(200);
    let reference = w.run_reference();
    assert!(reference.losses_injected > 0, "the loss plan must fire");
    assert!(
        reference.retransmissions > 0,
        "injected loss must force retransmissions"
    );
    let reports: Vec<TrafficRunReport> = THREADS.iter().map(|&t| w.run_parallel(t)).collect();
    for r in &reports {
        r.assert_matches(&reference);
    }
    for r in &reports[1..] {
        assert_eq!(*r, reports[0]);
    }
}

/// The client → proxy → server chain is deterministic too, and really
/// relays: every session is spliced through the middle board.
#[test]
fn proxy_chain_is_deterministic_across_threads() {
    let w = TrafficWorkload::small().with_proxy();
    let reference = w.run_reference();
    assert_eq!(reference.relayed_sessions, reference.completed);
    assert!(reference.relayed_bytes > 0);
    for &t in &THREADS {
        w.run_parallel(t).assert_matches(&reference);
    }
}

/// Flow-table property: under sustained churn the slab reuses retired
/// slots instead of growing — the table never allocates past the
/// concurrency high-water mark, which stays far below the total number
/// of sessions pushed through it.
#[test]
fn flow_table_reuses_slots_under_peak_churn() {
    // Sized so a session's whole life (handshake + 8 KiB + 20 µs hold)
    // fits well inside the 8 µs open spacing: the table must cycle, not
    // fill — only a handful of the 512 sessions per board are ever live
    // at once.
    let w = TrafficWorkload::small()
        .with_boards(2)
        .with_sessions_per_board(512)
        .with_open_gap(Duration::from_us(8))
        .with_hold(Duration::from_us(20));
    let r = w.run_parallel(2);
    assert_eq!(r.opened, w.total_sessions());
    assert_eq!(r.completed, r.opened);
    // Slab invariant: allocated slots == peak live flows, exactly.
    assert_eq!(r.table_slots, r.peak_flows);
    // Churn invariant: the table stayed bounded while every session
    // cycled through it — the peak is a small fraction of the opens.
    assert!(
        r.peak_flows < r.opened / 2,
        "peak {} flows for {} sessions: slots are not being reused",
        r.peak_flows,
        r.opened
    );
}

/// The digest tracks the workload seed, not the engine: same seed and
/// different thread counts agree, different seeds diverge.
#[test]
fn digest_tracks_the_seed_not_the_engine() {
    let w = TrafficWorkload::small().with_loss_bp(100);
    let a = w.run_parallel(1);
    let b = w.run_parallel(8);
    assert_eq!(a.digest, b.digest);
    let other = w.with_seed(w.seed ^ 1).run_parallel(8);
    assert_ne!(
        a.digest, other.digest,
        "digest must be sensitive to the loss-plan seed"
    );
}
