//! Safety battery for the replicated KV service.
//!
//! Across many seeds and the harshest fault scenarios, every run must
//! uphold the two safety properties the service promises regardless of
//! crash/partition timing:
//!
//! 1. **Linearizability of the committed logs** — each shard's
//!    authoritative log replays cleanly against a sequential
//!    [`enzian_apps::KvStore`] shadow (epochs monotone, indexes dense,
//!    recorded results reproduced).
//! 2. **Zero lost acknowledged writes** — every mutation a client got a
//!    positive ack for (and that no later acked op overwrote) is
//!    present in the replayed final state.
//!
//! Liveness rides along: every client op terminates (ok, typed error,
//! or voided by its own board's crash), so the accounting below is
//! exact, and out-of-window availability stays within the SLO.

use enzian_platform::{FaultScenario, ServiceConfig};

/// Seeds for the property sweep: the default seed plus 11 arbitrary
/// others, exercising different crash/failover interleavings.
const SEEDS: [u64; 12] = [
    0x5E11_ACE5,
    1,
    2,
    3,
    0xDEAD_BEEF,
    0xBAD_C0FFEE,
    0x1234_5678_9ABC_DEF0,
    42,
    0xFEED_FACE,
    7,
    0xA5A5_A5A5,
    0x0F0F_0F0F_F0F0_F0F0,
];

fn check(cfg: ServiceConfig) {
    let seed = cfg.seed;
    let scenario = cfg.scenario.label();
    let r = cfg.run_reference();
    assert_eq!(
        r.ok_ops + r.failed_ops + r.crashed_ops,
        r.total_client_ops,
        "[{scenario} seed {seed:#x}] every op must terminate"
    );
    r.verify_linearizable(cfg.store)
        .unwrap_or_else(|e| panic!("[{scenario} seed {seed:#x}] not linearizable: {e}"));
    r.audit_zero_lost_acks()
        .unwrap_or_else(|e| panic!("[{scenario} seed {seed:#x}] lost acknowledged write: {e}"));
}

/// One board crashes mid-window and rejoins: across all seeds the
/// committed logs stay linearizable and no acked write is lost, even
/// when the failover lands mid-operation.
#[test]
fn crash_one_board_is_linearizable_across_seeds() {
    for seed in SEEDS {
        check(
            ServiceConfig::small()
                .with_seed(seed)
                .with_scenario(FaultScenario::CrashOneBoard),
        );
    }
}

/// Three staggered crashes (plus random delivery delays) are the
/// harshest plan: catch-up, fencing and solo commits all interleave,
/// and the safety properties must still hold for every seed.
#[test]
fn rolling_crashes_are_linearizable_across_seeds() {
    for seed in SEEDS {
        check(
            ServiceConfig::small()
                .with_seed(seed)
                .with_scenario(FaultScenario::RollingCrashes),
        );
    }
}

/// A partitioned (but live) board keeps trying to serve: fencing must
/// prevent its stale epoch from ever acking a write the new primary
/// doesn't have.
#[test]
fn partition_heal_is_linearizable_across_seeds() {
    for seed in SEEDS {
        check(
            ServiceConfig::small()
                .with_seed(seed)
                .with_scenario(FaultScenario::PartitionHeal),
        );
    }
}

/// On the standard seed the crash scenario also meets its SLO: ≥ 99%
/// availability outside the fault window, a recorded failover-recovery
/// distribution, and completed re-replication.
#[test]
fn crash_one_board_meets_the_slo_on_the_standard_seed() {
    let cfg = ServiceConfig::standard().with_scenario(FaultScenario::CrashOneBoard);
    let r = cfg.run_reference();
    assert!(r.crashes >= 1, "the fault plan must fire");
    assert!(r.failovers >= 1, "the crash must force a failover");
    assert!(
        r.slo.failover.count() > 0,
        "failover recovery must be measured"
    );
    assert!(r.catchups_completed >= 1, "the rejoined board catches up");
    assert!(
        r.availability_out_window >= 0.99,
        "out-of-window availability {} below the 99% SLO",
        r.availability_out_window
    );
    r.verify_linearizable(cfg.store).unwrap();
    r.audit_zero_lost_acks().unwrap();
}
