//! The cross-thread determinism battery.
//!
//! The conservative-parallel engine's contract is that thread count is
//! *never observable*: every report, metric export and trace digest is
//! a pure function of the workload seed. These tests run the real
//! experiment drivers at threads ∈ {1, 2, 8}, against the sequential
//! reference engine, and under an active fault plan, asserting
//! byte-identical output everywhere.

use enzian_eci::EciSystemConfig;
use enzian_platform::experiments::{cluster_scale, fault_sweep};
use enzian_platform::{
    BoardId, ClusterRunReport, ClusterWorkload, EnzianCluster, FaultScenario, ServiceConfig,
};
use enzian_sim::MetricsRegistry;

const THREADS: [usize; 3] = [1, 2, 8];
const MIB: u64 = 1 << 20;

/// `cluster_scale` — the driver behind `BENCH_cluster_scale.json` —
/// renders byte-identical registry exports for every thread count.
#[test]
fn cluster_scale_exports_are_byte_identical_across_threads() {
    let runs: Vec<(Vec<cluster_scale::ClusterScaleRow>, String, String)> = THREADS
        .iter()
        .map(|&t| {
            let mut reg = MetricsRegistry::new();
            let rows = cluster_scale::run_instrumented(t, &mut reg);
            (rows, reg.export_text(), reg.export_json())
        })
        .collect();
    let (rows0, text0, json0) = &runs[0];
    for (rows, text, json) in &runs[1..] {
        assert_eq!(rows, rows0, "rows depend on the thread count");
        assert_eq!(text, text0, "text export depends on the thread count");
        assert_eq!(json, json0, "json export depends on the thread count");
    }
}

/// Every thread count reproduces the sequential reference engine
/// bit-for-bit — reports, digests and captured wire traces — on a
/// trace-capturing cluster.
#[test]
fn parallel_engine_matches_reference_with_traces_captured() {
    let w = ClusterWorkload::small();
    let cfg = EciSystemConfig::enzian().with_capture_trace(true);
    let make = || EnzianCluster::with_board_config(3, MIB, cfg);
    let reference = make().run_reference(&w);
    assert!(
        reference.remote_reads + reference.remote_writes > 0,
        "workload must exercise the bridge"
    );
    for &t in &THREADS {
        let par = make().run_parallel(&w, t);
        par.assert_matches(&reference);
        assert_eq!(
            par.trace_digest, reference.trace_digest,
            "trace digest diverged at {t} threads"
        );
    }
}

/// The same invariant holds with fault injection active: nacks and
/// failures land identically for every thread count and for the
/// reference engine.
#[test]
fn parallel_engine_is_deterministic_under_an_active_fault_plan() {
    let w = ClusterWorkload::small()
        .with_ops_per_stream(64)
        .with_fault_rate_bp(500);
    let mut cluster = EnzianCluster::new(2, MIB);
    let reference = cluster.run_reference(&w);
    // The plan must actually have fired (recovery may still absorb
    // every fault without surfacing a failure — that's its job).
    let injected: u64 = (0..2)
        .map(|b| {
            cluster
                .board(BoardId(b))
                .fault_plan()
                .expect("plan stays installed")
                .total_injected()
        })
        .sum();
    assert!(injected > 0, "fault plan at 5% must inject something");
    let reports: Vec<ClusterRunReport> = THREADS
        .iter()
        .map(|&t| EnzianCluster::new(2, MIB).run_parallel(&w, t))
        .collect();
    for r in &reports {
        r.assert_matches(&reference);
    }
    // Including epoch counts, all parallel runs are identical.
    for r in &reports[1..] {
        assert_eq!(*r, reports[0]);
    }
}

/// `fault_sweep` — the other seeded bench driver — exports identically
/// whether run alone or on 8 concurrent threads: no hidden global
/// state leaks between instances.
#[test]
fn fault_sweep_is_invariant_across_concurrent_instances() {
    let baseline = {
        let mut reg = MetricsRegistry::new();
        let rows = fault_sweep::run_instrumented(&mut reg);
        (rows, reg.export_json())
    };
    for &n in &[2usize, 8] {
        let results: Vec<(Vec<fault_sweep::FaultSweepRow>, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    scope.spawn(|| {
                        let mut reg = MetricsRegistry::new();
                        let rows = fault_sweep::run_instrumented(&mut reg);
                        (rows, reg.export_json())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (rows, json) in &results {
            assert_eq!(rows, &baseline.0, "{n} concurrent sweeps diverged");
            assert_eq!(json, &baseline.1, "{n} concurrent exports diverged");
        }
    }
}

/// The replicated KV service under an active crash-fault plan produces
/// bit-identical reports — SLO histograms, state digest, committed logs
/// and all — for every thread count and for the reference engine.
#[test]
fn service_with_crash_plan_is_byte_identical_across_threads() {
    let cfg = ServiceConfig::small().with_scenario(FaultScenario::RollingCrashes);
    let reference = cfg.run_reference();
    assert!(reference.crashes > 0, "the crash plan must fire");
    assert!(reference.failovers > 0, "crashes must force failovers");
    let reports: Vec<_> = THREADS.iter().map(|&t| cfg.run_parallel(t)).collect();
    for r in &reports {
        r.assert_matches(&reference);
    }
    // Including engine epoch counts, all parallel runs are identical.
    for r in &reports[1..] {
        assert_eq!(*r, reports[0]);
    }
}

/// The `service` bench driver — the path behind `BENCH_service.json` —
/// renders byte-identical registry exports for every thread count.
#[test]
fn service_exports_are_byte_identical_across_threads() {
    use enzian_platform::experiments::service;
    let runs: Vec<(Vec<service::ServiceRow>, String, String)> = THREADS
        .iter()
        .map(|&t| {
            let mut reg = MetricsRegistry::new();
            let rows = service::run_instrumented(t, &mut reg);
            (rows, reg.export_text(), reg.export_json())
        })
        .collect();
    let (rows0, text0, json0) = &runs[0];
    for (rows, text, json) in &runs[1..] {
        assert_eq!(rows, rows0, "rows depend on the thread count");
        assert_eq!(text, text0, "text export depends on the thread count");
        assert_eq!(json, json0, "json export depends on the thread count");
    }
}

/// Two same-seed runs of the full parallel path are identical even
/// with different thread counts *and* different workload-irrelevant
/// settings, while a different seed changes the digest.
#[test]
fn digest_tracks_the_seed_not_the_engine() {
    let w = ClusterWorkload::small();
    let a = EnzianCluster::new(2, MIB).run_parallel(&w, 1);
    let b = EnzianCluster::new(2, MIB).run_parallel(&w, 8);
    assert_eq!(a.trace_digest, b.trace_digest);
    let other = EnzianCluster::new(2, MIB).run_parallel(&w.with_seed(w.seed ^ 1), 8);
    assert_ne!(
        a.trace_digest, other.trace_digest,
        "digest must be sensitive to the workload"
    );
}
