fn main() {
    let rows = enzian_platform::experiments::fig6::run();
    println!("{}", enzian_platform::experiments::fig6::render(&rows));
}
