//! Randomized invariant tests for the cache substrate, driven by the
//! deterministic [`SimRng`] so every failure reproduces exactly.

use enzian_cache::moesi::{check_global_invariant, LineEvent, LineState};
use enzian_cache::{AccessOutcome, L2Cache, L2Config};
use enzian_mem::CacheLine;
use enzian_sim::SimRng;

/// Under any access sequence the cache never exceeds its capacity
/// and hit/miss accounting matches observed outcomes.
#[test]
fn l2_capacity_and_accounting() {
    let mut rng = SimRng::seed_from(0xCAC_0001);
    for _case in 0..32 {
        let n = rng.range(1, 299) as usize;
        let cfg = L2Config::thunderx1().with_capacity_bytes(2048).with_ways(4);
        let mut l2 = L2Cache::new(cfg);
        let cap_lines = (cfg.capacity_bytes / cfg.line_bytes) as usize;
        let mut observed_hits = 0u64;
        for _ in 0..n {
            let line = CacheLine(rng.next_below(64));
            let write = rng.chance(0.5);
            let outcome = if write { l2.write(line) } else { l2.read(line) };
            match outcome {
                AccessOutcome::Hit => observed_hits += 1,
                AccessOutcome::UpgradeMiss => {}
                AccessOutcome::Miss(_) => {
                    l2.fill(
                        line,
                        if write {
                            LineState::Modified
                        } else {
                            LineState::Shared
                        },
                    );
                }
            }
            assert!(l2.resident_lines() <= cap_lines);
        }
        let (hits, ..) = l2.stats();
        assert_eq!(hits, observed_hits);
    }
}

/// Applying any legal event sequence to a line keeps every reached
/// state within the transition relation, and a two-cache system
/// driven by complementary events never violates the global invariant.
#[test]
fn moesi_events_preserve_invariants() {
    let mut rng = SimRng::seed_from(0xCAC_0002);
    for _case in 0..64 {
        let n = rng.range(1, 99) as usize;
        let mut a = LineState::Invalid;
        let mut b = LineState::Invalid;
        for _ in 0..n {
            // Drive cache A; cache B observes the complementary event.
            let (ev_a, ev_b) = match rng.next_below(4) {
                0 => (LineEvent::LocalRead, LineEvent::RemoteRead),
                1 => (LineEvent::LocalWrite, LineEvent::RemoteWrite),
                2 => (LineEvent::RemoteRead, LineEvent::LocalRead),
                _ => (LineEvent::RemoteWrite, LineEvent::LocalWrite),
            };
            let next_a = a.after(ev_a).unwrap_or(a);
            let next_b = b.after(ev_b).unwrap_or(b);
            assert!(a.can_transition(next_a), "{a} -> {next_a}");
            assert!(b.can_transition(next_b), "{b} -> {next_b}");
            a = next_a;
            b = next_b;
            assert!(
                check_global_invariant(&[a, b]).is_ok(),
                "violated with A={a}, B={b}"
            );
        }
    }
}

/// A probe after any access sequence leaves the line unreadable
/// (write probe) or non-writable (read probe).
#[test]
fn probes_enforce_their_contract() {
    let mut rng = SimRng::seed_from(0xCAC_0003);
    for _case in 0..64 {
        let n = rng.range(1, 39) as usize;
        let fills: Vec<u64> = (0..n).map(|_| rng.next_below(16)).collect();
        let for_write = rng.chance(0.5);
        let mut l2 = L2Cache::new(L2Config::thunderx1().with_capacity_bytes(4096).with_ways(2));
        for &l in &fills {
            let line = CacheLine(l);
            if let AccessOutcome::Miss(_) = l2.write(line) {
                l2.fill(line, LineState::Modified);
            }
        }
        let victim = CacheLine(fills[0]);
        l2.probe(victim, for_write);
        let state = l2.state_of(victim);
        if for_write {
            assert_eq!(state, LineState::Invalid);
        } else {
            assert!(!state.is_writable(), "still writable: {}", state);
        }
    }
}
