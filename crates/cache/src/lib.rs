//! CPU cache substrate: the ThunderX-1's L2 cache, MOESI coherence states,
//! PMU counters, and an in-order core timing model.
//!
//! The ThunderX-1 has 48 in-order ARMv8 cores sharing a 16 MiB, 16-way L2
//! cache with 128-byte lines; the L2 is the coherence point that ECI talks
//! to (paper §5.1 attributes ECI read-throughput limits to "the
//! ThunderX-1's L2 cache subsystem, which handles all the transfers on the
//! CPU side"). The crate provides:
//!
//! * [`moesi`] — the five-state MOESI line-state machine with legal
//!   transition checking (shared vocabulary with the `enzian-eci`
//!   directory);
//! * [`l2`] — a set-associative cache model with LRU replacement,
//!   write-back, and coherence probes;
//! * [`pmu`] — the performance-monitoring counters from which Table 1 is
//!   derived (memory stall cycles, L1 refills, cycles);
//! * [`core`] — an in-order core timing model that converts a workload's
//!   compute/memory profile into cycles and PMU counts.

pub mod core;
pub mod l2;
pub mod moesi;
pub mod pmu;

pub use crate::core::{CoreTimingModel, WorkloadProfile};
pub use l2::{AccessOutcome, Eviction, L2Cache, L2Config, ProbeOutcome};
pub use moesi::{
    check_global_invariant, local_step, probe_step, CoherenceRequest, LineEvent, LineState,
    LocalStep, ProbeStep,
};
pub use pmu::Pmu;
