//! Performance-monitoring unit counters.
//!
//! The Fig. 11 / Table 1 experiment collects "interconnect utilization,
//! memory-dependent CPU stall cycles, and L1 refills" from the ThunderX-1
//! PMU. [`Pmu`] is the accumulator for those counters, and exposes the two
//! derived metrics Table 1 reports: memory stalls per cycle and cycles per
//! L1 refill.

/// An accumulator of PMU events for one measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Pmu {
    cycles: u64,
    instructions: u64,
    memory_stall_cycles: u64,
    l1_refills: u64,
    l2_misses: u64,
}

impl Pmu {
    /// Creates a zeroed PMU.
    pub fn new() -> Self {
        Pmu::default()
    }

    /// Adds elapsed core cycles.
    pub fn add_cycles(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Adds retired instructions.
    pub fn add_instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Adds cycles the pipeline stalled waiting on memory.
    pub fn add_memory_stalls(&mut self, n: u64) {
        self.memory_stall_cycles += n;
    }

    /// Adds L1 data-cache refills.
    pub fn add_l1_refills(&mut self, n: u64) {
        self.l1_refills += n;
    }

    /// Adds L2 misses (refills from beyond the L2: DRAM or the remote
    /// node over ECI).
    pub fn add_l2_misses(&mut self, n: u64) {
        self.l2_misses += n;
    }

    /// Total elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total retired instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total memory stall cycles.
    pub fn memory_stall_cycles(&self) -> u64 {
        self.memory_stall_cycles
    }

    /// Total L1 refills.
    pub fn l1_refills(&self) -> u64 {
        self.l1_refills
    }

    /// Total L2 misses.
    pub fn l2_misses(&self) -> u64 {
        self.l2_misses
    }

    /// Table 1, row 1: memory stalls per cycle. Zero when no cycles.
    pub fn memory_stalls_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.memory_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Table 1, row 2: cycles per L1 refill. `None` when no refills.
    pub fn cycles_per_l1_refill(&self) -> Option<f64> {
        (self.l1_refills > 0).then(|| self.cycles as f64 / self.l1_refills as f64)
    }

    /// Instructions per cycle. Zero when no cycles.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Merges another window into this one.
    pub fn merge(&mut self, other: &Pmu) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.memory_stall_cycles += other.memory_stall_cycles;
        self.l1_refills += other.l1_refills;
        self.l2_misses += other.l2_misses;
    }
}

/// Publishes the raw counters and derived rates.
impl enzian_sim::Instrumented for Pmu {
    fn export_metrics(&self, prefix: &str, registry: &mut enzian_sim::MetricsRegistry) {
        registry.counter_set(&format!("{prefix}.cycles"), self.cycles);
        registry.counter_set(&format!("{prefix}.instructions"), self.instructions);
        registry.counter_set(
            &format!("{prefix}.memory_stall_cycles"),
            self.memory_stall_cycles,
        );
        registry.counter_set(&format!("{prefix}.l1_refills"), self.l1_refills);
        registry.counter_set(&format!("{prefix}.l2_misses"), self.l2_misses);
        registry.gauge_set(
            &format!("{prefix}.memory_stalls_per_cycle"),
            self.memory_stalls_per_cycle(),
        );
        registry.gauge_set(&format!("{prefix}.ipc"), self.ipc());
        registry.gauge_set(
            &format!("{prefix}.cycles_per_l1_refill"),
            self.cycles_per_l1_refill().unwrap_or(0.0),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut p = Pmu::new();
        p.add_cycles(1000);
        p.add_memory_stalls(25);
        p.add_l1_refills(4);
        p.add_instructions(800);
        assert!((p.memory_stalls_per_cycle() - 0.025).abs() < 1e-12);
        assert_eq!(p.cycles_per_l1_refill(), Some(250.0));
        assert!((p.ipc() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_pmu_is_safe() {
        let p = Pmu::new();
        assert_eq!(p.memory_stalls_per_cycle(), 0.0);
        assert_eq!(p.cycles_per_l1_refill(), None);
        assert_eq!(p.ipc(), 0.0);
    }

    #[test]
    fn export_publishes_raw_and_derived() {
        let mut p = Pmu::new();
        p.add_cycles(1000);
        p.add_memory_stalls(250);
        p.add_l1_refills(10);
        let mut reg = enzian_sim::MetricsRegistry::new();
        enzian_sim::Instrumented::export_metrics(&p, "cpu.pmu", &mut reg);
        assert_eq!(reg.counter("cpu.pmu.cycles"), 1000);
        assert_eq!(reg.gauge("cpu.pmu.memory_stalls_per_cycle"), Some(0.25));
        assert_eq!(reg.gauge("cpu.pmu.cycles_per_l1_refill"), Some(100.0));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = Pmu::new();
        a.add_cycles(10);
        a.add_l1_refills(1);
        let mut b = Pmu::new();
        b.add_cycles(30);
        b.add_l1_refills(3);
        b.add_memory_stalls(5);
        a.merge(&b);
        assert_eq!(a.cycles(), 40);
        assert_eq!(a.l1_refills(), 4);
        assert_eq!(a.memory_stall_cycles(), 5);
    }
}
