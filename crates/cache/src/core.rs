//! In-order core timing model.
//!
//! The ThunderX-1 trades single-thread performance for parallelism: 48
//! mostly in-order cores at 2.0 GHz. For throughput workloads like the
//! Fig. 11 vision pipeline, an in-order core's steady state is captured by
//! a per-work-unit budget: compute cycles plus memory-stall cycles per
//! remote refill, with aggregate throughput clipped by the shared
//! interconnect. [`CoreTimingModel::steady_state`] evaluates that model
//! and fills a [`Pmu`] with the counters Table 1 reports.

use crate::pmu::Pmu;

/// Per-work-unit cost profile of a workload running on the cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Pure compute cycles per unit (e.g. per pixel).
    pub compute_cycles_per_unit: f64,
    /// Bytes fetched across the interconnect per unit.
    pub remote_bytes_per_unit: f64,
    /// Size of one refill (the 128-byte ECI cache line).
    pub refill_bytes: f64,
    /// Pipeline stall cycles charged per refill (captures refill latency
    /// net of what the in-order core's limited overlap can hide).
    pub stall_cycles_per_refill: f64,
    /// Retired instructions per unit (for IPC reporting).
    pub instructions_per_unit: f64,
}

impl WorkloadProfile {
    /// Remote refills (L1 refill events from beyond L2) per unit.
    pub fn refills_per_unit(&self) -> f64 {
        self.remote_bytes_per_unit / self.refill_bytes
    }

    /// Total cycles per unit when the interconnect is unsaturated.
    pub fn cycles_per_unit_unbounded(&self) -> f64 {
        self.compute_cycles_per_unit + self.stall_cycles_per_refill * self.refills_per_unit()
    }
}

/// Steady-state result for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// Aggregate throughput, units per second.
    pub units_per_sec: f64,
    /// Interconnect traffic generated, bytes per second.
    pub interconnect_bytes_per_sec: f64,
    /// Whether the interconnect clipped throughput.
    pub interconnect_bound: bool,
    /// PMU counters accumulated over a one-second window across all
    /// active cores.
    pub pmu: Pmu,
}

/// The CPU-side timing model: core count and frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreTimingModel {
    /// Core clock in hertz.
    pub freq_hz: f64,
    /// Number of cores present.
    pub cores: u32,
}

impl CoreTimingModel {
    /// The ThunderX-1: 48 cores at 2.0 GHz.
    pub fn thunderx1() -> Self {
        CoreTimingModel {
            freq_hz: 2.0e9,
            cores: 48,
        }
    }

    /// Evaluates the steady state of `profile` on `active_cores` cores
    /// with `interconnect_bytes_per_sec` of shared fetch bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` is zero or exceeds the model's core count,
    /// or if the profile is degenerate (non-positive cycle costs).
    pub fn steady_state(
        &self,
        profile: &WorkloadProfile,
        active_cores: u32,
        interconnect_bytes_per_sec: f64,
    ) -> SteadyState {
        assert!(
            active_cores >= 1 && active_cores <= self.cores,
            "active cores {active_cores} out of range 1..={}",
            self.cores
        );
        assert!(
            profile.compute_cycles_per_unit > 0.0 && profile.refill_bytes > 0.0,
            "degenerate workload profile"
        );

        let n = active_cores as f64;
        let refills_per_unit = profile.refills_per_unit();
        let cycles_unbounded = profile.cycles_per_unit_unbounded();

        // Per-core rate if only latency stalls apply.
        let r_latency = self.freq_hz / cycles_unbounded;
        // Per-core rate ceiling imposed by shared interconnect bandwidth.
        let r_bandwidth = if profile.remote_bytes_per_unit > 0.0 {
            interconnect_bytes_per_sec / (n * profile.remote_bytes_per_unit)
        } else {
            f64::INFINITY
        };

        let interconnect_bound = r_bandwidth < r_latency;
        let per_core_rate = r_latency.min(r_bandwidth);
        let cycles_per_unit = self.freq_hz / per_core_rate;
        // All cycles beyond compute are attributed to memory stalls
        // (latency stalls plus any bandwidth-queueing stalls).
        let stall_per_unit = cycles_per_unit - profile.compute_cycles_per_unit;

        let units_per_sec = per_core_rate * n;
        let mut pmu = Pmu::new();
        // One-second window across all active cores.
        pmu.add_cycles((self.freq_hz * n) as u64);
        pmu.add_memory_stalls((stall_per_unit * units_per_sec) as u64);
        pmu.add_l1_refills((refills_per_unit * units_per_sec) as u64);
        pmu.add_l2_misses((refills_per_unit * units_per_sec) as u64);
        pmu.add_instructions((profile.instructions_per_unit * units_per_sec) as u64);

        SteadyState {
            units_per_sec,
            interconnect_bytes_per_sec: units_per_sec * profile.remote_bytes_per_unit,
            interconnect_bound,
            pmu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            compute_cycles_per_unit: 59.2,
            remote_bytes_per_unit: 4.0,
            refill_bytes: 128.0,
            stall_cycles_per_refill: 46.0,
            instructions_per_unit: 40.0,
        }
    }

    #[test]
    fn compute_bound_scales_linearly_with_cores() {
        let cpu = CoreTimingModel::thunderx1();
        let p = profile();
        let bw = 20e9; // ample
        let one = cpu.steady_state(&p, 1, bw);
        let all = cpu.steady_state(&p, 48, bw);
        assert!(!one.interconnect_bound);
        assert!(!all.interconnect_bound);
        let ratio = all.units_per_sec / one.units_per_sec;
        assert!((ratio - 48.0).abs() < 1e-6, "scaling ratio {ratio}");
    }

    #[test]
    fn baseline_profile_hits_paper_per_core_rate() {
        // ~33 Mpixel/s/core at 2 GHz (Fig. 11 baseline).
        let cpu = CoreTimingModel::thunderx1();
        let s = cpu.steady_state(&profile(), 1, 20e9);
        let mpx = s.units_per_sec / 1e6;
        assert!((31.0..35.0).contains(&mpx), "per-core rate {mpx} Mpx/s");
    }

    #[test]
    fn bandwidth_cap_clips_and_adds_stalls() {
        let cpu = CoreTimingModel::thunderx1();
        let p = profile();
        let tight_bw = 1e9; // 1 GB/s shared
        let s = cpu.steady_state(&p, 48, tight_bw);
        assert!(s.interconnect_bound);
        let expected = tight_bw / p.remote_bytes_per_unit;
        assert!((s.units_per_sec - expected).abs() / expected < 1e-9);
        // Stall fraction rises steeply when bandwidth-bound.
        let unbound = cpu.steady_state(&p, 48, 1e12);
        assert!(s.pmu.memory_stalls_per_cycle() > unbound.pmu.memory_stalls_per_cycle() * 2.0);
    }

    #[test]
    fn pmu_window_is_consistent() {
        let cpu = CoreTimingModel::thunderx1();
        let p = profile();
        let s = cpu.steady_state(&p, 48, 20e9);
        // Cycles = 48 cores for 1 s at 2 GHz.
        assert_eq!(s.pmu.cycles(), 96_000_000_000);
        // Refills per second match bytes / line.
        let expect_refills = s.interconnect_bytes_per_sec / 128.0;
        let got = s.pmu.l1_refills() as f64;
        assert!((got - expect_refills).abs() / expect_refills < 1e-6);
    }

    #[test]
    fn zero_remote_bytes_never_interconnect_bound() {
        let cpu = CoreTimingModel::thunderx1();
        let p = WorkloadProfile {
            remote_bytes_per_unit: 0.0,
            ..profile()
        };
        let s = cpu.steady_state(&p, 48, 1.0);
        assert!(!s.interconnect_bound);
        assert_eq!(s.interconnect_bytes_per_sec, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_cores_panics() {
        let cpu = CoreTimingModel::thunderx1();
        cpu.steady_state(&profile(), 49, 1e9);
    }
}
