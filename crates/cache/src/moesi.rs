//! The MOESI cache-line state machine.
//!
//! ECI is "a MOESI-based protocol with 128-byte cache lines" (paper §4.1).
//! This module defines the five stable states and the legal transition
//! relation, used both by the L2 model in this crate and by the
//! `enzian-eci` directory controller; the generated assertion checkers in
//! `enzian-eci::checker` are built on [`LineState::can_transition`].

use core::fmt;

/// Stable MOESI states of a cache line in one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineState {
    /// Not present.
    #[default]
    Invalid,
    /// Read-only, possibly replicated in other caches, memory up to date.
    Shared,
    /// Read-only in exactly this cache, memory up to date.
    Exclusive,
    /// Dirty but replicated: this cache must supply data and eventually
    /// write back; other caches may hold it Shared.
    Owned,
    /// Dirty and exclusive.
    Modified,
}

/// The event that drives a line-state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineEvent {
    /// Local load miss or hit.
    LocalRead,
    /// Local store.
    LocalWrite,
    /// A remote cache asked to read (we observed a snoop for sharing).
    RemoteRead,
    /// A remote cache asked for ownership (snoop invalidate).
    RemoteWrite,
    /// The line is evicted (capacity/conflict) or recalled.
    Evict,
}

impl LineState {
    /// Whether this cache may satisfy a load from the line.
    pub fn is_readable(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// Whether this cache may satisfy a store without a coherence action.
    pub fn is_writable(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }

    /// Whether the line holds data newer than memory.
    pub fn is_dirty(self) -> bool {
        matches!(self, LineState::Owned | LineState::Modified)
    }

    /// Whether this cache is responsible for supplying data to snoops.
    pub fn is_owner(self) -> bool {
        matches!(
            self,
            LineState::Owned | LineState::Modified | LineState::Exclusive
        )
    }

    /// The state after `event`, or `None` if the event is not meaningful
    /// in this state (e.g. a remote snoop on an Invalid line).
    pub fn after(self, event: LineEvent) -> Option<LineState> {
        use LineEvent::*;
        use LineState::*;
        Some(match (self, event) {
            // Local reads.
            (Invalid, LocalRead) => Shared, // conservative: fill as Shared
            (s, LocalRead) => s,
            // Local writes always end Modified.
            (_, LocalWrite) => Modified,
            // Remote read: dirty data degrades to Owned, clean to Shared.
            (Modified, RemoteRead) | (Owned, RemoteRead) => Owned,
            (Exclusive, RemoteRead) | (Shared, RemoteRead) => Shared,
            (Invalid, RemoteRead) => return None,
            // Remote write invalidates.
            (Invalid, RemoteWrite) => return None,
            (_, RemoteWrite) => Invalid,
            // Eviction.
            (Invalid, Evict) => return None,
            (_, Evict) => Invalid,
        })
    }

    /// Whether a direct transition `self -> next` is legal under *some*
    /// event. This is the relation the protocol checkers enforce.
    ///
    /// Beyond the events in [`LineState::after`], a fill from `Invalid`
    /// may install `Exclusive` when the directory knows there are no
    /// other sharers (the standard E-state optimisation).
    pub fn can_transition(self, next: LineState) -> bool {
        if self == next {
            return true;
        }
        if self == LineState::Invalid && next == LineState::Exclusive {
            return true;
        }
        use LineEvent::*;
        [LocalRead, LocalWrite, RemoteRead, RemoteWrite, Evict]
            .into_iter()
            .any(|e| self.after(e) == Some(next))
    }

    /// All five states, for exhaustive checks.
    pub const ALL: [LineState; 5] = [
        LineState::Invalid,
        LineState::Shared,
        LineState::Exclusive,
        LineState::Owned,
        LineState::Modified,
    ];
}

/// The coherence request a local access requires before it can complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceRequest {
    /// Fetch a readable copy (load miss).
    ReadShared,
    /// Fetch an exclusive copy (store miss).
    ReadExclusive,
    /// Invalidate other sharers of a copy already held (store to S/O).
    Upgrade,
}

/// The side-effect-free outcome of classifying a local access: what the
/// coherence layer must do first, and the state the line assumes once
/// that (possibly empty) request completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalStep {
    /// The request the coherence layer must issue, or `None` when the
    /// access completes locally.
    pub request: Option<CoherenceRequest>,
    /// The line state after the access (and any required request) is done.
    /// For a [`CoherenceRequest::ReadShared`] this is the conservative
    /// `Shared`; the directory may instead grant `Exclusive` when it
    /// knows there are no other sharers.
    pub next: LineState,
}

/// Classifies a local load or store against the line's current state,
/// without mutating anything.
///
/// This is the pure core of the agent side of the protocol: both the
/// [`l2`](crate::l2) model's access path and the `enzian-eci` state-space
/// explorer derive their transitions from it.
pub fn local_step(state: LineState, write: bool) -> LocalStep {
    use LineState::*;
    if write {
        let request = match state {
            Invalid => Some(CoherenceRequest::ReadExclusive),
            Shared | Owned => Some(CoherenceRequest::Upgrade),
            Exclusive | Modified => None,
        };
        LocalStep {
            request,
            next: Modified,
        }
    } else {
        LocalStep {
            request: (state == Invalid).then_some(CoherenceRequest::ReadShared),
            next: state.after(LineEvent::LocalRead).unwrap_or(state),
        }
    }
}

/// The side-effect-free outcome of a remote probe against one cache's
/// copy of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStep {
    /// State after honouring the probe.
    pub next: LineState,
    /// Whether the probe response must carry the line's data (the copy
    /// was dirty and memory is stale).
    pub supplies_data: bool,
}

/// Computes the effect of a probe on a line in `state`, without mutating
/// anything: `invalidate` distinguishes an ownership probe
/// (`RemoteWrite`) from a downgrade probe (`RemoteRead`). A probe of an
/// `Invalid` line is answered cleanly and leaves it `Invalid`.
pub fn probe_step(state: LineState, invalidate: bool) -> ProbeStep {
    let event = if invalidate {
        LineEvent::RemoteWrite
    } else {
        LineEvent::RemoteRead
    };
    ProbeStep {
        next: state.after(event).unwrap_or(state),
        supplies_data: state.is_dirty(),
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            LineState::Invalid => 'I',
            LineState::Shared => 'S',
            LineState::Exclusive => 'E',
            LineState::Owned => 'O',
            LineState::Modified => 'M',
        };
        write!(f, "{c}")
    }
}

/// Checks the global single-writer/multiple-reader invariant over the
/// states one line holds in every cache of the system.
///
/// Returns `Err` with a description when violated. The invariants are:
///
/// 1. at most one cache in `Modified` or `Exclusive`, with every other
///    cache `Invalid`;
/// 2. at most one cache in `Owned`; the rest may be `Shared`.
pub fn check_global_invariant(states: &[LineState]) -> Result<(), String> {
    let m = states
        .iter()
        .filter(|s| matches!(s, LineState::Modified))
        .count();
    let e = states
        .iter()
        .filter(|s| matches!(s, LineState::Exclusive))
        .count();
    let o = states
        .iter()
        .filter(|s| matches!(s, LineState::Owned))
        .count();
    let s_count = states
        .iter()
        .filter(|s| matches!(s, LineState::Shared))
        .count();

    if m + e > 1 {
        return Err(format!("multiple exclusive holders: {m} M, {e} E"));
    }
    if (m + e == 1) && (o + s_count > 0) {
        return Err(format!(
            "exclusive holder coexists with {o} O / {s_count} S copies"
        ));
    }
    if o > 1 {
        return Err(format!("{o} owners for one line"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::*;

    #[test]
    fn predicates() {
        assert!(!Invalid.is_readable());
        assert!(Shared.is_readable() && !Shared.is_writable());
        assert!(Exclusive.is_writable() && !Exclusive.is_dirty());
        assert!(Owned.is_dirty() && !Owned.is_writable());
        assert!(Modified.is_writable() && Modified.is_dirty());
    }

    #[test]
    fn local_write_always_yields_modified() {
        for s in LineState::ALL {
            assert_eq!(s.after(LineEvent::LocalWrite), Some(Modified));
        }
    }

    #[test]
    fn remote_read_preserves_dirtiness_via_owned() {
        assert_eq!(Modified.after(LineEvent::RemoteRead), Some(Owned));
        assert_eq!(Owned.after(LineEvent::RemoteRead), Some(Owned));
        assert_eq!(Exclusive.after(LineEvent::RemoteRead), Some(Shared));
    }

    #[test]
    fn snoops_on_invalid_are_meaningless() {
        assert_eq!(Invalid.after(LineEvent::RemoteRead), None);
        assert_eq!(Invalid.after(LineEvent::RemoteWrite), None);
        assert_eq!(Invalid.after(LineEvent::Evict), None);
    }

    #[test]
    fn transition_relation_is_reflexive() {
        for s in LineState::ALL {
            assert!(s.can_transition(s), "{s} -> {s} must be legal");
        }
    }

    #[test]
    fn illegal_jumps_rejected() {
        // S cannot jump directly to E or O without an intervening miss.
        assert!(!Shared.can_transition(Exclusive));
        assert!(!Shared.can_transition(Owned));
        assert!(!Invalid.can_transition(Owned));
    }

    #[test]
    fn local_step_classifies_all_accesses() {
        // Loads: only Invalid needs a request; everything else hits.
        let miss = local_step(Invalid, false);
        assert_eq!(miss.request, Some(CoherenceRequest::ReadShared));
        assert_eq!(miss.next, Shared);
        for s in [Shared, Exclusive, Owned, Modified] {
            let hit = local_step(s, false);
            assert_eq!(hit.request, None);
            assert_eq!(hit.next, s);
        }
        // Stores always end Modified; the request depends on what's held.
        assert_eq!(
            local_step(Invalid, true).request,
            Some(CoherenceRequest::ReadExclusive)
        );
        assert_eq!(
            local_step(Shared, true).request,
            Some(CoherenceRequest::Upgrade)
        );
        assert_eq!(
            local_step(Owned, true).request,
            Some(CoherenceRequest::Upgrade)
        );
        assert_eq!(local_step(Exclusive, true).request, None);
        assert_eq!(local_step(Modified, true).request, None);
        for s in LineState::ALL {
            assert_eq!(local_step(s, true).next, Modified);
            assert!(s.can_transition(local_step(s, true).next));
        }
    }

    #[test]
    fn probe_step_matches_the_transition_relation() {
        for s in LineState::ALL {
            for invalidate in [false, true] {
                let p = probe_step(s, invalidate);
                assert!(s.can_transition(p.next), "{s} -> {} illegal", p.next);
                assert_eq!(p.supplies_data, s.is_dirty());
            }
            assert_eq!(probe_step(s, true).next, Invalid);
        }
        // Downgrades preserve dirtiness through Owned.
        assert_eq!(probe_step(Modified, false).next, Owned);
        assert_eq!(probe_step(Exclusive, false).next, Shared);
        assert_eq!(probe_step(Invalid, false).next, Invalid);
        assert!(!probe_step(Invalid, true).supplies_data);
    }

    #[test]
    fn global_invariant_accepts_legal_mixes() {
        assert!(check_global_invariant(&[Modified, Invalid, Invalid]).is_ok());
        assert!(check_global_invariant(&[Owned, Shared, Shared]).is_ok());
        assert!(check_global_invariant(&[Shared, Shared]).is_ok());
        assert!(check_global_invariant(&[Exclusive]).is_ok());
    }

    #[test]
    fn global_invariant_rejects_violations() {
        assert!(check_global_invariant(&[Modified, Shared]).is_err());
        assert!(check_global_invariant(&[Modified, Modified]).is_err());
        assert!(check_global_invariant(&[Exclusive, Exclusive]).is_err());
        assert!(check_global_invariant(&[Owned, Owned]).is_err());
        assert!(check_global_invariant(&[Exclusive, Owned]).is_err());
    }
}
