//! Set-associative L2 cache model.
//!
//! Models the ThunderX-1's shared 16 MiB, 16-way, 128-byte-line L2: the
//! cache that terminates ECI on the CPU side. It tracks MOESI states per
//! line, implements LRU replacement with dirty write-back, and services
//! coherence probes from the remote node (the FPGA's home/remote agents in
//! `enzian-eci` call [`L2Cache::probe`]).

use std::collections::HashMap;

use enzian_mem::CacheLine;

use crate::moesi::{LineEvent, LineState};

/// Static cache geometry.
///
/// Like every public config struct in the workspace, the type is
/// `#[non_exhaustive]`: start from a named preset (here
/// [`L2Config::thunderx1`], the hardware the paper ships) and adjust
/// fields with the `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct L2Config {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (128 on ThunderX-1).
    pub line_bytes: u64,
}

impl L2Config {
    /// The ThunderX-1 L2: 16 MiB, 16-way, 128-byte lines.
    pub fn thunderx1() -> Self {
        L2Config {
            capacity_bytes: 16 << 20,
            ways: 16,
            line_bytes: 128,
        }
    }

    /// Returns the config with `capacity_bytes` replaced.
    pub fn with_capacity_bytes(mut self, capacity_bytes: u64) -> Self {
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Returns the config with `ways` replaced.
    pub fn with_ways(mut self, ways: usize) -> Self {
        self.ways = ways;
        self
    }

    /// Returns the config with `line_bytes` replaced.
    pub fn with_line_bytes(mut self, line_bytes: u64) -> Self {
        self.line_bytes = line_bytes;
        self
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes or capacity not a
    /// multiple of `ways * line_bytes`).
    pub fn sets(&self) -> usize {
        assert!(self.capacity_bytes > 0 && self.ways > 0 && self.line_bytes > 0);
        let set_bytes = self.ways as u64 * self.line_bytes;
        assert!(
            self.capacity_bytes.is_multiple_of(set_bytes),
            "capacity must be a whole number of sets"
        );
        (self.capacity_bytes / set_bytes) as usize
    }
}

/// What happened on a local access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access hit in the cache; no external action needed.
    Hit,
    /// Hit on a read-only copy that a write upgraded; the coherence layer
    /// must invalidate other sharers.
    UpgradeMiss,
    /// Line absent; the coherence layer must fetch it. Carries the victim
    /// eviction, if filling will displace a line.
    Miss(Option<Eviction>),
}

/// A line displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Which line was displaced.
    pub line: CacheLine,
    /// Its state at displacement; dirty states must be written back.
    pub state: LineState,
}

/// Outcome of a coherence probe from the other node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The line was not present.
    Miss,
    /// The line was present; reports the state before the probe and
    /// whether the cache must supply (dirty) data.
    Hit {
        /// State before the probe was applied.
        was: LineState,
        /// The cache supplies data (it was the owner of a dirty line).
        supplies_data: bool,
    },
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: CacheLine,
    state: LineState,
    lru: u64,
}

/// The L2 cache model.
///
/// # Example
///
/// ```
/// use enzian_cache::{L2Cache, L2Config, AccessOutcome, LineState};
/// use enzian_mem::CacheLine;
///
/// let mut l2 = L2Cache::new(L2Config::thunderx1());
/// let line = CacheLine(42);
/// assert!(matches!(l2.read(line), AccessOutcome::Miss(None)));
/// l2.fill(line, LineState::Exclusive);
/// assert!(matches!(l2.read(line), AccessOutcome::Hit));
/// ```
#[derive(Debug)]
pub struct L2Cache {
    config: L2Config,
    sets: Vec<Vec<Way>>,
    // Directory of resident lines for O(1) lookup of membership.
    resident: HashMap<CacheLine, usize>,
    clock: u64,
    hits: u64,
    misses: u64,
    upgrades: u64,
    evictions: u64,
    writebacks: u64,
}

impl L2Cache {
    /// Creates an empty cache.
    pub fn new(config: L2Config) -> Self {
        let sets = config.sets();
        L2Cache {
            config,
            sets: vec![Vec::new(); sets],
            resident: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            upgrades: 0,
            evictions: 0,
            writebacks: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &L2Config {
        &self.config
    }

    fn set_of(&self, line: CacheLine) -> usize {
        (line.0 % self.sets.len() as u64) as usize
    }

    fn touch(clock: &mut u64, way: &mut Way) {
        *clock += 1;
        way.lru = *clock;
    }

    /// The current state of `line`, `Invalid` when absent.
    pub fn state_of(&self, line: CacheLine) -> LineState {
        let set = self.set_of(line);
        self.sets[set]
            .iter()
            .find(|w| w.line == line)
            .map_or(LineState::Invalid, |w| w.state)
    }

    /// Local read access.
    pub fn read(&mut self, line: CacheLine) -> AccessOutcome {
        let set = self.set_of(line);
        let clock = &mut self.clock;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.line == line) {
            Self::touch(clock, way);
            self.hits += 1;
            return AccessOutcome::Hit;
        }
        self.misses += 1;
        AccessOutcome::Miss(self.victim_for(set))
    }

    /// Local write access. Writable states hit; `Shared`/`Owned` upgrade;
    /// absent lines miss.
    pub fn write(&mut self, line: CacheLine) -> AccessOutcome {
        let set = self.set_of(line);
        let clock = &mut self.clock;
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.line == line) {
            Self::touch(clock, way);
            if way.state.is_writable() {
                way.state = LineState::Modified;
                self.hits += 1;
                return AccessOutcome::Hit;
            }
            way.state = LineState::Modified;
            self.upgrades += 1;
            return AccessOutcome::UpgradeMiss;
        }
        self.misses += 1;
        AccessOutcome::Miss(self.victim_for(set))
    }

    fn victim_for(&self, set: usize) -> Option<Eviction> {
        if self.sets[set].len() < self.config.ways {
            return None;
        }
        let victim = self.sets[set]
            .iter()
            .min_by_key(|w| w.lru)
            .expect("full set has a victim");
        Some(Eviction {
            line: victim.line,
            state: victim.state,
        })
    }

    /// Installs `line` in `state` after a miss, evicting the LRU way when
    /// the set is full. Returns the eviction performed, if any.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (fills must follow misses)
    /// or `state` is `Invalid`.
    pub fn fill(&mut self, line: CacheLine, state: LineState) -> Option<Eviction> {
        assert!(state != LineState::Invalid, "cannot fill Invalid");
        let set = self.set_of(line);
        assert!(
            !self.sets[set].iter().any(|w| w.line == line),
            "fill of already-resident {line}"
        );
        let mut evicted = None;
        if self.sets[set].len() >= self.config.ways {
            let (idx, _) = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .expect("full set has a victim");
            let w = self.sets[set].swap_remove(idx);
            self.resident.remove(&w.line);
            self.evictions += 1;
            if w.state.is_dirty() {
                self.writebacks += 1;
            }
            evicted = Some(Eviction {
                line: w.line,
                state: w.state,
            });
        }
        self.clock += 1;
        self.sets[set].push(Way {
            line,
            state,
            lru: self.clock,
        });
        self.resident.insert(line, set);
        evicted
    }

    /// Applies a coherence probe from the remote node: `for_write` probes
    /// invalidate; read probes downgrade to `Shared`/`Owned`.
    pub fn probe(&mut self, line: CacheLine, for_write: bool) -> ProbeOutcome {
        let set = self.set_of(line);
        let Some(idx) = self.sets[set].iter().position(|w| w.line == line) else {
            return ProbeOutcome::Miss;
        };
        let was = self.sets[set][idx].state;
        let supplies_data = was.is_dirty() || (for_write && was.is_owner());
        let event = if for_write {
            LineEvent::RemoteWrite
        } else {
            LineEvent::RemoteRead
        };
        match was.after(event) {
            Some(LineState::Invalid) | None => {
                let w = self.sets[set].swap_remove(idx);
                self.resident.remove(&w.line);
            }
            Some(next) => self.sets[set][idx].state = next,
        }
        ProbeOutcome::Hit { was, supplies_data }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.resident.len()
    }

    /// `(hits, misses, upgrades, evictions, writebacks)` so far.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.hits,
            self.misses,
            self.upgrades,
            self.evictions,
            self.writebacks,
        )
    }

    /// Hit rate over all accesses; `None` before any access.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses + self.upgrades;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Publishes the cache's counters.
impl enzian_sim::Instrumented for L2Cache {
    fn export_metrics(&self, prefix: &str, registry: &mut enzian_sim::MetricsRegistry) {
        registry.counter_set(&format!("{prefix}.hits"), self.hits);
        registry.counter_set(&format!("{prefix}.misses"), self.misses);
        registry.counter_set(&format!("{prefix}.upgrades"), self.upgrades);
        registry.counter_set(&format!("{prefix}.evictions"), self.evictions);
        registry.counter_set(&format!("{prefix}.writebacks"), self.writebacks);
        registry.counter_set(
            &format!("{prefix}.resident_lines"),
            self.resident.len() as u64,
        );
        if let Some(rate) = self.hit_rate() {
            registry.gauge_set(&format!("{prefix}.hit_rate"), rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L2Cache {
        // 4 sets x 2 ways x 128 B = 1 KiB.
        L2Cache::new(L2Config {
            capacity_bytes: 1024,
            ways: 2,
            line_bytes: 128,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut l2 = tiny();
        let line = CacheLine(7);
        assert!(matches!(l2.read(line), AccessOutcome::Miss(None)));
        assert_eq!(l2.fill(line, LineState::Shared), None);
        assert!(matches!(l2.read(line), AccessOutcome::Hit));
        assert_eq!(l2.state_of(line), LineState::Shared);
    }

    #[test]
    fn write_to_shared_is_an_upgrade() {
        let mut l2 = tiny();
        let line = CacheLine(3);
        l2.fill(line, LineState::Shared);
        assert!(matches!(l2.write(line), AccessOutcome::UpgradeMiss));
        assert_eq!(l2.state_of(line), LineState::Modified);
        // Second write hits silently.
        assert!(matches!(l2.write(line), AccessOutcome::Hit));
    }

    #[test]
    fn lru_eviction_picks_coldest_and_reports_dirty() {
        let mut l2 = tiny();
        // Lines 0, 4, 8 map to set 0 (4 sets).
        l2.fill(CacheLine(0), LineState::Modified);
        l2.fill(CacheLine(4), LineState::Shared);
        // Touch line 0 so line 4 is LRU.
        l2.read(CacheLine(0));
        let ev = l2.fill(CacheLine(8), LineState::Exclusive).unwrap();
        assert_eq!(ev.line, CacheLine(4));
        assert_eq!(ev.state, LineState::Shared);
        assert_eq!(l2.state_of(CacheLine(4)), LineState::Invalid);

        // Evict the dirty line next; writeback counter increments.
        l2.read(CacheLine(8));
        let ev = l2.fill(CacheLine(12), LineState::Shared).unwrap();
        assert_eq!(ev.line, CacheLine(0));
        assert!(ev.state.is_dirty());
        let (.., writebacks) = l2.stats();
        assert_eq!(writebacks, 1);
    }

    #[test]
    fn probe_read_downgrades_and_supplies_dirty_data() {
        let mut l2 = tiny();
        l2.fill(CacheLine(1), LineState::Modified);
        match l2.probe(CacheLine(1), false) {
            ProbeOutcome::Hit { was, supplies_data } => {
                assert_eq!(was, LineState::Modified);
                assert!(supplies_data);
            }
            ProbeOutcome::Miss => panic!("expected hit"),
        }
        assert_eq!(l2.state_of(CacheLine(1)), LineState::Owned);
    }

    #[test]
    fn probe_write_invalidates() {
        let mut l2 = tiny();
        l2.fill(CacheLine(2), LineState::Exclusive);
        match l2.probe(CacheLine(2), true) {
            ProbeOutcome::Hit { was, supplies_data } => {
                assert_eq!(was, LineState::Exclusive);
                assert!(supplies_data, "exclusive owner supplies on write probe");
            }
            ProbeOutcome::Miss => panic!("expected hit"),
        }
        assert_eq!(l2.state_of(CacheLine(2)), LineState::Invalid);
        assert_eq!(l2.resident_lines(), 0);
    }

    #[test]
    fn probe_miss_on_absent_line() {
        let mut l2 = tiny();
        assert_eq!(l2.probe(CacheLine(9), true), ProbeOutcome::Miss);
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn double_fill_panics() {
        let mut l2 = tiny();
        l2.fill(CacheLine(1), LineState::Shared);
        l2.fill(CacheLine(1), LineState::Shared);
    }

    #[test]
    fn thunderx_geometry() {
        let cfg = L2Config::thunderx1();
        assert_eq!(cfg.sets(), 8192);
        let l2 = L2Cache::new(cfg);
        assert_eq!(l2.resident_lines(), 0);
    }

    #[test]
    fn hit_rate_tracks_accesses() {
        let mut l2 = tiny();
        assert_eq!(l2.hit_rate(), None);
        l2.read(CacheLine(0));
        l2.fill(CacheLine(0), LineState::Shared);
        l2.read(CacheLine(0));
        assert!((l2.hit_rate().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_working_set_thrashes() {
        let mut l2 = tiny(); // 8 lines capacity
                             // Working set of 16 lines in a loop: every access misses after
                             // warmup because of LRU.
        for round in 0..3 {
            for i in 0..16u64 {
                let line = CacheLine(i);
                if let AccessOutcome::Miss(_) = l2.read(line) {
                    l2.fill(line, LineState::Shared);
                } else if round > 0 {
                    panic!("unexpected hit with thrashing working set");
                }
            }
        }
    }
}
