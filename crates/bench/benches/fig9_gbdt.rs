//! Fig. 9 bench: GBDT batch scoring per platform.

use enzian_apps::gbdt::{Ensemble, GbdtAccelerator};
use enzian_bench::harness::{BenchmarkId, Criterion, Throughput};
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_gbdt");
    let ensemble = Ensemble::generate(42, 96, 6, 16);
    let tuples = ensemble.generate_tuples(43, 4096);
    g.throughput(Throughput::Elements(tuples.len() as u64));
    for platform in enzian_platform::experiments::fig9::PLATFORMS {
        let cfg = platform.gbdt_config(1).unwrap();
        g.bench_with_input(
            BenchmarkId::new("score_batch", platform.name()),
            &tuples,
            |b, tuples| {
                let mut acc = GbdtAccelerator::new(ensemble.clone(), cfg);
                b.iter(|| black_box(acc.score_batch(Time::ZERO, tuples).scores.len()));
            },
        );
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
