//! Cluster-scale bench: the parallel engine vs the sequential
//! reference driver on the same workload, and thread scaling.

use enzian_bench::harness::{BenchmarkId, Criterion};
use enzian_platform::{ClusterWorkload, EnzianCluster};
use std::hint::black_box;

const SLICE: u64 = 1 << 20;

fn workload() -> ClusterWorkload {
    ClusterWorkload::small()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_scale");
    g.bench_function("reference_4_boards", |b| {
        b.iter(|| {
            let r = EnzianCluster::new(4, SLICE).run_reference(&workload());
            black_box(r.trace_digest)
        })
    });
    for threads in [1usize, 2, 8] {
        g.bench_with_input(
            BenchmarkId::new("parallel_4_boards", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let r = EnzianCluster::new(4, SLICE).run_parallel(&workload(), threads);
                    black_box(r.trace_digest)
                })
            },
        );
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
