//! Ablation benches for the DESIGN.md design choices:
//! link policy, lane count, and response-data credits.

use enzian_bench::harness::{BenchmarkId, Criterion, Throughput};
use enzian_eci::{EciSystem, EciSystemConfig, LinkPolicy};
use enzian_mem::Addr;
use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::tcp::{TcpEngine, TcpStackConfig};
use enzian_net::Switch;
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    let lines = 512u64;
    g.throughput(Throughput::Bytes(lines * 128));

    for (name, policy) in [
        ("single_link", LinkPolicy::Single(0)),
        ("round_robin", LinkPolicy::RoundRobin),
        ("by_address", LinkPolicy::ByAddress),
    ] {
        g.bench_with_input(
            BenchmarkId::new("link_policy", name),
            &policy,
            |b, &policy| {
                let mut cfg = EciSystemConfig::enzian();
                cfg.policy = policy;
                let mut sys = EciSystem::new(cfg);
                let mut now = Time::ZERO;
                b.iter(|| {
                    now = sys.fpga_read_burst(now, Addr(0), lines);
                    black_box(now)
                });
            },
        );
    }

    for credits in [2u32, 5, 16] {
        g.bench_with_input(
            BenchmarkId::new("response_credits", credits),
            &credits,
            |b, &credits| {
                let mut cfg = EciSystemConfig::enzian();
                cfg.link.response_data_credits = credits;
                let mut sys = EciSystem::new(cfg);
                let mut now = Time::ZERO;
                b.iter(|| {
                    now = sys.fpga_read_burst(now, Addr(0), lines);
                    black_box(now)
                });
            },
        );
    }
    // MTU ablation for the hardware TCP stack: the paper's stack
    // saturates from a 2 KiB MTU; smaller segments pay per-segment cost.
    let data = vec![0u8; 512 * 1024];
    for mss in [512usize, 1024, 2048, 4096] {
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("tcp_mtu", mss), &mss, |b, &mss| {
            b.iter(|| {
                let mut cfg = TcpStackConfig::fpga_coyote();
                cfg.mss = mss;
                let mut link = EthLink::new(EthLinkConfig::hundred_gig());
                let mut e = TcpEngine::new(cfg, cfg, Switch::tor());
                let (_, r) = e.transfer(&mut link, Time::ZERO, &data);
                black_box(r.throughput_bits())
            });
        });
    }

    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
