//! Benches for the §6 use-case modules: KV store, Farview push-down,
//! cluster bridging, and runtime verification.

use enzian_apps::kvs::{KvStore, KvStoreConfig};
use enzian_apps::rtverify::{properties, EventKind, Monitor, TraceEvent};
use enzian_bench::harness::{BenchmarkId, Criterion, Throughput};
use enzian_mem::{Addr, MemoryController, MemoryControllerConfig};
use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::farview::{FarviewServer, Operator, Predicate};
use enzian_platform::cluster::{BoardId, EnzianCluster};
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("use_cases");

    g.throughput(Throughput::Elements(1));
    g.bench_function("kvs_get", |b| {
        let mut kv = KvStore::new(
            KvStoreConfig::large(),
            MemoryController::new(MemoryControllerConfig::enzian_fpga()),
        );
        for i in 1..=10_000u64 {
            kv.put(Time::ZERO, i, &i.to_le_bytes()).unwrap();
        }
        let mut i = 1u64;
        b.iter(|| {
            let out = kv.get(Time::ZERO, i % 10_000 + 1);
            i += 1;
            black_box(out.value.is_some())
        });
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("farview_filter_scan_10k_rows", |b| {
        const ROW: usize = 64;
        let mut data = vec![0u8; 10_000 * ROW];
        for i in 0..10_000u64 {
            data[i as usize * ROW..i as usize * ROW + 8].copy_from_slice(&i.to_le_bytes());
        }
        let mut server = FarviewServer::new(
            MemoryController::new(MemoryControllerConfig::enzian_fpga()),
            Addr(0),
            ROW,
            &data,
        );
        let mut link = EthLink::new(EthLinkConfig::hundred_gig());
        b.iter(|| {
            let r = server.scan(
                &mut link,
                Time::ZERO,
                0,
                10_000,
                Operator::Filter {
                    column_offset: 0,
                    predicate: Predicate::Gt(9_990),
                },
            );
            black_box(r.rows.len())
        });
    });

    g.throughput(Throughput::Bytes(128));
    g.bench_function("cluster_bridged_read", |b| {
        let mut cluster = EnzianCluster::new(2, 64 << 20);
        let mut now = Time::ZERO;
        b.iter(|| {
            let (line, t) = cluster.read_line(BoardId(0), now, 64 << 20);
            now = t;
            black_box(line[0])
        });
    });

    g.throughput(Throughput::Elements(1));
    g.bench_function("rtverify_step", |b| {
        let mut monitor = Monitor::for_formula(&properties::irq_well_nested());
        let ev = TraceEvent {
            core: 0,
            at: Time::ZERO,
            kind: EventKind::ContextSwitch,
        };
        b.iter(|| black_box(monitor.step(&ev).is_none()));
    });

    for (name, config) in [
        ("one_dimm_per_channel", MemoryControllerConfig::enzian_cpu()),
        (
            "half_channels",
            MemoryControllerConfig::enzian_cpu()
                .with_channels(2)
                .with_generation(enzian_mem::DdrGeneration::Ddr4_2133),
        ),
    ] {
        // The "favor bandwidth over capacity" ablation: fewer channels
        // (i.e. capacity-optimised configs) cost stream bandwidth.
        g.throughput(Throughput::Bytes(1 << 20));
        g.bench_with_input(BenchmarkId::new("dram_stream", name), &config, |b, cfg| {
            let mut mc = MemoryController::new(*cfg);
            b.iter(|| {
                let mut done = Time::ZERO;
                let mut a = 0u64;
                while a < 1 << 20 {
                    done = done.max(mc.request(Time::ZERO, Addr(a), 1024, enzian_mem::Op::Read));
                    a += 1024;
                }
                black_box(done)
            });
        });
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
