//! Fig. 7 bench: one TCP transfer per stack.

use enzian_bench::harness::{BenchmarkId, Criterion, Throughput};
use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::tcp::{TcpEngine, TcpStackConfig};
use enzian_net::Switch;
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_tcp");
    let data = vec![0xABu8; 256 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (name, cfg) in [
        ("fpga_stack", TcpStackConfig::fpga_coyote()),
        ("kernel_stack", TcpStackConfig::linux_kernel()),
    ] {
        g.bench_with_input(BenchmarkId::new(name, data.len()), &data, |b, data| {
            b.iter(|| {
                let mut link = EthLink::new(EthLinkConfig::hundred_gig());
                let mut e = TcpEngine::new(cfg, cfg, Switch::tor());
                black_box(e.transfer(&mut link, Time::ZERO, data))
            });
        });
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
