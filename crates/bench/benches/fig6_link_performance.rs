//! Fig. 6 bench: ECI vs PCIe per-transfer operations.

use enzian_bench::harness::{BenchmarkId, Criterion, Throughput};
use enzian_mem::Addr;
use enzian_platform::presets::PlatformPreset;
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_link_performance");
    for size in [128u64, 2048, 16384] {
        g.throughput(Throughput::Bytes(size));
        g.bench_with_input(BenchmarkId::new("eci_read", size), &size, |b, &size| {
            let mut sys = PlatformPreset::enzian_system(true);
            let mut now = Time::ZERO;
            b.iter(|| {
                now = sys.fpga_read_burst(now, Addr(0), size / 128);
                black_box(now)
            });
        });
        g.bench_with_input(BenchmarkId::new("pcie_read", size), &size, |b, &size| {
            let mut dma = PlatformPreset::AlveoU250.dma_engine();
            let mut now = Time::ZERO;
            b.iter(|| {
                now = dma.host_to_card(now, size).completed;
                black_box(now)
            });
        });
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
