//! Scheduler hot-path bench: the retained reference core vs the
//! calendar-queue core (boxed closures and POD events), plus the
//! sharded parallel leg.

use enzian_bench::harness::{BenchmarkId, Criterion};
use enzian_platform::experiments::sched_hotpath;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_hotpath");
    g.bench_function("reference_core", |b| {
        b.iter(|| black_box(sched_hotpath::run_reference_core().1))
    });
    g.bench_function("calendar_closures", |b| {
        b.iter(|| black_box(sched_hotpath::run_closure_core().1))
    });
    g.bench_function("calendar_pod", |b| {
        b.iter(|| black_box(sched_hotpath::run_pod_core().1))
    });
    for threads in [1usize, 2, 8] {
        g.bench_with_input(
            BenchmarkId::new("parallel_pod", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(sched_hotpath::run_parallel(threads).1)),
        );
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
