//! CC sweep bench: one lossy transfer per congestion controller over the
//! FPGA cost model, plus the hybrid stack, so policy overhead shows up
//! as wall-clock per simulated transfer.

use enzian_bench::harness::{BenchmarkId, Criterion, Throughput};
use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::tcp::{CcAlgorithm, LossPattern, TcpEngine, TcpStackConfig};
use enzian_net::Switch;
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cc_sweep");
    let data = vec![0xABu8; 256 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (name, cfg) in [
        ("fpga_fixed", TcpStackConfig::fpga_coyote()),
        (
            "fpga_reno",
            TcpStackConfig::fpga_coyote().with_cc(CcAlgorithm::Reno),
        ),
        (
            "fpga_cubic",
            TcpStackConfig::fpga_coyote().with_cc(CcAlgorithm::Cubic),
        ),
        ("hybrid_reno", TcpStackConfig::hybrid_offload()),
    ] {
        g.bench_with_input(BenchmarkId::new(name, data.len()), &data, |b, data| {
            b.iter(|| {
                let mut link = EthLink::new(EthLinkConfig::hundred_gig());
                let mut e =
                    TcpEngine::new(cfg, cfg, Switch::tor()).with_loss(LossPattern::drop_every(29));
                black_box(e.transfer(&mut link, Time::ZERO, data))
            });
        });
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
