//! Registry-dispatch bench: cheap experiment drivers through the
//! unified `Experiment` trait, exactly the path `reproduce` takes.

use enzian_bench::harness::Criterion;
use enzian_platform::experiments::{self, ExperimentCtx};
use enzian_sim::MetricsRegistry;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    for name in ["fig3", "fig9", "fig11"] {
        let e = experiments::find(name).expect("registered experiment");
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut reg = MetricsRegistry::new();
                let rows = e.run(&mut ExperimentCtx {
                    reg: &mut reg,
                    threads: 1,
                });
                black_box((rows.tables.len(), reg.export_json().len()))
            });
        });
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
