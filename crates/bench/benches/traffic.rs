//! Traffic bench: connection churn through the multi-session TCP mux.
//!
//! Two granularities: the raw `SessionMux` open → transfer → teardown
//! cycle between two directly-wired engines, and the full two-board
//! generator (bridge framing, channel model, conservative engine).

use enzian_bench::harness::{Criterion, Throughput};
use enzian_net::tcp::TcpStackConfig;
use enzian_net::traffic::{decode_segment, encode_segment};
use enzian_net::{PortMask, SessionMux, WireSegment};
use enzian_platform::TrafficWorkload;
use enzian_sim::{Duration, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

const SESSIONS: u64 = 64;
const BYTES: u64 = 8 * 1024;
const HOP: Duration = Duration::from_ns(450);

/// Delivers segments between the two muxes with a fixed one-way
/// latency, interleaving wire arrivals and timers in deterministic
/// (time, tiebreak) order until both are idle — the same drive loop the
/// mux unit tests use.
fn drive(muxes: &mut [SessionMux; 2], pending: Vec<WireSegment>) {
    let mut wire: BinaryHeap<Reverse<(Time, u64, [u8; 28])>> = BinaryHeap::new();
    let mut wseq = 0u64;
    let mut out = pending;
    loop {
        for ws in out.drain(..) {
            wseq += 1;
            let bytes: [u8; 28] = encode_segment(&ws.seg).try_into().unwrap();
            wire.push(Reverse((ws.at + HOP, wseq, bytes)));
        }
        let wire_at = wire.peek().map(|w| w.0 .0);
        let timer = muxes
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.next_timer().map(|(t, _)| (t, i)))
            .min();
        let take_wire = match (wire_at, timer) {
            (None, None) => return,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(w), Some((t, _))) => w <= t,
        };
        if take_wire {
            let Reverse((at, _, bytes)) = wire.pop().unwrap();
            let seg = decode_segment(&bytes).unwrap();
            muxes[usize::from(seg.dst_board)].on_segment(at, &seg, &mut out);
        } else {
            let i = timer.unwrap().1;
            muxes[i].fire_next_timer(&mut out);
        }
    }
}

/// Pushes `SESSIONS` overlapping sessions through one flow table and
/// returns the completed count.
fn churn_pair() -> u64 {
    let mask = PortMask::for_boards(2);
    let cfg = TcpStackConfig::fpga_coyote();
    let mut muxes = [SessionMux::new(0, cfg, mask), SessionMux::new(1, cfg, mask)];
    let mut out = Vec::new();
    for i in 0..SESSIONS {
        let at = Time::ZERO + Duration::from_us(2) * i;
        muxes[0].open(at, 1, BYTES, Duration::from_us(50), &mut out);
    }
    drive(&mut muxes, out);
    muxes[0].stats().completed
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic");
    g.throughput(Throughput::Elements(SESSIONS));
    g.bench_function("mux_churn", |b| {
        b.iter(|| {
            let done = churn_pair();
            assert_eq!(done, SESSIONS);
            black_box(done)
        });
    });
    let w = TrafficWorkload::small();
    g.throughput(Throughput::Elements(w.total_sessions()));
    g.bench_function("two_board_generator", |b| {
        b.iter(|| black_box(w.run_parallel(2).completed));
    });
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
