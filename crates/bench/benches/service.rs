//! Replicated-KV-service bench: the fault scenarios on the parallel
//! engine vs the sequential reference driver, and thread scaling under
//! the harshest crash plan.

use enzian_bench::harness::{BenchmarkId, Criterion};
use enzian_platform::{FaultScenario, ServiceConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("service");
    for scenario in FaultScenario::all() {
        let cfg = ServiceConfig::small().with_scenario(scenario);
        g.bench_function(BenchmarkId::new("reference", scenario.label()), |b| {
            b.iter(|| black_box(cfg.run_reference().digest))
        });
    }
    let crash = ServiceConfig::small().with_scenario(FaultScenario::RollingCrashes);
    for threads in [1usize, 2, 8] {
        g.bench_with_input(
            BenchmarkId::new("parallel_rolling_crashes", threads),
            &threads,
            |b, &threads| b.iter(|| black_box(crash.run_parallel(threads).digest)),
        );
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
