//! Fig. 11 bench: reduction-engine refills and the core-scaling sweep.

use enzian_apps::reduction::{ReductionEngine, ReductionMode};
use enzian_apps::vision::Frame;
use enzian_bench::harness::{BenchmarkId, Criterion, Throughput};
use enzian_mem::{Addr, MemoryController, MemoryControllerConfig};
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_memctrl");
    let frame = Frame::paper_sized(7);
    for mode in ReductionMode::ALL {
        g.throughput(Throughput::Elements(mode.pixels_per_line()));
        g.bench_with_input(
            BenchmarkId::new("serve_refill", mode.label()),
            &mode,
            |b, &mode| {
                let mem = MemoryController::new(MemoryControllerConfig::enzian_fpga());
                let mut engine = ReductionEngine::new(mode, mem, Addr(0), &frame);
                let lines = engine.logical_lines();
                let mut i = 0;
                b.iter(|| {
                    let r = engine.serve_refill(Time::ZERO, i % lines);
                    i += 1;
                    black_box(r.line[0])
                });
            },
        );
    }
    let e = enzian_platform::experiments::find("fig11").unwrap();
    g.bench_function("core_scaling_sweep", |b| {
        b.iter(|| {
            let mut reg = enzian_sim::MetricsRegistry::new();
            let rows = e.run(&mut enzian_platform::experiments::ExperimentCtx {
                reg: &mut reg,
                threads: 1,
            });
            black_box(rows.tables.len())
        })
    });
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
