//! Pipelining bench: serial vs pipelined coherent reads through the
//! event-driven engine's async issue/poll API.

use enzian_bench::harness::{BenchmarkId, Criterion};
use enzian_eci::{EciSystem, EciSystemConfig, LinkPolicy};
use enzian_mem::Addr;
use enzian_sim::Time;
use std::hint::black_box;

fn pipelined_reads(mshr_entries: usize, lines: u64) -> Time {
    let mut sys = EciSystem::new(
        EciSystemConfig::enzian()
            .with_policy(LinkPolicy::Single(0))
            .with_mshr_entries(mshr_entries),
    );
    let handles: Vec<_> = (0..lines)
        .map(|i| sys.issue_read(Time::ZERO, Addr(i * 128)))
        .collect();
    sys.run_to_idle();
    let last = handles
        .into_iter()
        .filter_map(|h| sys.take_completion(h))
        .map(|c| c.completed)
        .max()
        .expect("burst completes");
    assert!(sys.checker().violations().is_empty());
    last
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipelining");
    for outstanding in [1usize, 8, 64] {
        g.bench_function(BenchmarkId::new("outstanding", outstanding), |b| {
            b.iter(|| black_box(pipelined_reads(outstanding, 256)))
        });
    }
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
