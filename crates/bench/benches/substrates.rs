//! Substrate microbenchmarks: the building blocks every experiment uses.

use enzian_bench::harness::{Criterion, Throughput};
use enzian_eci::message::{Message, MessageKind, TxnId};
use enzian_eci::wire::{decode_message, encode_message};
use enzian_mem::{Addr, CacheLine, MemoryController, MemoryControllerConfig, NodeId, Op};
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");

    let msg = Message::new(
        NodeId::Cpu,
        NodeId::Fpga,
        TxnId(7),
        MessageKind::DataShared(CacheLine(42), Box::new([0xA5u8; 128])),
    );
    g.throughput(Throughput::Bytes(msg.wire_bytes()));
    g.bench_function("wire_encode_data_msg", |b| {
        b.iter(|| black_box(encode_message(&msg).len()))
    });
    let enc = encode_message(&msg);
    g.bench_function("wire_decode_data_msg", |b| {
        b.iter(|| black_box(decode_message(&enc).unwrap().1))
    });

    g.throughput(Throughput::Bytes(128));
    g.bench_function("dram_line_read", |b| {
        let mut mc = MemoryController::new(MemoryControllerConfig::enzian_cpu());
        let mut now = Time::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            now = mc.request(now, Addr(addr % (1 << 30)), 128, Op::Read);
            addr += 128;
            black_box(now)
        })
    });

    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("power_sequence_solve", |b| {
        let spec = enzian_bmc::sequence::PowerSpec::enzian();
        let rails = enzian_bmc::rail::RailSpec::board_table();
        b.iter(|| black_box(spec.solve(&rails).unwrap().len()))
    });
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
