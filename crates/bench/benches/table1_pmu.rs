//! Table 1 bench: PMU derivation at 48 threads.

use enzian_bench::harness::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_pmu");
    g.bench_function("pmu_counts_48_threads", |b| {
        b.iter(|| black_box(enzian_platform::experiments::fig11::run_table1()))
    });
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
