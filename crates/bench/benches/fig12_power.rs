//! Fig. 12 bench: the full power-trace replay and its PMBus primitives.

use enzian_bench::harness::Criterion;
use enzian_bmc::pmbus::PmbusNetwork;
use enzian_bmc::rail::RailId;
use enzian_sim::Time;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_power");
    g.sample_size(10);
    let e = enzian_platform::experiments::find("fig12").unwrap();
    g.bench_function("full_trace_replay", |b| {
        b.iter(|| {
            let mut reg = enzian_sim::MetricsRegistry::new();
            let rows = e.run(&mut enzian_platform::experiments::ExperimentCtx {
                reg: &mut reg,
                threads: 1,
            });
            black_box(rows.tables.len())
        })
    });
    g.bench_function("pmbus_read_iout", |b| {
        let mut net = PmbusNetwork::board();
        net.enable(Time::ZERO, RailId::CpuVdd).unwrap();
        let mut now = Time::ZERO;
        b.iter(|| {
            let (amps, done) = net.read_iout(now, RailId::CpuVdd).unwrap();
            now = done;
            black_box(amps)
        })
    });
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
