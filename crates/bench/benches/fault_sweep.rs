//! Fault-sweep bench: a faulted vs fault-free coherent transfer loop.

use enzian_bench::harness::Criterion;
use enzian_eci::link::fault_targets;
use enzian_eci::{EciSystem, EciSystemConfig};
use enzian_mem::Addr;
use enzian_sim::{FaultPlan, FaultSpec, Time};
use std::hint::black_box;

fn faulted_loop(plan: Option<FaultPlan>) -> Time {
    let mut sys = EciSystem::new(EciSystemConfig::enzian());
    if let Some(plan) = plan {
        sys.set_fault_plan(plan);
    }
    let mut t = Time::ZERO;
    for i in 0..64u64 {
        t = sys.fpga_write_line(t, Addr((i % 8) * 128), &[i as u8; 128]);
        let (_, done) = sys.fpga_read_line(t, Addr((i % 8) * 128));
        t = done;
    }
    assert!(sys.checker().violations().is_empty());
    t
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_sweep");
    g.bench_function("clean", |b| b.iter(|| black_box(faulted_loop(None))));
    g.bench_function("faulted_5pct", |b| {
        b.iter(|| {
            let plan = FaultPlan::new(0xFA17)
                .with(FaultSpec::probability(fault_targets::FRAME_CORRUPT, 0.05))
                .with(FaultSpec::probability(fault_targets::FRAME_DROP, 0.025));
            black_box(faulted_loop(Some(plan)))
        })
    });
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
