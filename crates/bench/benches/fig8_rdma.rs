//! Fig. 8 bench: RDMA reads per back-end.

use enzian_bench::harness::{BenchmarkId, Criterion, Throughput};
use enzian_eci::{EciSystem, EciSystemConfig};
use enzian_mem::{Addr, MemoryController, MemoryControllerConfig};
use enzian_net::eth::{EthLink, EthLinkConfig};
use enzian_net::rdma::{RdmaBackend, RdmaEngine};
use enzian_sim::{Duration, Time};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_rdma");
    let size = 4096u64;
    g.throughput(Throughput::Bytes(size));

    g.bench_with_input(
        BenchmarkId::new("enzian_dram_read", size),
        &size,
        |b, &size| {
            let mut e = RdmaEngine::new(RdmaBackend::LocalDram {
                memory: MemoryController::new(MemoryControllerConfig::enzian_fpga()),
                pipeline: Duration::from_ns(120),
            });
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let mut now = Time::ZERO;
            b.iter(|| {
                let out = e.read(&mut link, now, Addr(0), size);
                now = out.completed;
                black_box(out.bytes)
            });
        },
    );

    g.bench_with_input(
        BenchmarkId::new("enzian_host_read", size),
        &size,
        |b, &size| {
            let mut e = RdmaEngine::new(RdmaBackend::HostViaEci(Box::new(EciSystem::new(
                EciSystemConfig::enzian(),
            ))));
            let mut link = EthLink::new(EthLinkConfig::hundred_gig());
            let mut now = Time::ZERO;
            b.iter(|| {
                let out = e.read(&mut link, now, Addr(0), size);
                now = out.completed;
                black_box(out.bytes)
            });
        },
    );
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
