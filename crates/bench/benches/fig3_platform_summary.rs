//! Fig. 3 bench: regenerating the platform summary scatter.

use enzian_bench::harness::Criterion;
use enzian_platform::experiments::{self, ExperimentCtx};
use enzian_sim::MetricsRegistry;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_platform_summary");
    g.sample_size(10);
    let e = experiments::find("fig3").unwrap();
    g.bench_function("run_all_points", |b| {
        b.iter(|| {
            let mut reg = MetricsRegistry::new();
            black_box(
                e.run(&mut ExperimentCtx {
                    reg: &mut reg,
                    threads: 1,
                })
                .tables
                .len(),
            )
        })
    });
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
