//! Fig. 3 bench: regenerating the platform summary scatter.

use enzian_bench::harness::Criterion;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_platform_summary");
    g.sample_size(10);
    g.bench_function("run_all_points", |b| {
        b.iter(|| black_box(enzian_platform::experiments::fig3::run()))
    });
    g.finish();
}

enzian_bench::criterion_group!(benches, bench);
enzian_bench::criterion_main!(benches);
