//! End-to-end checks of the experiment-driver -> telemetry-registry ->
//! `BENCH_<figure>.json` pipeline.

use enzian_bench::bench_json;
use enzian_platform::experiments::{fault_sweep, fig11, fig3};
use enzian_sim::MetricsRegistry;

#[test]
fn fig11_bench_json_is_byte_identical_across_runs() {
    let run = || {
        let mut reg = MetricsRegistry::new();
        fig11::run_instrumented(&mut reg);
        bench_json("fig11", &reg)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed runs must render identical JSON");
    assert!(a.contains("\"figure\": \"fig11\""));
    assert!(a.contains("\"schema\": 1"));
    // The PMU counters flow from the shared registry, per mode.
    assert!(a.contains("\"fig11.pmu.none.cycles\""));
    assert!(a.contains("\"fig11.pmu.8bpp.memory_stalls_per_cycle\""));
    assert!(a.contains("\"fig11.4bpp.gpixels_per_sec\""));
}

#[test]
fn fig3_registry_carries_component_counters_and_trace() {
    let mut reg = MetricsRegistry::new();
    let points = fig3::run_instrumented(&mut reg);
    assert_eq!(points.len(), 8);

    // ECI link counters exported by the measured systems.
    assert!(reg.counter("fig3.eci.one_link.link.messages") > 0);
    assert!(reg.counter("fig3.eci.full.link.messages") > 0);
    // BENCH header counters are set by the driver.
    assert!(reg.counter("fig3.sim_time_ps") > 0);
    assert!(reg.counter("fig3.events_executed") > 0);
    assert_eq!(reg.counter("fig3.measured_points"), 3);
    // One trace event per point.
    assert_eq!(reg.trace().len(), points.len());

    let json = bench_json("fig3", &reg);
    assert!(json.contains("\"fig3.enzian_dram.bandwidth_gib\""));
    assert!(json.contains("\"fig3.enzian_1_eci_link.latency_us\""));
    assert!(json.contains("\"retained\": 8"));
}

#[test]
fn fault_sweep_bench_json_is_byte_identical_across_runs() {
    let run = || {
        let mut reg = MetricsRegistry::new();
        fault_sweep::run_instrumented(&mut reg);
        bench_json("fault_sweep", &reg)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed fault sweeps must render identical JSON");
    assert!(a.contains("\"figure\": \"fault_sweep\""));
    // Per-rate fault ledgers and the recovery-latency histogram flow
    // through the shared registry.
    assert!(a.contains("\"fault_sweep.rate1000.injected\""));
    assert!(a.contains("\"fault_sweep.rate1000.fault.injected_total\""));
    assert!(a.contains("\"fault_sweep.recovery\""));
    assert!(a.contains("\"fault_sweep.rate0000.goodput_gib\""));
}

#[test]
fn instrumented_and_plain_runs_agree() {
    // run() delegates to run_instrumented(); the rows must be identical.
    let mut reg = MetricsRegistry::new();
    let instrumented = fig11::run_instrumented(&mut reg);
    let plain = fig11::run();
    assert_eq!(instrumented, plain);
}
