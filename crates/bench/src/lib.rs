//! Shared helpers for the benchmark harness.
//!
//! The real content of this crate lives in `benches/` (one Criterion
//! group per paper table/figure, plus ablations and substrate
//! microbenchmarks) and in the [`reproduce`](../src/bin/reproduce.rs)
//! binary, which regenerates every evaluation series as text and CSV.

/// Writes rows as CSV (header + records) into a string.
pub fn to_csv<R: AsRef<[String]>>(header: &[&str], rows: &[R]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.as_ref().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let s = to_csv(&["a", "b"], &rows);
        assert_eq!(s, "a,b\n1,2\n");
    }
}
