//! Shared helpers for the benchmark harness.
//!
//! The real content of this crate lives in `benches/` (one harness group
//! per paper table/figure, plus ablations and substrate microbenchmarks)
//! and in the [`reproduce`](../src/bin/reproduce.rs) binary, which
//! regenerates every evaluation series as text, CSV, and machine-readable
//! `BENCH_<figure>.json` snapshots of the telemetry registry.

pub mod harness;

use enzian_sim::telemetry::{Json, MetricsRegistry};

/// Renders one experiment's telemetry snapshot as the machine-readable
/// `BENCH_<figure>.json` document (schema 1; see `docs/BENCH_SCHEMA.md`).
///
/// The document carries only simulated quantities — figure id, sim time,
/// the driver-defined component-event count, the full metric registry,
/// and a trace-ring summary — so two same-seed runs render byte-identical
/// output.
pub fn bench_json(figure: &str, reg: &MetricsRegistry) -> String {
    Json::obj(vec![
        ("figure", Json::Str(figure.into())),
        ("schema", Json::U64(1)),
        (
            "sim_time_ps",
            Json::U64(reg.counter(&format!("{figure}.sim_time_ps"))),
        ),
        (
            "events_executed",
            Json::U64(reg.counter(&format!("{figure}.events_executed"))),
        ),
        ("metrics", reg.to_json()),
        ("trace", reg.trace().to_json_summary()),
    ])
    .render_pretty()
}

/// Writes rows as CSV (header + records) into a string.
pub fn to_csv<R: AsRef<[String]>>(header: &[&str], rows: &[R]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.as_ref().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let s = to_csv(&["a", "b"], &rows);
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn bench_json_carries_figure_header_and_metrics() {
        let mut reg = MetricsRegistry::new();
        reg.counter_set("figx.sim_time_ps", 1_234);
        reg.counter_set("figx.events_executed", 99);
        reg.gauge_set("figx.bandwidth_gib", 2.5);
        let s = bench_json("figx", &reg);
        assert!(s.contains("\"figure\": \"figx\""));
        assert!(s.contains("\"schema\": 1"));
        assert!(s.contains("\"sim_time_ps\": 1234"));
        assert!(s.contains("\"events_executed\": 99"));
        assert!(s.contains("\"figx.bandwidth_gib\": 2.5"));
        assert!(s.ends_with('\n'));
        // Determinism: rendering the same registry twice is byte-identical.
        assert_eq!(s, bench_json("figx", &reg));
    }
}
