//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [fig3|fig6|fig7|fig8|fig9|fig11|table1|fig12|fault_sweep|
//!            pipelining|modelcheck|cluster_scale|sched_hotpath|service|
//!            cc_sweep|all]
//!           [--csv [dir]] [--bench-dir dir] [--no-bench] [--threads N]
//! ```
//!
//! With no argument (or `all`), prints every series in order. Each
//! section corresponds to one experiment driver in `enzian-platform` and
//! runs with a shared telemetry registry; after each figure the registry
//! snapshot is written as `BENCH_<figure>.json` (schema documented in
//! `docs/BENCH_SCHEMA.md`). The JSON carries only simulated quantities,
//! so same-seed runs produce byte-identical files; wall-clock timings go
//! to stderr only.
//!
//! `--threads N` sets the worker count for `cluster_scale` and
//! `service` (default: available parallelism, capped at 8). The flag
//! changes wall clock only: the bench JSON is byte-identical for every
//! value, which the CI thread matrix asserts.

use enzian_platform::experiments::{
    cc_sweep, cluster_scale, fault_sweep, fig11, fig12, fig3, fig6, fig7, fig8, fig9, modelcheck,
    pipelining, sched_hotpath, service,
};
use enzian_sim::MetricsRegistry;

/// Counts heap traffic so `sched_hotpath` can report per-leg allocation
/// deltas (the POD leg's steady state must stay at zero). Counting two
/// atomics per malloc is noise next to a malloc; every other figure is
/// unaffected.
#[global_allocator]
static ALLOC: enzian_sim::alloc_count::CountingAllocator =
    enzian_sim::alloc_count::CountingAllocator::new();

/// Parsed command-line options.
struct Opts {
    /// Experiment selector (`all` by default).
    experiment: String,
    /// CSV export directory, when `--csv` was given.
    csv: Option<std::path::PathBuf>,
    /// Directory for `BENCH_<figure>.json`; `None` disables the export.
    bench: Option<std::path::PathBuf>,
    /// Worker threads for the parallel cluster engine, when `--threads`
    /// was given.
    threads: Option<usize>,
}

/// Valid experiment selectors.
const EXPERIMENTS: [&str; 16] = [
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig11",
    "table1",
    "fig12",
    "fault_sweep",
    "pipelining",
    "modelcheck",
    "cluster_scale",
    "sched_hotpath",
    "service",
    "cc_sweep",
    "all",
];

fn parse_opts() -> Opts {
    let mut experiment = None;
    let mut csv = None;
    let mut bench = Some(std::path::PathBuf::from("."));
    let mut threads = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--csv" => {
                // Optional directory operand, defaulting to ".".
                let dir = match args.peek() {
                    Some(next)
                        if !next.starts_with("--") && !EXPERIMENTS.contains(&next.as_str()) =>
                    {
                        args.next().unwrap()
                    }
                    _ => ".".into(),
                };
                let dir = std::path::PathBuf::from(dir);
                let _ = std::fs::create_dir_all(&dir);
                csv = Some(dir);
            }
            "--bench-dir" => {
                let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
                let _ = std::fs::create_dir_all(&dir);
                bench = Some(dir);
            }
            "--no-bench" => bench = None,
            "--threads" => {
                let n = args.next().and_then(|s| s.parse::<usize>().ok());
                match n {
                    Some(n) if n >= 1 => threads = Some(n),
                    _ => {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                if experiment.is_none() {
                    experiment = Some(other.to_string());
                } else {
                    eprintln!("ignoring extra argument {other:?}");
                }
            }
        }
    }
    Opts {
        experiment: experiment.unwrap_or_else(|| "all".into()),
        csv,
        bench,
        threads,
    }
}

/// Default worker count for the parallel cluster engine.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Writes `contents` to `<dir>/<name>.csv` when CSV export is enabled.
fn export(dir: &Option<std::path::PathBuf>, name: &str, contents: String) {
    if let Some(dir) = dir {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("csv export to {} failed: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Writes the registry snapshot as `BENCH_<figure>.json` and reports the
/// figure's wall-clock cost (stderr only: the JSON stays deterministic).
fn finish(opts: &Opts, figure: &str, reg: &MetricsRegistry, started: std::time::Instant) {
    if let Some(dir) = &opts.bench {
        let path = dir.join(format!("BENCH_{figure}.json"));
        if let Err(e) = std::fs::write(&path, enzian_bench::bench_json(figure, reg)) {
            eprintln!("bench export to {} failed: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
    eprintln!("{figure}: {} ms wall clock", started.elapsed().as_millis());
}

fn run_fig3(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let points = fig3::run_instrumented(&mut reg);
    println!("{}", fig3::render(&points));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.bandwidth_gib.to_string(),
                p.latency_us.to_string(),
                p.measured.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "fig3",
        enzian_bench::to_csv(&["platform", "bw_gib", "latency_us", "measured"], &rows),
    );
    finish(opts, "fig3", &reg, started);
}

fn run_fig6(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = fig6::run_instrumented(&mut reg);
    println!("{}", fig6::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                r.eci_rd_lat_us.to_string(),
                r.eci_wr_lat_us.to_string(),
                r.pcie_rd_lat_us.to_string(),
                r.pcie_wr_lat_us.to_string(),
                r.eci_rd_gib.to_string(),
                r.eci_wr_gib.to_string(),
                r.pcie_rd_gib.to_string(),
                r.pcie_wr_gib.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "fig6",
        enzian_bench::to_csv(
            &[
                "size_b",
                "eci_rd_us",
                "eci_wr_us",
                "pcie_rd_us",
                "pcie_wr_us",
                "eci_rd_gib",
                "eci_wr_gib",
                "pcie_rd_gib",
                "pcie_wr_gib",
            ],
            &csv,
        ),
    );
    let (bw, lat) = fig6::ccpi_reference();
    println!("Reference (2-socket ThunderX-1 CCPI, both links): {bw:.1} GiB/s, {lat:.0} ns\n");
    finish(opts, "fig6", &reg, started);
}

fn run_fig7(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = fig7::run_instrumented(&mut reg);
    println!("{}", fig7::render(&rows));
    println!("Flow scaling (2 MiB per flow):");
    for (name, gbps) in fig7::run_multiflow() {
        println!("  {name:<10} {gbps:>6.1} Gb/s");
    }
    println!();
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                r.enzian_lat_us.to_string(),
                r.linux_lat_us.to_string(),
                r.enzian_gbps.to_string(),
                r.linux_gbps.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "fig7",
        enzian_bench::to_csv(
            &[
                "size_b",
                "enzian_lat_us",
                "linux_lat_us",
                "enzian_gbps",
                "linux_gbps",
            ],
            &csv,
        ),
    );
    finish(opts, "fig7", &reg, started);
}

fn run_fig8(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = fig8::run_instrumented(&mut reg);
    println!("{}", fig8::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.label().to_string(),
                r.size.to_string(),
                r.rd_lat_us.to_string(),
                r.wr_lat_us.to_string(),
                r.rd_gib.to_string(),
                r.wr_gib.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "fig8",
        enzian_bench::to_csv(
            &[
                "config",
                "size_b",
                "rd_lat_us",
                "wr_lat_us",
                "rd_gib",
                "wr_gib",
            ],
            &csv,
        ),
    );
    finish(opts, "fig8", &reg, started);
}

fn run_fig9(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = fig9::run_instrumented(&mut reg);
    println!("{}", fig9::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.name().to_string(),
                r.engines.to_string(),
                r.mtuples_per_sec.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "fig9",
        enzian_bench::to_csv(&["platform", "engines", "mtuples_per_sec"], &csv),
    );
    finish(opts, "fig9", &reg, started);
}

fn run_fig11(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = fig11::run_instrumented(&mut reg);
    let t1 = fig11::run_table1();
    println!("{}", fig11::render(&rows, &t1));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.label().to_string(),
                r.cores.to_string(),
                r.gpixels_per_sec.to_string(),
                r.interconnect_gib.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "fig11",
        enzian_bench::to_csv(
            &["mode", "cores", "gpixels_per_sec", "interconnect_gib"],
            &csv,
        ),
    );
    let t1csv: Vec<Vec<String>> = t1
        .iter()
        .map(|r| {
            vec![
                r.mode.label().to_string(),
                r.memory_stalls_per_cycle.to_string(),
                r.cycles_per_l1_refill_k.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "table1",
        enzian_bench::to_csv(
            &["mode", "stalls_per_cycle", "cycles_per_l1_refill_k"],
            &t1csv,
        ),
    );
    finish(opts, "fig11", &reg, started);
}

fn run_table1() {
    let rows = fig11::run();
    let t1 = fig11::run_table1();
    // render() prints both panels; table1 is the second.
    let all = fig11::render(&rows, &t1);
    if let Some(idx) = all.find("Table 1") {
        println!("{}", &all[idx..]);
    }
}

fn run_fig12(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let result = fig12::run_instrumented(&mut reg);
    println!("{}", fig12::render(&result));
    if opts.csv.is_some() {
        use enzian_bmc::telemetry::TraceId;
        let mut csv = Vec::new();
        let n = result.traces[&TraceId::Cpu].len();
        for i in 0..n {
            let t = result.traces[&TraceId::Cpu].points()[i].0;
            let mut row = vec![format!("{}", t.as_secs_f64())];
            for id in TraceId::ALL {
                row.push(result.traces[&id].points()[i].1.to_string());
            }
            csv.push(row);
        }
        export(
            &opts.csv,
            "fig12",
            enzian_bench::to_csv(&["t_s", "fpga_w", "cpu_w", "dram0_w", "dram1_w"], &csv),
        );
    }
    finish(opts, "fig12", &reg, started);
}

fn run_fault_sweep(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = fault_sweep::run_instrumented(&mut reg);
    println!("{}", fault_sweep::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.rate_bp.to_string(),
                r.goodput_gib.to_string(),
                r.injected.to_string(),
                r.retransmissions.to_string(),
                r.txn_retries.to_string(),
                r.txn_failures.to_string(),
                r.mean_recovery_ns.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "fault_sweep",
        enzian_bench::to_csv(
            &[
                "rate_bp",
                "goodput_gib",
                "injected",
                "retransmissions",
                "txn_retries",
                "txn_failures",
                "mean_recovery_ns",
            ],
            &csv,
        ),
    );
    finish(opts, "fault_sweep", &reg, started);
}

fn run_cc_sweep(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = cc_sweep::run_instrumented(&mut reg);
    println!("{}", cc_sweep::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stack.clone(),
                r.cc.to_string(),
                r.loss_bp.to_string(),
                r.size.to_string(),
                r.latency_us.to_string(),
                r.gbps.to_string(),
                r.segments.to_string(),
                r.retransmissions.to_string(),
                r.cwnd_mean.to_string(),
                r.cwnd_min.to_string(),
                r.cwnd_max.to_string(),
                r.cwnd_stalls.to_string(),
                r.rwnd_stalls.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "cc_sweep",
        enzian_bench::to_csv(
            &[
                "stack",
                "cc",
                "loss_bp",
                "size_b",
                "latency_us",
                "gbps",
                "segments",
                "retransmissions",
                "cwnd_mean",
                "cwnd_min",
                "cwnd_max",
                "cwnd_stalls",
                "rwnd_stalls",
            ],
            &csv,
        ),
    );
    finish(opts, "cc_sweep", &reg, started);
}

fn run_pipelining(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = pipelining::run_instrumented(&mut reg);
    println!("{}", pipelining::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.outstanding.to_string(),
                r.goodput_gib.to_string(),
                r.mean_latency_ns.to_string(),
                r.max_inflight.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "pipelining",
        enzian_bench::to_csv(
            &[
                "outstanding",
                "goodput_gib",
                "mean_latency_ns",
                "max_inflight",
            ],
            &csv,
        ),
    );
    finish(opts, "pipelining", &reg, started);
}

fn run_modelcheck(opts: &Opts) {
    let started = std::time::Instant::now();
    let mut reg = MetricsRegistry::new();
    let rows = modelcheck::run_instrumented(&mut reg);
    println!("{}", modelcheck::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.mode.to_string(),
                r.states.to_string(),
                r.transitions.to_string(),
                r.frontier_peak.to_string(),
                r.max_depth.to_string(),
                r.violation.clone().unwrap_or_default(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "modelcheck",
        enzian_bench::to_csv(
            &[
                "configuration",
                "mode",
                "states",
                "transitions",
                "frontier_peak",
                "max_depth",
                "violation",
            ],
            &csv,
        ),
    );
    finish(opts, "modelcheck", &reg, started);
}

fn run_cluster_scale(opts: &Opts, measure_speedup: bool) {
    let started = std::time::Instant::now();
    let threads = opts.threads.unwrap_or_else(default_threads);
    let mut reg = MetricsRegistry::new();
    let par_started = std::time::Instant::now();
    let rows = cluster_scale::run_instrumented(threads, &mut reg);
    let par_wall = par_started.elapsed();
    println!("{}", cluster_scale::render(&rows));
    if measure_speedup && threads > 1 {
        // Wall clock is the only thread-dependent observable; measure
        // it against a sequential run and assert everything else is
        // bit-identical. Stderr only, so the bench JSON stays pure.
        let mut seq_reg = MetricsRegistry::new();
        let seq_started = std::time::Instant::now();
        let seq_rows = cluster_scale::run_instrumented(1, &mut seq_reg);
        let seq_wall = seq_started.elapsed();
        assert_eq!(rows, seq_rows, "thread count leaked into the rows");
        assert_eq!(
            reg.export_json(),
            seq_reg.export_json(),
            "thread count leaked into the metrics export"
        );
        eprintln!(
            "cluster_scale: threads=1 {:.0} ms vs threads={threads} {:.0} ms ({:.2}x speedup)",
            seq_wall.as_secs_f64() * 1e3,
            par_wall.as_secs_f64() * 1e3,
            seq_wall.as_secs_f64() / par_wall.as_secs_f64()
        );
    }
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.boards.to_string(),
                r.total_ops.to_string(),
                r.remote_pct.to_string(),
                r.bridge_frames.to_string(),
                r.goodput_gib.to_string(),
                r.sim_end_us.to_string(),
                r.epochs.to_string(),
                r.messages.to_string(),
                r.trace_digest.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "cluster_scale",
        enzian_bench::to_csv(
            &[
                "boards",
                "total_ops",
                "remote_pct",
                "bridge_frames",
                "goodput_gib",
                "sim_end_us",
                "epochs",
                "messages",
                "trace_digest",
            ],
            &csv,
        ),
    );
    finish(opts, "cluster_scale", &reg, started);
}

fn run_sched_hotpath(opts: &Opts) {
    let started = std::time::Instant::now();
    let threads = opts.threads.unwrap_or_else(default_threads);
    let mut reg = MetricsRegistry::new();
    let rows = sched_hotpath::run_instrumented(threads, &mut reg);
    println!("{}", sched_hotpath::render(&rows));
    let reference = rows
        .iter()
        .find(|r| r.leg == "reference")
        .expect("reference leg missing");
    for r in &rows {
        if r.leg != "reference" {
            eprintln!(
                "sched_hotpath: {} {:.2} Mev/s vs reference {:.2} Mev/s ({:.2}x)",
                r.leg,
                r.mevents_per_sec(),
                reference.mevents_per_sec(),
                r.mevents_per_sec() / reference.mevents_per_sec()
            );
        }
    }
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.leg.to_string(),
                r.events.to_string(),
                r.digest.to_string(),
                r.allocs.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "sched_hotpath",
        enzian_bench::to_csv(&["leg", "events", "digest", "allocs"], &csv),
    );
    finish(opts, "sched_hotpath", &reg, started);
}

fn run_service(opts: &Opts, measure_speedup: bool) {
    let started = std::time::Instant::now();
    let threads = opts.threads.unwrap_or_else(default_threads);
    let mut reg = MetricsRegistry::new();
    let par_started = std::time::Instant::now();
    let rows = service::run_instrumented(threads, &mut reg);
    let par_wall = par_started.elapsed();
    println!("{}", service::render(&rows));
    if measure_speedup && threads > 1 {
        // Same discipline as cluster_scale: wall clock is the only
        // thread-dependent observable; everything exported must be
        // bit-identical to a sequential run.
        let mut seq_reg = MetricsRegistry::new();
        let seq_started = std::time::Instant::now();
        let seq_rows = service::run_instrumented(1, &mut seq_reg);
        let seq_wall = seq_started.elapsed();
        assert_eq!(rows, seq_rows, "thread count leaked into the rows");
        assert_eq!(
            reg.export_json(),
            seq_reg.export_json(),
            "thread count leaked into the metrics export"
        );
        eprintln!(
            "service: threads=1 {:.0} ms vs threads={threads} {:.0} ms ({:.2}x speedup)",
            seq_wall.as_secs_f64() * 1e3,
            par_wall.as_secs_f64() * 1e3,
            seq_wall.as_secs_f64() / par_wall.as_secs_f64()
        );
    }
    let opt_cell = |v: Option<f64>| v.map_or_else(String::new, |x| x.to_string());
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                r.ok_ops.to_string(),
                r.failed_ops.to_string(),
                r.crashed_ops.to_string(),
                r.stale_served.to_string(),
                r.avail_in_pct.to_string(),
                r.avail_out_pct.to_string(),
                opt_cell(r.get_p50_us),
                opt_cell(r.get_p99_us),
                opt_cell(r.put_p99_us),
                r.failovers.to_string(),
                opt_cell(r.failover_p99_us),
                r.solo_commits.to_string(),
                r.fenced.to_string(),
                r.catchups_completed.to_string(),
                r.epochs.to_string(),
                r.messages.to_string(),
                r.digest.to_string(),
            ]
        })
        .collect();
    export(
        &opts.csv,
        "service",
        enzian_bench::to_csv(
            &[
                "scenario",
                "ok_ops",
                "failed_ops",
                "crashed_ops",
                "stale_served",
                "avail_in_pct",
                "avail_out_pct",
                "get_p50_us",
                "get_p99_us",
                "put_p99_us",
                "failovers",
                "failover_p99_us",
                "solo_commits",
                "fenced",
                "catchups_completed",
                "epochs",
                "messages",
                "digest",
            ],
            &csv,
        ),
    );
    finish(opts, "service", &reg, started);
}

fn main() {
    let opts = parse_opts();
    match opts.experiment.as_str() {
        "fig3" => run_fig3(&opts),
        "fig6" => run_fig6(&opts),
        "fig7" => run_fig7(&opts),
        "fig8" => run_fig8(&opts),
        "fig9" => run_fig9(&opts),
        "fig11" => run_fig11(&opts),
        "table1" => run_table1(),
        "fig12" => run_fig12(&opts),
        "fault_sweep" => run_fault_sweep(&opts),
        "cc_sweep" => run_cc_sweep(&opts),
        "pipelining" => run_pipelining(&opts),
        "modelcheck" => run_modelcheck(&opts),
        "cluster_scale" => run_cluster_scale(&opts, true),
        "sched_hotpath" => run_sched_hotpath(&opts),
        "service" => run_service(&opts, true),
        "all" => {
            run_fig3(&opts);
            run_fig6(&opts);
            run_fig7(&opts);
            run_fig8(&opts);
            run_fig9(&opts);
            run_fig11(&opts);
            run_fig12(&opts);
            run_fault_sweep(&opts);
            run_cc_sweep(&opts);
            run_pipelining(&opts);
            run_modelcheck(&opts);
            run_cluster_scale(&opts, false);
            run_sched_hotpath(&opts);
            run_service(&opts, false);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of \
                 fig3|fig6|fig7|fig8|fig9|fig11|table1|fig12|fault_sweep|pipelining|\
                 modelcheck|cluster_scale|sched_hotpath|service|cc_sweep|all"
            );
            std::process::exit(2);
        }
    }
}
