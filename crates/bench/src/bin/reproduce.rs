//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [fig3|fig6|fig7|fig8|fig9|fig11|table1|fig12|all]
//! ```
//!
//! With no argument (or `all`), prints every series in order. Each
//! section corresponds to one experiment driver in `enzian-platform`.

use enzian_platform::experiments::{fig11, fig12, fig3, fig6, fig7, fig8, fig9};

/// Writes `contents` to `<dir>/<name>.csv` when CSV export is enabled.
fn export(dir: &Option<std::path::PathBuf>, name: &str, contents: String) {
    if let Some(dir) = dir {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("csv export to {} failed: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

fn csv_dir() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--csv" {
            let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
            let _ = std::fs::create_dir_all(&dir);
            return Some(dir);
        }
    }
    None
}

fn run_fig3() {
    let points = fig3::run();
    println!("{}", fig3::render(&points));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                p.bandwidth_gib.to_string(),
                p.latency_us.to_string(),
                p.measured.to_string(),
            ]
        })
        .collect();
    export(
        &csv_dir(),
        "fig3",
        enzian_bench::to_csv(&["platform", "bw_gib", "latency_us", "measured"], &rows),
    );
}

fn run_fig6() {
    let rows = fig6::run();
    println!("{}", fig6::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                r.eci_rd_lat_us.to_string(),
                r.eci_wr_lat_us.to_string(),
                r.pcie_rd_lat_us.to_string(),
                r.pcie_wr_lat_us.to_string(),
                r.eci_rd_gib.to_string(),
                r.eci_wr_gib.to_string(),
                r.pcie_rd_gib.to_string(),
                r.pcie_wr_gib.to_string(),
            ]
        })
        .collect();
    export(
        &csv_dir(),
        "fig6",
        enzian_bench::to_csv(
            &[
                "size_b", "eci_rd_us", "eci_wr_us", "pcie_rd_us", "pcie_wr_us", "eci_rd_gib",
                "eci_wr_gib", "pcie_rd_gib", "pcie_wr_gib",
            ],
            &csv,
        ),
    );
    let (bw, lat) = fig6::ccpi_reference();
    println!(
        "Reference (2-socket ThunderX-1 CCPI, both links): {bw:.1} GiB/s, {lat:.0} ns\n"
    );
}

fn run_fig7() {
    let rows = fig7::run();
    println!("{}", fig7::render(&rows));
    println!("Flow scaling (2 MiB per flow):");
    for (name, gbps) in fig7::run_multiflow() {
        println!("  {name:<10} {gbps:>6.1} Gb/s");
    }
    println!();
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.size.to_string(),
                r.enzian_lat_us.to_string(),
                r.linux_lat_us.to_string(),
                r.enzian_gbps.to_string(),
                r.linux_gbps.to_string(),
            ]
        })
        .collect();
    export(
        &csv_dir(),
        "fig7",
        enzian_bench::to_csv(
            &["size_b", "enzian_lat_us", "linux_lat_us", "enzian_gbps", "linux_gbps"],
            &csv,
        ),
    );
}

fn run_fig8() {
    let rows = fig8::run();
    println!("{}", fig8::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.label().to_string(),
                r.size.to_string(),
                r.rd_lat_us.to_string(),
                r.wr_lat_us.to_string(),
                r.rd_gib.to_string(),
                r.wr_gib.to_string(),
            ]
        })
        .collect();
    export(
        &csv_dir(),
        "fig8",
        enzian_bench::to_csv(
            &["config", "size_b", "rd_lat_us", "wr_lat_us", "rd_gib", "wr_gib"],
            &csv,
        ),
    );
}

fn run_fig9() {
    let rows = fig9::run();
    println!("{}", fig9::render(&rows));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.name().to_string(),
                r.engines.to_string(),
                r.mtuples_per_sec.to_string(),
            ]
        })
        .collect();
    export(
        &csv_dir(),
        "fig9",
        enzian_bench::to_csv(&["platform", "engines", "mtuples_per_sec"], &csv),
    );
}

fn run_fig11() {
    let rows = fig11::run();
    let t1 = fig11::run_table1();
    println!("{}", fig11::render(&rows, &t1));
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.label().to_string(),
                r.cores.to_string(),
                r.gpixels_per_sec.to_string(),
                r.interconnect_gib.to_string(),
            ]
        })
        .collect();
    export(
        &csv_dir(),
        "fig11",
        enzian_bench::to_csv(&["mode", "cores", "gpixels_per_sec", "interconnect_gib"], &csv),
    );
    let t1csv: Vec<Vec<String>> = t1
        .iter()
        .map(|r| {
            vec![
                r.mode.label().to_string(),
                r.memory_stalls_per_cycle.to_string(),
                r.cycles_per_l1_refill_k.to_string(),
            ]
        })
        .collect();
    export(
        &csv_dir(),
        "table1",
        enzian_bench::to_csv(&["mode", "stalls_per_cycle", "cycles_per_l1_refill_k"], &t1csv),
    );
}

fn run_table1() {
    let rows = fig11::run();
    let t1 = fig11::run_table1();
    // render() prints both panels; table1 is the second.
    let all = fig11::render(&rows, &t1);
    if let Some(idx) = all.find("Table 1") {
        println!("{}", &all[idx..]);
    }
}

fn run_fig12() {
    let result = fig12::run();
    println!("{}", fig12::render(&result));
    if let Some(dir) = csv_dir() {
        use enzian_bmc::telemetry::TraceId;
        let mut csv = Vec::new();
        let n = result.traces[&TraceId::Cpu].len();
        for i in 0..n {
            let t = result.traces[&TraceId::Cpu].points()[i].0;
            let mut row = vec![format!("{}", t.as_secs_f64())];
            for id in TraceId::ALL {
                row.push(result.traces[&id].points()[i].1.to_string());
            }
            csv.push(row);
        }
        export(
            &Some(dir),
            "fig12",
            enzian_bench::to_csv(&["t_s", "fpga_w", "cpu_w", "dram0_w", "dram1_w"], &csv),
        );
    }
}

fn main() {
    let arg = std::env::args()
        .nth(1)
        .filter(|a| a != "--csv")
        .unwrap_or_else(|| "all".into());
    match arg.as_str() {
        "fig3" => run_fig3(),
        "fig6" => run_fig6(),
        "fig7" => run_fig7(),
        "fig8" => run_fig8(),
        "fig9" => run_fig9(),
        "fig11" => run_fig11(),
        "table1" => run_table1(),
        "fig12" => run_fig12(),
        "all" => {
            run_fig3();
            run_fig6();
            run_fig7();
            run_fig8();
            run_fig9();
            run_fig11();
            run_fig12();
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of \
                 fig3|fig6|fig7|fig8|fig9|fig11|table1|fig12|all"
            );
            std::process::exit(2);
        }
    }
}
