//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [fig3|fig6|fig7|fig8|fig9|fig11|table1|fig12|fault_sweep|
//!            pipelining|modelcheck|cluster_scale|sched_hotpath|service|
//!            cc_sweep|traffic|all]
//!           [--csv [dir]] [--bench-dir dir] [--no-bench] [--threads N]
//! ```
//!
//! With no argument (or `all`), prints every series in order. Every
//! experiment is an [`Experiment`] in `enzian-platform`'s registry; this
//! binary looks the selector up with `experiments::find()` and drives
//! one generic loop: run with a shared telemetry registry, print the
//! rendered series, export each CSV table, then write the registry
//! snapshot as `BENCH_<name>.json` (schema documented in
//! `docs/BENCH_SCHEMA.md`). The JSON carries only simulated quantities,
//! so same-seed runs produce byte-identical files; wall-clock timings go
//! to stderr only.
//!
//! `--threads N` sets the worker count for the experiments that run on
//! the parallel cluster engine (default: available parallelism, capped
//! at 8). The flag changes wall clock only: the bench JSON is
//! byte-identical for every value, which the CI thread matrix asserts.

use enzian_platform::experiments::{self, fig11, Experiment, ExperimentCtx};
use enzian_sim::MetricsRegistry;

/// Counts heap traffic so `sched_hotpath` can report per-leg allocation
/// deltas (the POD leg's steady state must stay at zero). Counting two
/// atomics per malloc is noise next to a malloc; every other figure is
/// unaffected.
#[global_allocator]
static ALLOC: enzian_sim::alloc_count::CountingAllocator =
    enzian_sim::alloc_count::CountingAllocator::new();

/// Parsed command-line options.
struct Opts {
    /// Experiment selector (`all` by default).
    experiment: String,
    /// CSV export directory, when `--csv` was given.
    csv: Option<std::path::PathBuf>,
    /// Directory for `BENCH_<figure>.json`; `None` disables the export.
    bench: Option<std::path::PathBuf>,
    /// Worker threads for the parallel cluster engine, when `--threads`
    /// was given.
    threads: Option<usize>,
}

/// Every valid selector: the registry names plus the two aliases this
/// binary adds (`table1` prints figure 11's second panel, `all` runs
/// the whole registry).
fn selectors() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = experiments::registry().iter().map(|e| e.name()).collect();
    names.push("table1");
    names.push("all");
    names
}

fn parse_opts() -> Opts {
    let mut experiment = None;
    let mut csv = None;
    let mut bench = Some(std::path::PathBuf::from("."));
    let mut threads = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--csv" => {
                // Optional directory operand, defaulting to ".".
                let dir = match args.peek() {
                    Some(next)
                        if !next.starts_with("--") && !selectors().contains(&next.as_str()) =>
                    {
                        args.next().unwrap()
                    }
                    _ => ".".into(),
                };
                let dir = std::path::PathBuf::from(dir);
                let _ = std::fs::create_dir_all(&dir);
                csv = Some(dir);
            }
            "--bench-dir" => {
                let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
                let _ = std::fs::create_dir_all(&dir);
                bench = Some(dir);
            }
            "--no-bench" => bench = None,
            "--threads" => {
                let n = args.next().and_then(|s| s.parse::<usize>().ok());
                match n {
                    Some(n) if n >= 1 => threads = Some(n),
                    _ => {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                if experiment.is_none() {
                    experiment = Some(other.to_string());
                } else {
                    eprintln!("ignoring extra argument {other:?}");
                }
            }
        }
    }
    Opts {
        experiment: experiment.unwrap_or_else(|| "all".into()),
        csv,
        bench,
        threads,
    }
}

/// Default worker count for the parallel cluster engine.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Writes `contents` to `<dir>/<name>.csv` when CSV export is enabled.
fn export(dir: &Option<std::path::PathBuf>, name: &str, contents: String) {
    if let Some(dir) = dir {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("csv export to {} failed: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// Writes the registry snapshot as `BENCH_<figure>.json` and reports the
/// figure's wall-clock cost (stderr only: the JSON stays deterministic).
fn finish(opts: &Opts, figure: &str, reg: &MetricsRegistry, started: std::time::Instant) {
    if let Some(dir) = &opts.bench {
        let path = dir.join(format!("BENCH_{figure}.json"));
        if let Err(e) = std::fs::write(&path, enzian_bench::bench_json(figure, reg)) {
            eprintln!("bench export to {} failed: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
    eprintln!("{figure}: {} ms wall clock", started.elapsed().as_millis());
}

/// The generic driver every experiment runs through: run, print the
/// rendered series, export the CSV tables, snapshot the registry.
///
/// `single` marks a one-experiment invocation; for those, experiments
/// with [`Experiment::speedup_check`] re-run sequentially so the wall
/// clocks can be compared — and everything else asserted bit-identical,
/// since wall clock must be the only thread-dependent observable.
fn run_one(e: &dyn Experiment, opts: &Opts, single: bool) {
    let started = std::time::Instant::now();
    let threads = if e.needs_threads() {
        opts.threads.unwrap_or_else(default_threads)
    } else {
        1
    };
    let mut reg = MetricsRegistry::new();
    let par_started = std::time::Instant::now();
    let rows = e.run(&mut ExperimentCtx {
        reg: &mut reg,
        threads,
    });
    let par_wall = par_started.elapsed();
    println!("{}", e.render(&rows));
    if single && e.speedup_check() && threads > 1 {
        let mut seq_reg = MetricsRegistry::new();
        let seq_started = std::time::Instant::now();
        let seq_rows = e.run(&mut ExperimentCtx {
            reg: &mut seq_reg,
            threads: 1,
        });
        let seq_wall = seq_started.elapsed();
        assert_eq!(
            rows.tables, seq_rows.tables,
            "thread count leaked into the rows"
        );
        assert_eq!(
            reg.export_json(),
            seq_reg.export_json(),
            "thread count leaked into the metrics export"
        );
        eprintln!(
            "{}: threads=1 {:.0} ms vs threads={threads} {:.0} ms ({:.2}x speedup)",
            e.name(),
            seq_wall.as_secs_f64() * 1e3,
            par_wall.as_secs_f64() * 1e3,
            seq_wall.as_secs_f64() / par_wall.as_secs_f64()
        );
    }
    for t in &rows.tables {
        export(&opts.csv, t.name, enzian_bench::to_csv(t.header, &t.rows));
    }
    finish(opts, e.name(), &reg, started);
}

/// The `table1` alias: figure 11's second panel on its own, without
/// telemetry or exports.
fn run_table1() {
    let rows = fig11::run();
    let t1 = fig11::run_table1();
    // render() prints both panels; table1 is the second.
    let all = fig11::render(&rows, &t1);
    if let Some(idx) = all.find("Table 1") {
        println!("{}", &all[idx..]);
    }
}

fn main() {
    let opts = parse_opts();
    match opts.experiment.as_str() {
        "all" => {
            for e in experiments::registry() {
                run_one(*e, &opts, false);
            }
        }
        "table1" => run_table1(),
        name => match experiments::find(name) {
            Ok(e) => run_one(e, &opts, true),
            Err(err) => {
                eprintln!("{err} (aliases: table1|all)");
                std::process::exit(2);
            }
        },
    }
}
