//! Perf-regression gate over `BENCH_<figure>.json` files.
//!
//! ```text
//! perfgate compare A.json B.json
//! perfgate baseline BASELINE.json CURRENT.json
//! perfgate speedup BENCH.json NUM_KEY DEN_KEY --min RATIO
//! ```
//!
//! * `compare` — asserts two bench exports are identical modulo the
//!   `*.timing.*` wall-clock gauges (the determinism contract: two
//!   same-seed runs must agree on every simulated quantity).
//! * `baseline` — asserts the current export does not regress against a
//!   committed baseline: every non-timing key in the baseline must be
//!   present, `*.allocs` counters may only stay equal or drop, and
//!   every other value must match exactly. New keys in the current file
//!   are allowed (schema growth is not a regression).
//! * `speedup` — asserts `NUM_KEY / DEN_KEY >= RATIO` over the timing
//!   gauges of one export (wall-clock, so this is a floor, not an
//!   equality).
//!
//! The bench schema is the hand-rolled flat-key JSON documented in
//! `docs/BENCH_SCHEMA.md`; the parser here reads exactly that shape
//! (one `"dotted.key": value` pair per line) and nothing more general.

use std::process::exit;

/// Reads `path` and returns its `(key, raw value)` pairs in file order.
///
/// Works on the bench schema only: every scalar field is a single line
/// `"key": value` (value = number or string; trailing comma optional).
/// Structural lines (`{`, `}`, `"metrics": {`) carry no value and are
/// skipped.
fn parse(path: &str) -> Vec<(String, String)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perfgate: cannot read {path}: {e}");
            exit(2);
        }
    };
    let mut pairs = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, after)) = rest.split_once('"') else {
            continue;
        };
        let Some(value) = after.strip_prefix(':') else {
            continue;
        };
        let value = value.trim().trim_end_matches(',').trim();
        if value.is_empty() || value == "{" || value == "[" {
            continue; // nested object/array opener, not a scalar
        }
        pairs.push((key.to_string(), value.to_string()));
    }
    pairs
}

/// `true` for wall-clock keys exempt from determinism comparisons.
fn is_timing(key: &str) -> bool {
    key.contains(".timing.")
}

fn cmd_compare(a: &str, b: &str) -> i32 {
    let pa: Vec<_> = parse(a)
        .into_iter()
        .filter(|(k, _)| !is_timing(k))
        .collect();
    let pb: Vec<_> = parse(b)
        .into_iter()
        .filter(|(k, _)| !is_timing(k))
        .collect();
    let mut bad = 0;
    for ((ka, va), (kb, vb)) in pa.iter().zip(&pb) {
        if ka != kb {
            eprintln!("perfgate: key order diverged: {ka:?} vs {kb:?}");
            bad += 1;
            break;
        }
        if va != vb {
            eprintln!("perfgate: {ka}: {va} != {vb}");
            bad += 1;
        }
    }
    if pa.len() != pb.len() {
        eprintln!(
            "perfgate: key count diverged: {} in {a}, {} in {b}",
            pa.len(),
            pb.len()
        );
        bad += 1;
    }
    if bad == 0 {
        println!(
            "perfgate: {a} and {b} agree on all {} non-timing values",
            pa.len()
        );
        0
    } else {
        eprintln!("perfgate: {bad} determinism violation(s) between {a} and {b}");
        1
    }
}

fn cmd_baseline(base: &str, cur: &str) -> i32 {
    let baseline = parse(base);
    let current = parse(cur);
    let lookup = |key: &str| -> Option<&str> {
        current
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let mut bad = 0;
    let mut checked = 0;
    for (key, want) in baseline.iter().filter(|(k, _)| !is_timing(k)) {
        checked += 1;
        let Some(got) = lookup(key) else {
            eprintln!("perfgate: {key} missing from {cur}");
            bad += 1;
            continue;
        };
        if key.ends_with(".allocs") {
            // Allocation counters are a ratchet: dropping below the
            // committed baseline is an improvement, rising above it is
            // the regression this gate exists to catch.
            let (Ok(w), Ok(g)) = (want.parse::<u64>(), got.parse::<u64>()) else {
                eprintln!("perfgate: {key}: non-numeric alloc counter ({want} / {got})");
                bad += 1;
                continue;
            };
            if g > w {
                eprintln!("perfgate: {key}: {g} allocations > baseline {w}");
                bad += 1;
            }
        } else if got != want {
            eprintln!("perfgate: {key}: {got} != baseline {want}");
            bad += 1;
        }
    }
    if bad == 0 {
        println!("perfgate: {cur} holds the {base} baseline ({checked} keys)");
        0
    } else {
        eprintln!("perfgate: {bad} regression(s) in {cur} against {base}");
        1
    }
}

fn cmd_speedup(file: &str, num_key: &str, den_key: &str, min: f64) -> i32 {
    let pairs = parse(file);
    let get = |key: &str| -> f64 {
        match pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse::<f64>().ok())
        {
            Some(v) => v,
            None => {
                eprintln!("perfgate: {key} missing or non-numeric in {file}");
                exit(2);
            }
        }
    };
    let num = get(num_key);
    let den = get(den_key);
    let ratio = num / den;
    if ratio >= min {
        println!("perfgate: {num_key} / {den_key} = {ratio:.2}x (floor {min:.2}x)");
        0
    } else {
        eprintln!("perfgate: speedup {ratio:.2}x below the {min:.2}x floor ({num:.3} / {den:.3})");
        1
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: perfgate compare A.json B.json\n\
         \x20      perfgate baseline BASELINE.json CURRENT.json\n\
         \x20      perfgate speedup BENCH.json NUM_KEY DEN_KEY --min RATIO"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("compare") if args.len() == 3 => cmd_compare(&args[1], &args[2]),
        Some("baseline") if args.len() == 3 => cmd_baseline(&args[1], &args[2]),
        Some("speedup") if args.len() == 6 && args[4] == "--min" => {
            let min = args[5].parse::<f64>().unwrap_or_else(|_| usage());
            cmd_speedup(&args[1], &args[2], &args[3], min)
        }
        _ => usage(),
    };
    exit(code);
}
