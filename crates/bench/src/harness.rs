//! A minimal, dependency-free micro-benchmark harness.
//!
//! Drop-in for the subset of the Criterion API the `benches/` files use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `iter`), so the workspace builds with no external
//! crates. Each benchmark warms up briefly, then runs timed batches until
//! a fixed measurement budget is spent, and reports the per-iteration
//! mean plus derived throughput on stdout.
//!
//! Honors `ENZIAN_BENCH_FAST=1` to shrink the budget (used by the CI
//! smoke job so `cargo bench` stays fast).

use std::fmt::Display;
use std::hint::black_box as bb;
use std::time::{Duration as WallDuration, Instant};

/// Measurement driver handed to each `bench_*` closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: WallDuration,
    budget: WallDuration,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few untimed iterations so lazy init is off the clock.
        for _ in 0..3 {
            bb(f());
        }
        let mut batch = 1u64;
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                bb(f());
            }
            self.elapsed += t0.elapsed();
            self.iters_done += batch;
            // Grow batches so timer overhead amortises away.
            batch = (batch * 2).min(1 << 20);
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters_done == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters_done as f64
    }
}

/// Units processed per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Top-level harness state; one per `criterion_group!` runner.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
            budget: default_budget(),
        }
    }
}

fn default_budget() -> WallDuration {
    if std::env::var_os("ENZIAN_BENCH_FAST").is_some() {
        WallDuration::from_millis(5)
    } else {
        WallDuration::from_millis(100)
    }
}

/// A group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
    budget: WallDuration,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used to derive throughput for
    /// subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for Criterion compatibility; the harness sizes runs by
    /// time budget rather than sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: WallDuration::ZERO,
            budget: self.budget,
        };
        f(&mut b);
        self.report(&id.label, &b);
        self
    }

    /// Runs one benchmark closure over an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: WallDuration::ZERO,
            budget: self.budget,
        };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let ns = b.ns_per_iter();
        let mut line = format!("  {label}: {ns:.1} ns/iter ({} iters)", b.iters_done);
        if ns > 0.0 {
            match self.throughput {
                Some(Throughput::Bytes(n)) => {
                    let gib = n as f64 / ns * 1e9 / (1u64 << 30) as f64;
                    line.push_str(&format!(", {gib:.3} GiB/s"));
                }
                Some(Throughput::Elements(n)) => {
                    let meps = n as f64 / ns * 1e9 / 1e6;
                    line.push_str(&format!(", {meps:.3} Melem/s"));
                }
                None => {}
            }
        }
        println!("{line}");
    }
}

/// Declares a benchmark group runner, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

pub use crate::{criterion_group, criterion_main};
