//! The MMIO register path over PCIe.
//!
//! Before any DMA moves, software talks to the card through memory-mapped
//! registers: posted writes (fire-and-forget through write-combining
//! buffers) and non-posted reads (a full PCIe round trip that stalls the
//! issuing core). The asymmetry matters: it is why doorbells are writes
//! and why polled status registers are expensive — and it is part of the
//! fixed cost ECI avoids by making device interaction a cache-line
//! protocol.

use std::collections::HashMap;

use enzian_sim::{Duration, Time};

/// The card's register file behind a PCIe MMIO window.
#[derive(Debug, Default)]
pub struct MmioWindow {
    regs: HashMap<u64, u64>,
    /// Posted-write latency (host-visible completion; the TLP is fired
    /// into the write-combining buffer and the core moves on).
    post_latency: Duration,
    /// Non-posted read round trip.
    read_latency: Duration,
    reads: u64,
    writes: u64,
}

impl MmioWindow {
    /// Creates a window with typical Gen3 latencies: ~100 ns to post a
    /// write, ~900 ns for a read round trip.
    pub fn new() -> Self {
        MmioWindow {
            regs: HashMap::new(),
            post_latency: Duration::from_ns(100),
            read_latency: Duration::from_ns(900),
            reads: 0,
            writes: 0,
        }
    }

    /// Posts a 64-bit register write; returns when the *core* retires it
    /// (not when the device sees it — posted semantics).
    pub fn write(&mut self, now: Time, reg: u64, value: u64) -> Time {
        self.regs.insert(reg, value);
        self.writes += 1;
        now + self.post_latency
    }

    /// Non-posted 64-bit register read; the core stalls for the round
    /// trip.
    pub fn read(&mut self, now: Time, reg: u64) -> (u64, Time) {
        self.reads += 1;
        (
            self.regs.get(&reg).copied().unwrap_or(0),
            now + self.read_latency,
        )
    }

    /// `(reads, writes)` performed.
    pub fn stats(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_hold_values() {
        let mut w = MmioWindow::new();
        let t = w.write(Time::ZERO, 0x10, 0xABCD);
        let (v, t2) = w.read(t, 0x10);
        assert_eq!(v, 0xABCD);
        assert!(t2 > t);
        let (zero, _) = w.read(t2, 0x999);
        assert_eq!(zero, 0);
    }

    #[test]
    fn reads_cost_far_more_than_writes() {
        let mut w = MmioWindow::new();
        let wr = w.write(Time::ZERO, 0, 1).since(Time::ZERO);
        let (_, t) = w.read(Time::ZERO, 0);
        let rd = t.since(Time::ZERO);
        assert!(rd > wr * 5, "read {rd} vs write {wr}");
    }

    #[test]
    fn polling_a_status_register_is_expensive() {
        // 100 polls of a status register: ~90 us of core stall — the
        // cost profile that motivates interrupt-driven completion.
        let mut w = MmioWindow::new();
        let mut t = Time::ZERO;
        for _ in 0..100 {
            let (_, t2) = w.read(t, 0x20);
            t = t2;
        }
        assert!(t.since(Time::ZERO) >= Duration::from_us(85));
        assert_eq!(w.stats(), (100, 0));
    }
}
