//! Transaction-layer packet (TLP) framing arithmetic.
//!
//! A memory-write TLP carries up to Max-Payload-Size (MPS) bytes of data
//! behind a 12-byte 3DW header (or 16-byte 4DW for 64-bit addresses),
//! 4 bytes of LCRC, and 2+4 bytes of physical framing/sequence — plus the
//! ACK/FC DLLP tax. We fold all of that into a fixed per-TLP overhead.

/// Per-TLP overhead on the wire: 16 B header (4DW) + 4 B LCRC +
/// 6 B framing/sequence = 26 B, rounded up to cover DLLP tax.
pub const TLP_OVERHEAD_BYTES: u64 = 28;

/// Number of TLPs needed to move `bytes` at a given MPS.
///
/// # Panics
///
/// Panics if `mps` is zero.
pub fn tlp_count(bytes: u64, mps: u64) -> u64 {
    assert!(mps > 0, "zero max payload size");
    bytes.div_ceil(mps).max(1)
}

/// Total wire bytes to move `bytes` of payload at a given MPS, including
/// per-TLP overhead. Zero-byte transfers still cost one TLP (a zero-length
/// read/flush).
pub fn wire_bytes_for_payload(bytes: u64, mps: u64) -> u64 {
    bytes + tlp_count(bytes, mps) * TLP_OVERHEAD_BYTES
}

/// Wire efficiency (payload / wire bytes) at a given transfer size.
pub fn efficiency(bytes: u64, mps: u64) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    bytes as f64 / wire_bytes_for_payload(bytes, mps) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlp_counts() {
        assert_eq!(tlp_count(0, 256), 1);
        assert_eq!(tlp_count(1, 256), 1);
        assert_eq!(tlp_count(256, 256), 1);
        assert_eq!(tlp_count(257, 256), 2);
        assert_eq!(tlp_count(16384, 256), 64);
    }

    #[test]
    fn wire_bytes_include_per_tlp_tax() {
        assert_eq!(wire_bytes_for_payload(256, 256), 256 + 28);
        assert_eq!(wire_bytes_for_payload(512, 256), 512 + 56);
        assert_eq!(wire_bytes_for_payload(0, 256), 28);
    }

    #[test]
    fn efficiency_improves_with_size_until_mps() {
        let small = efficiency(64, 256);
        let full = efficiency(256, 256);
        let large = efficiency(16384, 256);
        assert!(small < full);
        // Beyond one MPS the efficiency is flat.
        assert!((large - full).abs() < 1e-12);
        // ~90% at MPS=256.
        assert!((0.88..0.92).contains(&full), "efficiency {full}");
    }

    #[test]
    #[should_panic(expected = "zero max payload")]
    fn zero_mps_rejected() {
        tlp_count(1, 0);
    }
}
