//! PCIe Gen3 interconnect and DMA-engine model.
//!
//! Every commercial platform Enzian is compared against in §5.1/§5.3
//! attaches its FPGA over PCIe: the Alveo u250/u280 cards, Amazon F1, the
//! Alpha Data boards. Their software model is GPU-like: set up a
//! descriptor, ring a doorbell, and let an XDMA-style engine move data in
//! Max-Payload-Size TLPs. That gives PCIe excellent *bulk* bandwidth but a
//! microsecond-scale per-transfer setup cost — exactly the contrast
//! Fig. 6 draws against ECI's cache-line transactions.
//!
//! * [`tlp`] — transaction-layer packet framing arithmetic;
//! * [`link`] — the x16 Gen3 serial link (8 GT/s/lane, 128b/130b);
//! * [`dma`] — the XDMA-style engine with doorbell/descriptor/writeback
//!   costs and pipelined data movers;
//! * [`mmio`] — the register path: posted writes vs non-posted reads.

pub mod dma;
pub mod link;
pub mod mmio;
pub mod tlp;

pub use dma::{DmaCompletion, DmaEngine, DmaEngineConfig};
pub use link::{PcieGen, PcieLink, PcieLinkConfig};
pub use mmio::MmioWindow;
pub use tlp::{tlp_count, wire_bytes_for_payload, TLP_OVERHEAD_BYTES};
