//! The PCIe serial link.

use enzian_sim::{Channel, ChannelConfig, Duration, Time};

use crate::tlp::wire_bytes_for_payload;

/// PCIe generations with their per-lane rates and line codings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PcieGen {
    /// 8 GT/s per lane, 128b/130b coding (the Alveo/F1 attachment).
    Gen3,
    /// 16 GT/s per lane, 128b/130b coding.
    Gen4,
}

impl PcieGen {
    /// Raw per-lane rate in bits per second.
    pub fn lane_bits_per_sec(self) -> u64 {
        match self {
            PcieGen::Gen3 => 8_000_000_000,
            PcieGen::Gen4 => 16_000_000_000,
        }
    }

    /// Line-coding efficiency.
    pub fn coding_efficiency(self) -> f64 {
        128.0 / 130.0
    }
}

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLinkConfig {
    /// Lane count (16 for the cards in the paper).
    pub lanes: u8,
    /// Generation.
    pub gen: PcieGen,
    /// Max payload size negotiated (256 B is typical for these hosts).
    pub max_payload: u64,
    /// One-way propagation (PHY + switch, if any).
    pub propagation: Duration,
}

impl PcieLinkConfig {
    /// x16 Gen3 with MPS 256 — the Alveo u250 attachment of Fig. 6.
    pub fn x16_gen3() -> Self {
        PcieLinkConfig {
            lanes: 16,
            gen: PcieGen::Gen3,
            max_payload: 256,
            propagation: Duration::from_ns(150),
        }
    }

    /// Effective payload-agnostic line rate in bits per second.
    pub fn raw_bits_per_sec(&self) -> u64 {
        self.gen.lane_bits_per_sec() * u64::from(self.lanes)
    }
}

/// A full-duplex PCIe link with TLP-aware timing.
#[derive(Debug, Clone)]
pub struct PcieLink {
    config: PcieLinkConfig,
    to_card: Channel,
    to_host: Channel,
}

impl PcieLink {
    /// Creates an idle, trained link.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero lanes or zero MPS.
    pub fn new(config: PcieLinkConfig) -> Self {
        assert!(config.lanes > 0, "link needs lanes");
        assert!(config.max_payload > 0, "zero MPS");
        let ch = ChannelConfig {
            bits_per_sec: config.raw_bits_per_sec(),
            coding_efficiency: config.gen.coding_efficiency(),
            propagation: config.propagation,
            frame_overhead_bytes: 0,
        };
        PcieLink {
            config,
            to_card: Channel::new(ch),
            to_host: Channel::new(ch),
        }
    }

    /// The link parameters.
    pub fn config(&self) -> &PcieLinkConfig {
        &self.config
    }

    /// Moves `payload` bytes toward the card; returns last-byte arrival.
    pub fn send_to_card(&mut self, now: Time, payload: u64) -> Time {
        let wire = wire_bytes_for_payload(payload, self.config.max_payload);
        self.to_card.send(now, wire).done
    }

    /// Moves `payload` bytes toward the host; returns last-byte arrival.
    pub fn send_to_host(&mut self, now: Time, payload: u64) -> Time {
        let wire = wire_bytes_for_payload(payload, self.config.max_payload);
        self.to_host.send(now, wire).done
    }

    /// Total payload-carrying wire bytes moved toward the card.
    pub fn bytes_to_card(&self) -> u64 {
        self.to_card.bytes_carried()
    }

    /// Total payload-carrying wire bytes moved toward the host.
    pub fn bytes_to_host(&self) -> u64 {
        self.to_host.bytes_carried()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x16_gen3_peak_payload_bandwidth() {
        // 16 lanes x 8 GT/s x 128/130 = 15.75 GB/s raw; with MPS-256 TLP
        // efficiency (~90%) payload lands near 14 GB/s.
        let mut link = PcieLink::new(PcieLinkConfig::x16_gen3());
        let n = 10_000u64;
        let mut done = Time::ZERO;
        for _ in 0..n {
            done = done.max(link.send_to_host(Time::ZERO, 4096));
        }
        let payload = n * 4096;
        let gb_s = payload as f64 / done.as_secs_f64() / 1e9;
        assert!(
            (13.0..15.0).contains(&gb_s),
            "payload bandwidth {gb_s:.2} GB/s"
        );
    }

    #[test]
    fn directions_are_independent() {
        let mut link = PcieLink::new(PcieLinkConfig::x16_gen3());
        let a = link.send_to_card(Time::ZERO, 1 << 20);
        let b = link.send_to_host(Time::ZERO, 64);
        // The small host-bound message is not stuck behind the bulk
        // card-bound transfer.
        assert!(b < a);
    }

    #[test]
    fn small_transfers_pay_proportionally_more() {
        let mut link = PcieLink::new(PcieLinkConfig::x16_gen3());
        let t64 = link.send_to_host(Time::ZERO, 64).since(Time::ZERO);
        let mut link = PcieLink::new(PcieLinkConfig::x16_gen3());
        let t256 = link.send_to_host(Time::ZERO, 256).since(Time::ZERO);
        // 4x the payload costs well under 4x the time (shared overhead).
        assert!(t256.as_ps() < t64.as_ps() * 4);
    }

    #[test]
    fn gen4_is_twice_gen3() {
        let g3 = PcieLinkConfig::x16_gen3();
        let g4 = PcieLinkConfig {
            gen: PcieGen::Gen4,
            ..g3
        };
        assert_eq!(g4.raw_bits_per_sec(), 2 * g3.raw_bits_per_sec());
    }
}
