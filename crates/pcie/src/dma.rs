//! The XDMA-style DMA engine.
//!
//! Card-based acceleration "is often modeled after GPUs … where data is
//! copied en-masse onto the card's memory for computation, and the results
//! copied back to host memory using PCIe DMA" (paper §2.1). The per-
//! transfer choreography is what costs latency:
//!
//! 1. the host writes a descriptor and rings a doorbell (MMIO write);
//! 2. the engine fetches the descriptor from host memory (round trip);
//! 3. data moves in MPS-sized TLPs;
//! 4. the engine writes back a completion status / raises MSI-X.
//!
//! Steps 1, 2 and 4 are (mostly) independent of size — the fixed cost
//! that makes PCIe lose to ECI below a few KiB in Fig. 6. The engine
//! pipelines across queued descriptors, but descriptor processing itself
//! is serial, which caps small-transfer rates.

use enzian_mem::{Addr, MemoryController};
use enzian_sim::{Duration, Time};

use crate::link::{PcieLink, PcieLinkConfig};

/// Engine cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DmaEngineConfig {
    /// The link the engine drives.
    pub link: PcieLinkConfig,
    /// Host MMIO doorbell write latency.
    pub doorbell: Duration,
    /// Descriptor fetch round trip.
    pub descriptor_fetch: Duration,
    /// Completion write-back / interrupt latency.
    pub writeback: Duration,
    /// Serial per-descriptor engine occupancy (caps small-transfer rate).
    pub engine_occupancy: Duration,
}

impl DmaEngineConfig {
    /// Calibrated to an Alveo u250 behind x16 Gen3 (Fig. 6 baseline).
    pub fn alveo_u250() -> Self {
        DmaEngineConfig {
            link: PcieLinkConfig::x16_gen3(),
            doorbell: Duration::from_ns(200),
            descriptor_fetch: Duration::from_ns(350),
            writeback: Duration::from_ns(200),
            engine_occupancy: Duration::from_ns(600),
        }
    }
}

/// Timing of one completed DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaCompletion {
    /// When the engine began processing the descriptor.
    pub started: Time,
    /// When the last data byte arrived.
    pub data_done: Time,
    /// When the completion write-back landed (what software observes).
    pub completed: Time,
}

/// An XDMA-style engine bound to one link.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    config: DmaEngineConfig,
    link: PcieLink,
    engine_busy: Time,
    transfers: u64,
    bytes: u64,
}

impl DmaEngine {
    /// Creates an idle engine.
    pub fn new(config: DmaEngineConfig) -> Self {
        DmaEngine {
            link: PcieLink::new(config.link),
            config,
            engine_busy: Time::ZERO,
            transfers: 0,
            bytes: 0,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &DmaEngineConfig {
        &self.config
    }

    /// `(transfers, payload bytes)` completed so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.transfers, self.bytes)
    }

    fn transfer(&mut self, now: Time, bytes: u64, to_host: bool) -> DmaCompletion {
        assert!(bytes > 0, "zero-length DMA transfer");
        // Doorbell is posted by the host, then the engine (serially)
        // fetches and launches the descriptor.
        let posted = now + self.config.doorbell;
        let started = posted.max(self.engine_busy);
        self.engine_busy = started + self.config.engine_occupancy;
        let launched = started + self.config.descriptor_fetch;
        let data_done = if to_host {
            self.link.send_to_host(launched, bytes)
        } else {
            self.link.send_to_card(launched, bytes)
        };
        let completed = data_done + self.config.writeback;
        self.transfers += 1;
        self.bytes += bytes;
        DmaCompletion {
            started,
            data_done,
            completed,
        }
    }

    /// Timed card→host transfer of `bytes` (an FPGA "write" to host
    /// memory in the Fig. 6 sense).
    pub fn card_to_host(&mut self, now: Time, bytes: u64) -> DmaCompletion {
        self.transfer(now, bytes, true)
    }

    /// Timed host→card transfer of `bytes` (an FPGA "read" of host
    /// memory: a read request descriptor whose data flows toward the
    /// card).
    pub fn host_to_card(&mut self, now: Time, bytes: u64) -> DmaCompletion {
        self.transfer(now, bytes, false)
    }

    /// Functional + timed copy from host memory into card memory.
    pub fn copy_host_to_card(
        &mut self,
        now: Time,
        host: &mut MemoryController,
        card: &mut MemoryController,
        host_addr: Addr,
        card_addr: Addr,
        bytes: usize,
    ) -> DmaCompletion {
        let completion = self.host_to_card(now, bytes as u64);
        let mut buf = vec![0u8; bytes];
        let _ = host.read(now, host_addr, &mut buf);
        let _ = card.write(completion.data_done, card_addr, &buf);
        completion
    }

    /// Functional + timed copy from card memory into host memory.
    pub fn copy_card_to_host(
        &mut self,
        now: Time,
        card: &mut MemoryController,
        host: &mut MemoryController,
        card_addr: Addr,
        host_addr: Addr,
        bytes: usize,
    ) -> DmaCompletion {
        let completion = self.card_to_host(now, bytes as u64);
        let mut buf = vec![0u8; bytes];
        let _ = card.read(now, card_addr, &mut buf);
        let _ = host.write(completion.data_done, host_addr, &buf);
        completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enzian_mem::MemoryControllerConfig;

    fn engine() -> DmaEngine {
        DmaEngine::new(DmaEngineConfig::alveo_u250())
    }

    #[test]
    fn small_transfer_latency_is_microsecond_scale() {
        let mut e = engine();
        let c = e.card_to_host(Time::ZERO, 128);
        let lat = c.completed.since(Time::ZERO);
        assert!(
            lat >= Duration::from_ns(700) && lat <= Duration::from_us(2),
            "128 B DMA latency {lat} not in ~1 us regime"
        );
    }

    #[test]
    fn large_transfers_amortize_setup() {
        let mut e = engine();
        let small = e.card_to_host(Time::ZERO, 128);
        let mut e = engine();
        let large = e.card_to_host(Time::ZERO, 16384);
        let small_lat = small.completed.since(Time::ZERO).as_ps() as f64;
        let large_lat = large.completed.since(Time::ZERO).as_ps() as f64;
        // 128x the data for ~2x the latency.
        assert!(large_lat / small_lat < 3.0);
    }

    #[test]
    fn bulk_throughput_near_link_rate() {
        let mut e = engine();
        let n = 2000u64;
        let size = 64 * 1024u64;
        let mut done = Time::ZERO;
        for _ in 0..n {
            done = done.max(e.card_to_host(Time::ZERO, size).data_done);
        }
        let gb_s = (n * size) as f64 / done.as_secs_f64() / 1e9;
        assert!(
            (12.0..15.0).contains(&gb_s),
            "bulk throughput {gb_s:.2} GB/s"
        );
    }

    #[test]
    fn small_transfer_throughput_is_setup_bound() {
        // 128 B back-to-back: the 600 ns engine occupancy dominates, so
        // throughput sits near 128/600ns = 0.21 GB/s — the regime where
        // ECI wins by an order of magnitude.
        let mut e = engine();
        let n = 5000u64;
        let mut done = Time::ZERO;
        for _ in 0..n {
            done = done.max(e.card_to_host(Time::ZERO, 128).completed);
        }
        let gb_s = (n * 128) as f64 / done.as_secs_f64() / 1e9;
        assert!(
            gb_s < 0.5,
            "small-transfer throughput {gb_s:.2} GB/s too high"
        );
    }

    #[test]
    fn functional_copy_moves_data() {
        let mut e = engine();
        let mut host = MemoryController::new(MemoryControllerConfig::enzian_cpu());
        let mut card = MemoryController::new(MemoryControllerConfig::enzian_fpga());
        host.store_mut().write(Addr(0x1000), b"pcie-dma");
        let c = e.copy_host_to_card(Time::ZERO, &mut host, &mut card, Addr(0x1000), Addr(0), 8);
        let mut buf = [0u8; 8];
        card.store().read(Addr(0), &mut buf);
        assert_eq!(&buf, b"pcie-dma");
        assert!(c.completed > Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_transfer_panics() {
        engine().card_to_host(Time::ZERO, 0);
    }
}
