# Mirrors .github/workflows/ci.yml so `make ci` reproduces the pipeline
# locally. Individual stages are exposed as their own targets.

CARGO ?= cargo

.PHONY: ci fmt fmt-check clippy build test doc bench-smoke chaos cc-sweep pipelining modelcheck tcp-explore par-cluster service traffic loom perf clean

ci: fmt-check clippy build test doc bench-smoke chaos cc-sweep pipelining modelcheck tcp-explore par-cluster service traffic loom perf

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

# Fastest closed-form experiment; checks that the machine-readable bench
# output exists and is deterministic across same-seed reruns.
bench-smoke: build
	rm -rf target/bench-smoke
	mkdir -p target/bench-smoke/a target/bench-smoke/b
	target/release/reproduce fig11 --bench-dir target/bench-smoke/a > /dev/null
	target/release/reproduce fig11 --bench-dir target/bench-smoke/b > /dev/null
	cmp target/bench-smoke/a/BENCH_fig11.json target/bench-smoke/b/BENCH_fig11.json
	@echo "bench smoke OK: deterministic BENCH_fig11.json"

# Platform-wide fault injection: runs the fault sweep twice and fails
# unless the two same-seed BENCH_fault_sweep.json files are byte-identical.
chaos: build
	rm -rf target/chaos
	mkdir -p target/chaos/a target/chaos/b
	target/release/reproduce fault_sweep --bench-dir target/chaos/a > /dev/null
	target/release/reproduce fault_sweep --bench-dir target/chaos/b > /dev/null
	cmp target/chaos/a/BENCH_fault_sweep.json target/chaos/b/BENCH_fault_sweep.json
	@echo "chaos OK: deterministic BENCH_fault_sweep.json"

# Congestion-control sweep over the split TCP stack (controller x loss
# rate x transfer size, hybrid CPU/FPGA preset included); runs twice and
# fails unless the two same-seed BENCH_cc_sweep.json files are
# byte-identical.
cc-sweep: build
	rm -rf target/cc-sweep
	mkdir -p target/cc-sweep/a target/cc-sweep/b
	target/release/reproduce cc_sweep --bench-dir target/cc-sweep/a > /dev/null
	target/release/reproduce cc_sweep --bench-dir target/cc-sweep/b > /dev/null
	cmp target/cc-sweep/a/BENCH_cc_sweep.json target/cc-sweep/b/BENCH_cc_sweep.json
	@echo "cc-sweep OK: deterministic BENCH_cc_sweep.json"

# Pipelining sweep: goodput vs outstanding-transaction count through the
# event-driven engine's async API; runs twice and fails unless the two
# same-seed BENCH_pipelining.json files are byte-identical.
pipelining: build
	rm -rf target/pipelining
	mkdir -p target/pipelining/a target/pipelining/b
	target/release/reproduce pipelining --bench-dir target/pipelining/a > /dev/null
	target/release/reproduce pipelining --bench-dir target/pipelining/b > /dev/null
	cmp target/pipelining/a/BENCH_pipelining.json target/pipelining/b/BENCH_pipelining.json
	@echo "pipelining OK: deterministic BENCH_pipelining.json"

# Model check: exhaustive state-space exploration of the ECI protocol
# model (clean configs violation-free, mutation battery caught); runs
# twice and fails unless the two BENCH_modelcheck.json files are
# byte-identical.
modelcheck: build
	rm -rf target/modelcheck
	mkdir -p target/modelcheck/a target/modelcheck/b
	target/release/reproduce modelcheck --bench-dir target/modelcheck/a > /dev/null
	target/release/reproduce modelcheck --bench-dir target/modelcheck/b > /dev/null
	cmp target/modelcheck/a/BENCH_modelcheck.json target/modelcheck/b/BENCH_modelcheck.json
	@echo "modelcheck OK: deterministic BENCH_modelcheck.json"

# TCP model check: the same exploration core aimed at the TCP
# connection FSM (bounded clean spaces >= 10^4 states violation-free,
# four-mutation battery caught); runs twice and fails unless the two
# BENCH_tcp_explore.json files are byte-identical.
tcp-explore: build
	rm -rf target/tcp-explore
	mkdir -p target/tcp-explore/a target/tcp-explore/b
	target/release/reproduce tcp_explore --bench-dir target/tcp-explore/a > /dev/null
	target/release/reproduce tcp_explore --bench-dir target/tcp-explore/b > /dev/null
	cmp target/tcp-explore/a/BENCH_tcp_explore.json target/tcp-explore/b/BENCH_tcp_explore.json
	@echo "tcp-explore OK: deterministic BENCH_tcp_explore.json"

# Conservative-parallel cluster: runs cluster_scale twice per thread
# count (1, 2, 8) and fails unless all six BENCH_cluster_scale.json
# files are byte-identical — the thread count must never be observable
# in the simulated results.
par-cluster: build
	rm -rf target/par-cluster
	mkdir -p target/par-cluster/t1a target/par-cluster/t1b \
	         target/par-cluster/t2a target/par-cluster/t2b \
	         target/par-cluster/t8a target/par-cluster/t8b
	target/release/reproduce cluster_scale --threads 1 --bench-dir target/par-cluster/t1a > /dev/null
	target/release/reproduce cluster_scale --threads 1 --bench-dir target/par-cluster/t1b > /dev/null
	target/release/reproduce cluster_scale --threads 2 --bench-dir target/par-cluster/t2a > /dev/null
	target/release/reproduce cluster_scale --threads 2 --bench-dir target/par-cluster/t2b > /dev/null
	target/release/reproduce cluster_scale --threads 8 --bench-dir target/par-cluster/t8a > /dev/null
	target/release/reproduce cluster_scale --threads 8 --bench-dir target/par-cluster/t8b > /dev/null
	cmp target/par-cluster/t1a/BENCH_cluster_scale.json target/par-cluster/t1b/BENCH_cluster_scale.json
	cmp target/par-cluster/t2a/BENCH_cluster_scale.json target/par-cluster/t2b/BENCH_cluster_scale.json
	cmp target/par-cluster/t8a/BENCH_cluster_scale.json target/par-cluster/t8b/BENCH_cluster_scale.json
	cmp target/par-cluster/t1a/BENCH_cluster_scale.json target/par-cluster/t2a/BENCH_cluster_scale.json
	cmp target/par-cluster/t1a/BENCH_cluster_scale.json target/par-cluster/t8a/BENCH_cluster_scale.json
	@echo "par-cluster OK: BENCH_cluster_scale.json byte-identical across threads 1/2/8"

# Replicated KV service under cluster faults: runs the service sweep
# twice at threads 1 and once each at 2 and 8, and fails unless every
# BENCH_service.json is byte-identical — crash/failover/catch-up timing
# must be a pure function of the seed, never of the engine.
service: build
	rm -rf target/service
	mkdir -p target/service/t1a target/service/t1b \
	         target/service/t2 target/service/t8
	target/release/reproduce service --threads 1 --bench-dir target/service/t1a > /dev/null
	target/release/reproduce service --threads 1 --bench-dir target/service/t1b > /dev/null
	target/release/reproduce service --threads 2 --bench-dir target/service/t2 > /dev/null
	target/release/reproduce service --threads 8 --bench-dir target/service/t8 > /dev/null
	cmp target/service/t1a/BENCH_service.json target/service/t1b/BENCH_service.json
	cmp target/service/t1a/BENCH_service.json target/service/t2/BENCH_service.json
	cmp target/service/t1a/BENCH_service.json target/service/t8/BENCH_service.json
	@echo "service OK: BENCH_service.json byte-identical across reruns and threads 1/2/8"

# Million-flow traffic generator: runs the churn/flows/loss/proxy legs
# twice at threads 1 and once each at 2 and 8, and fails unless every
# BENCH_traffic.json is byte-identical — connection churn, flow-table
# peaks and loss recovery must be a pure function of the workload,
# never of the engine.
traffic: build
	rm -rf target/traffic
	mkdir -p target/traffic/t1a target/traffic/t1b \
	         target/traffic/t2 target/traffic/t8
	target/release/reproduce traffic --threads 1 --bench-dir target/traffic/t1a > /dev/null
	target/release/reproduce traffic --threads 1 --bench-dir target/traffic/t1b > /dev/null
	target/release/reproduce traffic --threads 2 --bench-dir target/traffic/t2 > /dev/null
	target/release/reproduce traffic --threads 8 --bench-dir target/traffic/t8 > /dev/null
	cmp target/traffic/t1a/BENCH_traffic.json target/traffic/t1b/BENCH_traffic.json
	cmp target/traffic/t1a/BENCH_traffic.json target/traffic/t2/BENCH_traffic.json
	cmp target/traffic/t1a/BENCH_traffic.json target/traffic/t8/BENCH_traffic.json
	@echo "traffic OK: BENCH_traffic.json byte-identical across reruns and threads 1/2/8"

# Perf gate, exactly as CI runs it: sched_hotpath + cluster_scale twice,
# determinism compared modulo timing.* gauges, deterministic counters
# gated against the committed baselines in benches/baselines/, and the
# calendar-queue core's throughput floor over the retained reference
# core enforced.
perf: build
	rm -rf target/perf
	mkdir -p target/perf/a target/perf/b
	target/release/reproduce sched_hotpath --threads 2 --bench-dir target/perf/a > /dev/null
	target/release/reproduce cluster_scale --threads 2 --bench-dir target/perf/a > /dev/null
	target/release/reproduce sched_hotpath --threads 2 --bench-dir target/perf/b > /dev/null
	target/release/reproduce cluster_scale --threads 2 --bench-dir target/perf/b > /dev/null
	target/release/perfgate compare target/perf/a/BENCH_sched_hotpath.json target/perf/b/BENCH_sched_hotpath.json
	target/release/perfgate compare target/perf/a/BENCH_cluster_scale.json target/perf/b/BENCH_cluster_scale.json
	cmp target/perf/a/BENCH_cluster_scale.json target/perf/b/BENCH_cluster_scale.json
	target/release/perfgate baseline benches/baselines/BENCH_sched_hotpath.json target/perf/a/BENCH_sched_hotpath.json
	target/release/perfgate baseline benches/baselines/BENCH_cluster_scale.json target/perf/a/BENCH_cluster_scale.json
	target/release/perfgate speedup target/perf/a/BENCH_sched_hotpath.json \
		sched_hotpath.timing.pod_mevents_per_sec \
		sched_hotpath.timing.reference_mevents_per_sec --min 1.5
	@echo "perf OK: hot path deterministic, baselines held, throughput floor met"

# Exhaustive interleaving checks for the epoch barrier and bounded
# inter-shard channels (the loom-style battery; compiled only under
# --cfg loom).
loom:
	RUSTFLAGS="--cfg loom" $(CARGO) test -p enzian-sim --test loom_par

clean:
	$(CARGO) clean
