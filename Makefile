# Mirrors .github/workflows/ci.yml so `make ci` reproduces the pipeline
# locally. Individual stages are exposed as their own targets.

CARGO ?= cargo

.PHONY: ci fmt fmt-check clippy build test bench-smoke chaos clean

ci: fmt-check clippy build test bench-smoke chaos

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

# Fastest closed-form experiment; checks that the machine-readable bench
# output exists and is deterministic across same-seed reruns.
bench-smoke: build
	rm -rf target/bench-smoke
	mkdir -p target/bench-smoke/a target/bench-smoke/b
	target/release/reproduce fig11 --bench-dir target/bench-smoke/a > /dev/null
	target/release/reproduce fig11 --bench-dir target/bench-smoke/b > /dev/null
	cmp target/bench-smoke/a/BENCH_fig11.json target/bench-smoke/b/BENCH_fig11.json
	@echo "bench smoke OK: deterministic BENCH_fig11.json"

# Platform-wide fault injection: runs the fault sweep twice and fails
# unless the two same-seed BENCH_fault_sweep.json files are byte-identical.
chaos: build
	rm -rf target/chaos
	mkdir -p target/chaos/a target/chaos/b
	target/release/reproduce fault_sweep --bench-dir target/chaos/a > /dev/null
	target/release/reproduce fault_sweep --bench-dir target/chaos/b > /dev/null
	cmp target/chaos/a/BENCH_fault_sweep.json target/chaos/b/BENCH_fault_sweep.json
	@echo "chaos OK: deterministic BENCH_fault_sweep.json"

clean:
	$(CARGO) clean
