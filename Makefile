# Mirrors .github/workflows/ci.yml so `make ci` reproduces the pipeline
# locally. Individual stages are exposed as their own targets.

CARGO ?= cargo

.PHONY: ci fmt fmt-check clippy build test bench-smoke clean

ci: fmt-check clippy build test bench-smoke

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

# Fastest closed-form experiment; checks that the machine-readable bench
# output exists and is deterministic across same-seed reruns.
bench-smoke: build
	rm -rf target/bench-smoke
	mkdir -p target/bench-smoke/a target/bench-smoke/b
	target/release/reproduce fig11 --bench-dir target/bench-smoke/a > /dev/null
	target/release/reproduce fig11 --bench-dir target/bench-smoke/b > /dev/null
	cmp target/bench-smoke/a/BENCH_fig11.json target/bench-smoke/b/BENCH_fig11.json
	@echo "bench smoke OK: deterministic BENCH_fig11.json"

clean:
	$(CARGO) clean
