# Mirrors .github/workflows/ci.yml so `make ci` reproduces the pipeline
# locally. Individual stages are exposed as their own targets.

CARGO ?= cargo

.PHONY: ci fmt fmt-check clippy build test doc bench-smoke chaos pipelining modelcheck clean

ci: fmt-check clippy build test doc bench-smoke chaos pipelining modelcheck

fmt:
	$(CARGO) fmt --all

fmt-check:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test -q --workspace

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps --workspace

# Fastest closed-form experiment; checks that the machine-readable bench
# output exists and is deterministic across same-seed reruns.
bench-smoke: build
	rm -rf target/bench-smoke
	mkdir -p target/bench-smoke/a target/bench-smoke/b
	target/release/reproduce fig11 --bench-dir target/bench-smoke/a > /dev/null
	target/release/reproduce fig11 --bench-dir target/bench-smoke/b > /dev/null
	cmp target/bench-smoke/a/BENCH_fig11.json target/bench-smoke/b/BENCH_fig11.json
	@echo "bench smoke OK: deterministic BENCH_fig11.json"

# Platform-wide fault injection: runs the fault sweep twice and fails
# unless the two same-seed BENCH_fault_sweep.json files are byte-identical.
chaos: build
	rm -rf target/chaos
	mkdir -p target/chaos/a target/chaos/b
	target/release/reproduce fault_sweep --bench-dir target/chaos/a > /dev/null
	target/release/reproduce fault_sweep --bench-dir target/chaos/b > /dev/null
	cmp target/chaos/a/BENCH_fault_sweep.json target/chaos/b/BENCH_fault_sweep.json
	@echo "chaos OK: deterministic BENCH_fault_sweep.json"

# Pipelining sweep: goodput vs outstanding-transaction count through the
# event-driven engine's async API; runs twice and fails unless the two
# same-seed BENCH_pipelining.json files are byte-identical.
pipelining: build
	rm -rf target/pipelining
	mkdir -p target/pipelining/a target/pipelining/b
	target/release/reproduce pipelining --bench-dir target/pipelining/a > /dev/null
	target/release/reproduce pipelining --bench-dir target/pipelining/b > /dev/null
	cmp target/pipelining/a/BENCH_pipelining.json target/pipelining/b/BENCH_pipelining.json
	@echo "pipelining OK: deterministic BENCH_pipelining.json"

# Model check: exhaustive state-space exploration of the ECI protocol
# model (clean configs violation-free, mutation battery caught); runs
# twice and fails unless the two BENCH_modelcheck.json files are
# byte-identical.
modelcheck: build
	rm -rf target/modelcheck
	mkdir -p target/modelcheck/a target/modelcheck/b
	target/release/reproduce modelcheck --bench-dir target/modelcheck/a > /dev/null
	target/release/reproduce modelcheck --bench-dir target/modelcheck/b > /dev/null
	cmp target/modelcheck/a/BENCH_modelcheck.json target/modelcheck/b/BENCH_modelcheck.json
	@echo "modelcheck OK: deterministic BENCH_modelcheck.json"

clean:
	$(CARGO) clean
